"""Combined accelerator-level report (area + power + memory metrics)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import PipelineSchedule
from repro.estimate.area import AreaReport, area_report
from repro.estimate.power import PowerReport, power_report
from repro.estimate.sram_model import DEFAULT_TECH, SramTechModel


@dataclass
class AcceleratorReport:
    """Roll-up of the metrics the paper reports per design point."""

    schedule: PipelineSchedule
    area: AreaReport
    power: PowerReport

    @property
    def generator(self) -> str:
        return self.schedule.generator

    @property
    def sram_kbytes(self) -> float:
        return self.area.sram_kbytes

    @property
    def sram_blocks(self) -> int:
        return self.area.sram_blocks

    @property
    def memory_power_mw(self) -> float:
        return self.power.memory_mw

    @property
    def total_power_mw(self) -> float:
        return self.power.total_mw

    @property
    def memory_area_mm2(self) -> float:
        return self.area.memory_mm2

    @property
    def total_area_mm2(self) -> float:
        return self.area.total_mm2

    @property
    def frame_sram_kbytes(self) -> float:
        return self.schedule.frame_buffer_allocated_kbytes

    def row(self) -> dict[str, float | int | str]:
        """A flat dictionary convenient for benchmark tables.

        Temporal designs report their frame-buffer split with extra keys;
        purely spatial designs emit the historical keys only, keeping their
        wire payloads (which embed this row) byte-identical.
        """
        row: dict[str, float | int | str] = {
            "generator": self.generator,
            "sram_kb": round(self.sram_kbytes, 2),
            "sram_blocks": self.sram_blocks,
            "memory_power_mw": round(self.memory_power_mw, 3),
            "total_power_mw": round(self.total_power_mw, 3),
            "memory_area_mm2": round(self.memory_area_mm2, 4),
            "total_area_mm2": round(self.total_area_mm2, 4),
        }
        if self.schedule.frame_buffers:
            row["frame_sram_kb"] = round(self.frame_sram_kbytes, 2)
            row["frame_buffers"] = len(self.schedule.frame_buffers)
        return row


def accelerator_report(
    schedule: PipelineSchedule,
    tech: SramTechModel | None = None,
    *,
    sizing: str = "fixed",
) -> AcceleratorReport:
    """Build the combined area/power report for one design.

    ``schedule`` may also be a :class:`repro.core.compiler.CompiledAccelerator`
    (anything carrying a ``.schedule``), which is what the service layer's
    compile results hand around.  ``sizing`` is forwarded to the area and
    power estimators ("fixed" macro library vs "custom" right-sized macros;
    see :func:`repro.estimate.power.power_report`).
    """
    if not isinstance(schedule, PipelineSchedule) and hasattr(schedule, "schedule"):
        schedule = schedule.schedule
    tech = tech or DEFAULT_TECH
    return AcceleratorReport(
        schedule=schedule,
        area=area_report(schedule, tech, sizing=sizing),
        power=power_report(schedule, tech, sizing=sizing),
    )
