"""Unit tests for constraint pruning (Sec. 5.4)."""

from repro.core.constraints import PairSeparation, contention_disjunctions
from repro.core.pruning import count_subproblems, implies, prune_candidates, prune_disjunctions
from repro.ir.traversal import partial_order

from tests.conftest import TEST_WIDTH, build_paper_example, build_two_consumer

W = TEST_WIDTH


def sep(buffer, trailing, leading, height, gap):
    return PairSeparation(buffer=buffer, trailing=trailing, leading=leading, stencil_height=height, min_gap=gap)


class TestImplication:
    def test_paper_example_implications(self):
        dag = build_paper_example()
        order = partial_order(dag)
        # Candidates over LB_K0: heights K1=3, K2=2.
        k1_k0 = sep("K0", "K1", "K0", 3, 3 * W)
        k2_k0 = sep("K0", "K2", "K0", 2, 2 * W)
        k2_k1 = sep("K0", "K2", "K1", 3, 3 * W)
        # Eq. 13a / 13b: both stricter constraints imply the relaxed one.
        assert implies(k1_k0, k2_k0, order)
        assert implies(k2_k1, k2_k0, order)
        # The relaxed one implies neither of the strict ones.
        assert not implies(k2_k0, k1_k0, order)
        assert not implies(k2_k0, k2_k1, order)

    def test_implication_requires_same_buffer(self):
        dag = build_paper_example()
        order = partial_order(dag)
        a = sep("K0", "K1", "K0", 3, 3 * W)
        b = sep("K1", "K2", "K1", 3, 3 * W)
        assert not implies(a, b, order)

    def test_implication_requires_gap_ordering(self):
        dag = build_paper_example()
        order = partial_order(dag)
        small = sep("K0", "K1", "K0", 1, W)
        large = sep("K0", "K2", "K0", 3, 3 * W)
        # K1 trailing by only W does not guarantee K2 trailing by 3W.
        assert not implies(small, large, order)


class TestPruneCandidates:
    def test_paper_example_prunes_to_single_candidate(self):
        dag = build_paper_example()
        order = partial_order(dag)
        disjunctions = contention_disjunctions(dag, W, ports=2)
        pruned = prune_candidates(disjunctions[0].candidates, order)
        assert len(pruned) == 1
        kept = pruned[0]
        assert (kept.trailing, kept.leading) == ("K2", "K0")

    def test_independent_consumers_not_pruned(self):
        dag = build_two_consumer()
        order = partial_order(dag)
        disjunctions = contention_disjunctions(dag, W, ports=2)
        pruned = prune_candidates(disjunctions[0].candidates, order)
        # A and B are incomparable: no candidate dominates all others.
        assert len(pruned) >= 2

    def test_equivalent_candidates_keep_one(self):
        dag = build_two_consumer()
        order = partial_order(dag)
        a = sep("K0", "A", "K0", 3, 3 * W)
        duplicate = sep("K0", "A", "K0", 3, 3 * W)
        pruned = prune_candidates([a, duplicate], order)
        assert len(pruned) == 1


class TestPruneDisjunctions:
    def test_prune_reduces_subproblem_count(self):
        dag = build_paper_example()
        raw = contention_disjunctions(dag, W, ports=2)
        pruned = prune_disjunctions(raw, dag)
        assert count_subproblems(pruned) <= count_subproblems(raw)
        assert count_subproblems(pruned) == 1

    def test_count_subproblems_multiplies(self):
        dag = build_two_consumer()
        raw = contention_disjunctions(dag, W, ports=1)
        assert count_subproblems(raw) >= 1

    def test_structure_preserved(self):
        dag = build_paper_example()
        raw = contention_disjunctions(dag, W, ports=2)
        pruned = prune_disjunctions(raw, dag)
        assert len(pruned) == len(raw)
        assert pruned[0].buffer == raw[0].buffer
