"""Synthetic pipelines for the scalability study (paper Sec. 8.2).

The paper sweeps pipelines of 9 to 60 stages in which roughly one third of the
stages have multiple consumers.  :func:`build_synthetic_pipeline` generates
such pipelines deterministically: the backbone is a chain of 3x3 stages, and
at regular intervals a backbone stage grows a side branch that re-joins two
stages later, giving that backbone stage two consumers.
"""

from __future__ import annotations

from repro.dsl.builder import PipelineBuilder, StageHandle, window_sum
from repro.errors import DSLSemanticError
from repro.ir.dag import PipelineDAG


def build_synthetic_pipeline(
    num_stages: int,
    *,
    multi_consumer_interval: int = 3,
    stencil: int = 3,
    name: str | None = None,
) -> PipelineDAG:
    """Build a synthetic pipeline with exactly ``num_stages`` stages.

    Every ``multi_consumer_interval``-th backbone position spawns a branch
    stage; the branch and the continuing backbone both read the same producer
    (making it a multi-consumer stage) and merge two stages later.  Use
    ``multi_consumer_interval=0`` for a pure single-consumer chain.
    """
    if num_stages < 3:
        raise DSLSemanticError("A synthetic pipeline needs at least 3 stages")

    builder = PipelineBuilder(name or f"synthetic-{num_stages}")
    backbone: StageHandle = builder.input("K0")
    pending: StageHandle | None = None
    pending_steps = 0

    index = 1
    while index < num_stages:
        remaining = num_stages - index
        spawn_branch = (
            multi_consumer_interval > 0
            and pending is None
            and index % multi_consumer_interval == 0
            and remaining >= 3
        )
        if spawn_branch:
            pending = builder.stage(f"B{index}", window_sum(backbone, stencil, stencil))
            pending_steps = 0
            index += 1
            continue
        if pending is not None and pending_steps >= 1:
            backbone = builder.stage(
                f"K{index}", window_sum(backbone, stencil, stencil) + pending(0, 0)
            )
            pending = None
        else:
            backbone = builder.stage(f"K{index}", window_sum(backbone, stencil, stencil))
            if pending is not None:
                pending_steps += 1
        index += 1

    dag = builder.dag
    dag.stage(backbone.name).is_output = True
    return dag.validated()
