"""Unit tests for the design-space exploration driver."""

import pytest

from repro.algorithms import build_algorithm
from repro.dse.pareto import pareto_front
from repro.dse.sweep import sweep_memory_configurations
from repro.errors import ReproError
from repro.memory.spec import asic_single_port

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain

W, H = TEST_WIDTH, TEST_HEIGHT


class TestParetoFront:
    def test_simple_domination(self):
        points = [(1.0, 5.0), (2.0, 2.0), (3.0, 3.0), (0.5, 9.0)]
        front = pareto_front(points, lambda p: p)
        assert (3.0, 3.0) not in front
        assert (2.0, 2.0) in front
        assert (0.5, 9.0) in front

    def test_single_point(self):
        assert pareto_front([(1.0, 1.0)], lambda p: p) == [(1.0, 1.0)]

    def test_identical_points_all_kept(self):
        points = [(1.0, 1.0), (1.0, 1.0)]
        assert len(pareto_front(points, lambda p: p)) == 2

    def test_empty(self):
        assert pareto_front([], lambda p: p) == []


class TestSweep:
    def test_sweep_size_is_power_of_two(self):
        points = sweep_memory_configurations(
            build_chain(3, stencil=3), image_width=W, image_height=H
        )
        assert len(points) in (2, 4, 8, 16)

    def test_all_dp_point_present(self):
        points = sweep_memory_configurations(
            build_chain(3, stencil=3), image_width=W, image_height=H
        )
        labels = {p.label for p in points}
        assert "all-DP" in labels

    def test_dplc_reduces_blocks(self):
        points = sweep_memory_configurations(
            build_chain(2, stencil=5), image_width=W, image_height=H
        )
        by_dplc = {p.coalesced_stages: p for p in points}
        assert by_dplc[1].accelerator.schedule.total_blocks < by_dplc[0].accelerator.schedule.total_blocks

    def test_single_port_spec_yields_single_design(self):
        points = sweep_memory_configurations(
            build_chain(3), image_width=W, image_height=H, memory_spec=asic_single_port()
        )
        assert len(points) == 1

    def test_max_designs_guard(self):
        with pytest.raises(ReproError):
            sweep_memory_configurations(
                build_algorithm("canny-m"), image_width=W, image_height=H, max_designs=2
            )

    def test_pareto_front_of_sweep_nonempty(self):
        points = sweep_memory_configurations(
            build_algorithm("denoise-m"), image_width=W, image_height=H
        )
        front = pareto_front(points, lambda p: (p.area_mm2, p.power_mw))
        assert 1 <= len(front) <= len(points)

    def test_design_point_metrics_positive(self):
        points = sweep_memory_configurations(
            build_chain(3, stencil=3), image_width=W, image_height=H
        )
        for point in points:
            assert point.area_mm2 > 0
            assert point.power_mw > 0
            assert set(point.configuration.values()) <= {"DP", "DPLC"}
