"""Temporal-pipeline benchmark: frame-buffer SRAM accounting and cache reuse.

The temporal suite extends the paper's spatial evaluation with a time axis:
compiling ``temporal-denoise-m`` must provision whole-frame history SRAM on
top of the usual line buffers, every generator must report it, and the compile
service must serve the (bigger) temporal design from cache exactly as cheaply
as a spatial one.
"""

from __future__ import annotations

import time

from repro.algorithms import TEMPORAL_ALGORITHM_NAMES, build_algorithm
from repro.api import CompileTarget
from repro.estimate.report import accelerator_report
from repro.service import CompileEngine

W, H = 480, 320

GENERATORS = ("imagen", "soda", "darkroom", "fixynn")


def test_temporal_denoise_reports_frame_sram(benchmark):
    """Every generator compiles the temporal suite and reports frame SRAM."""

    def compile_all():
        rows = {}
        for name in TEMPORAL_ALGORITHM_NAMES:
            for generator in GENERATORS:
                target = CompileTarget(
                    build_algorithm(name),
                    image_width=W,
                    image_height=H,
                    generator=generator,
                )
                engine = CompileEngine(executor="inline")
                schedule = engine.compile(target).schedule
                rows[(name, generator)] = accelerator_report(schedule).row()
        return rows

    rows = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    for (name, generator), row in rows.items():
        line_kb = row["sram_kb"] - row["frame_sram_kb"]
        print(
            f"\n{name} [{generator}]: line SRAM {line_kb:.1f} KB, "
            f"frame SRAM {row['frame_sram_kb']:.1f} KB "
            f"({row['frame_buffers']} buffer(s))"
        )
        assert row["frame_buffers"] >= 1, (name, generator)
        assert row["frame_sram_kb"] > 0, (name, generator)
        # A retained frame at 480x320x8bit is 150 KB: frame history dominates
        # line storage at this resolution, which is the point of reporting it
        # as its own column (sram_kb is the grand total, frame_sram_kb the
        # frame-buffer share).
        assert row["frame_sram_kb"] > line_kb, (name, generator)


def test_warm_temporal_compile_is_5x_faster_than_cold(benchmark):
    def cold_and_warm():
        engine = CompileEngine()
        target = CompileTarget(
            build_algorithm("temporal-denoise-m"), image_width=W, image_height=H
        )
        start = time.perf_counter()
        engine.compile(target)
        cold = time.perf_counter() - start
        # Best of several warm calls so one scheduler preemption cannot decide
        # the ratio (same convention as the spatial cache benchmark).
        warm = min(_timed(lambda: engine.compile(target)) for _ in range(5))
        return cold, warm, engine.cache.stats.snapshot()

    cold, warm, stats = benchmark.pedantic(cold_and_warm, rounds=1, iterations=1)
    speedup = cold / warm if warm > 0 else float("inf")
    print(
        f"\nTemporal cache: cold {cold * 1000:.1f} ms, warm {warm * 1000:.3f} ms "
        f"({speedup:.0f}x, hits={stats.hits}, misses={stats.misses})"
    )
    assert stats.hits == 5 and stats.misses == 1
    assert warm * 5 <= cold, f"warm temporal compile only {speedup:.1f}x faster than cold"


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
