#!/usr/bin/env python3
"""Serve compile requests from asyncio: the engine as a web-service backend.

A compilation service handles many concurrent clients — interactive designers
poking at resolutions, CI jobs regenerating figure sweeps — without dedicating
a thread per request.  This script simulates that: several async "clients"
each await their own ``CompileTarget`` on one shared :class:`CompileEngine`,
the engine fans the work out over its thread pool (the HiGHS backend releases
the GIL), identical in-flight requests are deduplicated, and repeated design
points are answered from the content-addressed cache in microseconds.

Everything a real service needs is shown here: ``async with`` engine
lifecycle, ``submit_async`` for single awaits, ``submit_batch_async`` for
grouped requests, and per-request sources/latency from the results.

Run:  python examples/async_serving.py
"""

from __future__ import annotations

import asyncio
import time

from repro import CompileEngine, CompileTarget
from repro.algorithms import build_algorithm

RESOLUTIONS = ((480, 320), (1920, 1080))


async def client(name: str, engine: CompileEngine, target: CompileTarget) -> None:
    result = await engine.submit_async(target.with_label(name))
    print(
        f"  {name:<28} {result.source:<13} {result.seconds * 1000:8.1f} ms  "
        f"{'ok' if result.ok else result.error}"
    )


async def main() -> None:
    async with CompileEngine(workers=4) as engine:
        # Phase 1: independent clients race on overlapping design points.
        # "unsharp-m@480x320" arrives twice: one solve, one dedup/cache answer.
        print("concurrent clients (shared engine):")
        targets = [
            CompileTarget(build_algorithm("unsharp-m"), image_width=480, image_height=320),
            CompileTarget(build_algorithm("harris-m"), image_width=480, image_height=320),
            CompileTarget(build_algorithm("unsharp-m"), image_width=480, image_height=320),
        ]
        await asyncio.gather(
            *(client(f"client-{i}:{t.dag.name}", engine, t) for i, t in enumerate(targets))
        )

        # Phase 2: one client awaits a whole batch — the canny-m suite at both
        # paper resolutions, plain and line-coalesced.
        batch_targets = [
            CompileTarget(build_algorithm("canny-m"), image_width=w, image_height=h)
            .with_options(coalescing=lc)
            .with_label(f"canny-m@{w}x{h}{'+lc' if lc else ''}")
            for (w, h) in RESOLUTIONS
            for lc in (False, True)
        ]
        batch = await engine.submit_batch_async(batch_targets)
        print(f"\nbatch of {len(batch)} canny-m design points in {batch.seconds:.2f}s:")
        for result in batch.results:
            print(
                f"  {result.target.label:<28} {result.source:<13} "
                f"{result.seconds * 1000:8.1f} ms"
            )

        # Phase 3: the same batch again — served without touching a solver.
        started = time.perf_counter()
        await engine.submit_batch_async(batch_targets)
        print(
            f"\nwarm re-batch: {time.perf_counter() - started:.3f}s "
            f"(engine hit rate {engine.hit_rate:.0%})"
        )
        print(f"\n{engine.describe()}")
        print(f"metrics: {engine.metrics.summary()}")


if __name__ == "__main__":
    asyncio.run(main())
