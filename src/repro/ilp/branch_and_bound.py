"""Pure-Python branch-and-bound MILP solver on top of the simplex LP engine.

This backend exists so the library works without SciPy's HiGHS interface and
so that the two backends can cross-validate each other in tests.  It is a
textbook best-first branch-and-bound:

1. solve the LP relaxation;
2. if the relaxation is integral, it is a candidate incumbent;
3. otherwise branch on the most fractional integer variable, adding
   ``x <= floor(v)`` / ``x >= ceil(v)`` bounds;
4. prune nodes whose relaxation bound cannot beat the incumbent.

Two extensions support the solve-acceleration layer:

* **Warm starts** — a feasible :class:`~repro.ilp.model.WarmStart` installs
  its objective as the incumbent bound before the first LP solve.  The search
  then only looks for *strictly better* solutions (for integral objectives
  the cutoff is a full unit below the incumbent, which is what makes the
  pruning bite); if none exists, the warm incumbent is returned as the proven
  optimum.  Among multiple optima the incumbent is therefore preferred — a
  deterministic, documented tie-break.
* **Cancellation** — an optional :class:`threading.Event` is checked between
  nodes so a racing supervisor (:func:`repro.ilp.solver.solve_racing`) can
  stop a losing search; cancellation raises
  :class:`~repro.errors.SolverCancelled`.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SolverCancelled, SolverError
from repro.ilp.model import Model, SolveResult, SolveStatus, WarmStart
from repro.ilp.simplex import solve_lp
from repro.trace import span_attr

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    bound: float
    tiebreak: int
    # The bound arrays must stay out of the ordering: ties on
    # (bound, tiebreak) would otherwise fall through to ambiguous elementwise
    # ndarray comparison inside heapq.  tiebreak is unique per node, so the
    # ordering is already total without them.
    lb: np.ndarray = field(default=None, compare=False)  # type: ignore[assignment]
    ub: np.ndarray = field(default=None, compare=False)  # type: ignore[assignment]


def _model_matrices(model: Model):
    """Translate a Model into (c, A_ub, b_ub, A_eq, b_eq, lb, ub) arrays."""
    n = model.num_variables
    c = np.zeros(n)
    for var, coeff in model.objective.coeffs.items():
        c[var.index] += coeff
    if model.sense == "max":
        c = -c

    rows_ub: list[np.ndarray] = []
    b_ub: list[float] = []
    rows_eq: list[np.ndarray] = []
    b_eq: list[float] = []
    for constraint in model.constraints:
        row = np.zeros(n)
        for var, coeff in constraint.expr.coeffs.items():
            row[var.index] += coeff
        if constraint.sense == "<=":
            rows_ub.append(row)
            b_ub.append(constraint.rhs)
        elif constraint.sense == ">=":
            rows_ub.append(-row)
            b_ub.append(-constraint.rhs)
        else:
            rows_eq.append(row)
            b_eq.append(constraint.rhs)

    lb = np.array([v.lb if v.lb is not None else -np.inf for v in model.variables])
    ub = np.array([v.ub if v.ub is not None else np.inf for v in model.variables])
    a_ub = np.vstack(rows_ub) if rows_ub else None
    a_eq = np.vstack(rows_eq) if rows_eq else None
    return c, a_ub, np.array(b_ub), a_eq, np.array(b_eq), lb, ub


def _objective_is_integral(model: Model) -> bool:
    """True when every feasible objective value lies on the integer lattice.

    Holds when each objective term has an integer coefficient over an integer
    variable — then any two feasible objective values differ by an integer,
    which licenses the unit-deep warm-start cutoff.
    """
    for var, coeff in model.objective.coeffs.items():
        if not var.integer or not float(coeff).is_integer():
            return False
    return True


def _resolve_warm_start(model: Model, warm_start: WarmStart) -> dict | None:
    """Map a warm start onto this model's variables; ``None`` if it cannot be."""
    by_name = {var.name: var for var in model.variables}
    values: dict = {}
    for key, value in warm_start.values.items():
        if isinstance(key, str):
            var = by_name.get(key)
        else:
            var = key
            owned = var.index < model.num_variables and model.variables[var.index] is var
            if not owned:
                var = None
        if var is None:
            return None
        values[var] = float(value)
    if not model.is_feasible(values):
        return None
    return values


def solve_branch_and_bound(
    model: Model,
    max_nodes: int = 200000,
    time_limit: float | None = None,
    *,
    warm_start: WarmStart | None = None,
    cancel: threading.Event | None = None,
) -> SolveResult:
    """Solve ``model`` exactly with branch and bound over the simplex engine."""
    import time

    start = time.monotonic()
    c, a_ub, b_ub, a_eq, b_eq, lb0, ub0 = _model_matrices(model)
    integer_indices = [v.index for v in model.variables if v.integer]

    counter = itertools.count()
    best_objective = math.inf
    best_x: np.ndarray | None = None
    total_lp_iterations = 0
    explored = 0
    pruned = 0

    # A feasible warm start installs its objective as the incumbent bound
    # (internally always min-sense, matching c above) *without* installing its
    # solution vector: only strictly better solutions are recorded, and the
    # warm values are returned verbatim when none exists.  For integral
    # objectives the cutoff sits a full unit below the incumbent, so sibling
    # optima prune immediately instead of being re-enumerated.
    warm_outcome = "none"
    warm_values: dict | None = None
    warm_internal: float | None = None
    if warm_start is not None:
        warm_values = _resolve_warm_start(model, warm_start)
        if warm_values is None:
            warm_outcome = "rejected"
        else:
            warm_outcome = "seeded"
            warm_true = model.objective_value(warm_values)
            warm_internal = warm_true if model.sense == "min" else -warm_true
            slack = (1.0 - _INT_TOL) if _objective_is_integral(model) else _INT_TOL
            best_objective = warm_internal - slack

    root = _Node(bound=-math.inf, tiebreak=next(counter), lb=lb0.copy(), ub=ub0.copy())
    heap: list[_Node] = [root]
    saw_unbounded_root = False

    while heap:
        if time_limit is not None and time.monotonic() - start > time_limit:
            raise SolverError("Branch-and-bound time limit exceeded")
        if cancel is not None and cancel.is_set():
            raise SolverCancelled(f"Branch-and-bound on {model.name!r} was cancelled")
        node = heapq.heappop(heap)
        if node.bound >= best_objective - 1e-9:
            pruned += 1
            continue
        explored += 1
        if explored > max_nodes:
            raise SolverError("Branch-and-bound node limit exceeded")

        relax = solve_lp(c, a_ub, b_ub, a_eq, b_eq, node.lb, node.ub)
        total_lp_iterations += relax.iterations
        if relax.status == "infeasible":
            continue
        if relax.status == "unbounded":
            if explored == 1:
                saw_unbounded_root = True
                # An unbounded relaxation of an integer program with a bounded
                # optimum cannot be resolved by bounding here; report it.
                break
            continue

        assert relax.x is not None
        if relax.objective is not None and relax.objective >= best_objective - 1e-9:
            pruned += 1
            continue

        fractional = [
            (abs(relax.x[i] - round(relax.x[i])), i)
            for i in integer_indices
            if abs(relax.x[i] - round(relax.x[i])) > _INT_TOL
        ]
        if not fractional:
            objective = float(relax.objective if relax.objective is not None else c @ relax.x)
            if objective < best_objective - 1e-9:
                best_objective = objective
                best_x = relax.x.copy()
                for i in integer_indices:
                    best_x[i] = round(best_x[i])
            continue

        _, branch_var = max(fractional)
        value = relax.x[branch_var]
        floor_value = math.floor(value)

        down = _Node(
            bound=float(relax.objective or 0.0),
            tiebreak=next(counter),
            lb=node.lb.copy(),
            ub=node.ub.copy(),
        )
        down.ub[branch_var] = min(down.ub[branch_var], floor_value)
        if down.lb[branch_var] <= down.ub[branch_var]:
            heapq.heappush(heap, down)

        up = _Node(
            bound=float(relax.objective or 0.0),
            tiebreak=next(counter),
            lb=node.lb.copy(),
            ub=node.ub.copy(),
        )
        up.lb[branch_var] = max(up.lb[branch_var], floor_value + 1)
        if up.lb[branch_var] <= up.ub[branch_var]:
            heapq.heappush(heap, up)

    # Reported onto the enclosing "ilp" span (no-op outside a trace): node
    # count is the cost driver of this backend, alongside LP iterations.
    span_attr(bnb_nodes=explored, bnb_pruned=pruned)
    if warm_start is not None:
        span_attr(warm_start=warm_outcome)

    if best_x is None:
        if saw_unbounded_root:
            return SolveResult(
                status=SolveStatus.UNBOUNDED,
                backend="python",
                iterations=total_lp_iterations,
                nodes=explored,
                pruned=pruned,
                warm_start=warm_outcome,
            )
        if warm_internal is not None:
            # The search exhausted without beating the incumbent: the warm
            # solution is a proven optimum.  Return it verbatim.
            assert warm_values is not None
            values = {
                var: float(round(value)) if var.integer else float(value)
                for var, value in warm_values.items()
            }
            return SolveResult(
                status=SolveStatus.OPTIMAL,
                objective=model.objective_value(values),
                values=values,
                backend="python",
                iterations=total_lp_iterations,
                nodes=explored,
                pruned=pruned,
                warm_start="incumbent",
            )
        return SolveResult(
            status=SolveStatus.INFEASIBLE,
            backend="python",
            iterations=total_lp_iterations,
            nodes=explored,
            pruned=pruned,
            warm_start=warm_outcome,
        )

    values = {var: float(best_x[var.index]) for var in model.variables}
    objective = model.objective.evaluate(values)
    return SolveResult(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        backend="python",
        iterations=total_lp_iterations,
        nodes=explored,
        pruned=pruned,
        warm_start=warm_outcome,
    )
