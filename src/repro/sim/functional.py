"""Functional (pixel-accurate) execution of a pipeline over NumPy images.

Scheduling never changes *what* an accelerator computes, only *when*; the
functional simulator therefore executes the DAG stage by stage in topological
order, evaluating each stage's DSL expression over whole images.  It is used
to validate the algorithm suite against independent NumPy/SciPy references
and to confirm that DAG rewrites (Darkroom linearization, line coalescing)
preserve semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsl.ast import StageRef, evaluate
from repro.errors import SimulationError
from repro.ir.dag import PipelineDAG
from repro.ir.traversal import topological_order


@dataclass
class FunctionalResult:
    """All intermediate and output images produced by a functional run."""

    dag: PipelineDAG
    images: dict[str, np.ndarray] = field(default_factory=dict)

    def image(self, stage: str) -> np.ndarray:
        if stage not in self.images:
            raise SimulationError(f"No image computed for stage {stage!r}")
        return self.images[stage]

    def output(self) -> np.ndarray:
        outputs = self.dag.output_stages()
        return self.image(outputs[0].name)

    def outputs(self) -> dict[str, np.ndarray]:
        return {s.name: self.image(s.name) for s in self.dag.output_stages()}


#: Accepted ``axes=`` values for :func:`run_functional`.
#: ``"yx"`` — a single 2-D frame; ``"fyx"`` — a 3-D stack of *independent*
#: frames (a batch); ``"tyx"`` — a 3-D *temporal sequence* whose leading axis
#: is time (frame ``i`` may read frames ``< i`` through ``dt`` references).
AXES_CONVENTIONS = ("yx", "fyx", "tyx")


def run_functional(
    dag: PipelineDAG,
    inputs: dict[str, np.ndarray] | np.ndarray,
    *,
    axes: str | None = None,
) -> FunctionalResult:
    """Execute every stage of ``dag`` over full images.

    ``inputs`` maps input-stage names to 2-D ``(height, width)`` arrays or 3-D
    ``(frames, height, width)`` batches; a single array may be passed when the
    pipeline has exactly one input stage.  Batched inputs evaluate every frame
    in one vectorized pass (see :mod:`repro.sim.batch` for the replay front).
    Stages without an expression (relay/virtual stages) forward their single
    producer unchanged.

    A 3-D input is ambiguous: it may be a batch of independent frames
    (``axes="fyx"``) or a temporal sequence (``axes="tyx"``).  The two agree
    for purely spatial pipelines, so ``axes`` may be omitted there (historic
    behaviour: an independent-frame batch).  Temporal pipelines *must* pass
    ``axes="tyx"`` — any other convention (or none) raises
    :class:`SimulationError` rather than silently reinterpreting the axis.
    """
    if axes is not None and axes not in AXES_CONVENTIONS:
        raise SimulationError(
            f"Unknown axes convention {axes!r}; expected one of {AXES_CONVENTIONS}"
        )
    temporal = dag.is_temporal()
    if temporal and axes != "tyx":
        if axes is None:
            raise SimulationError(
                f"Pipeline {dag.name!r} reads past frames; a 3-D input is ambiguous "
                "(frame batch vs temporal sequence). Pass axes='tyx' for a "
                "(frames, height, width) temporal sequence."
            )
        raise SimulationError(
            f"Pipeline {dag.name!r} reads past frames, which axes={axes!r} cannot "
            "express; pass axes='tyx'"
        )

    input_stages = dag.input_stages()
    if isinstance(inputs, np.ndarray):
        if len(input_stages) != 1:
            raise SimulationError(
                f"Pipeline has {len(input_stages)} input stages; pass a dict of images"
            )
        inputs = {input_stages[0].name: inputs}

    expected_ndim = {None: (2, 3), "yx": (2,), "fyx": (3,), "tyx": (3,)}[axes]
    images: dict[str, np.ndarray] = {}
    for stage in input_stages:
        if stage.name not in inputs:
            raise SimulationError(f"No input image supplied for input stage {stage.name!r}")
        image = np.asarray(inputs[stage.name], dtype=np.float64)
        if image.ndim not in (2, 3):
            raise SimulationError(
                f"Input image for {stage.name!r} must be 2-D (or a 3-D frame batch)"
            )
        if image.ndim not in expected_ndim:
            raise SimulationError(
                f"Input image for {stage.name!r} is {image.ndim}-D, which does not "
                f"match axes={axes!r} (expected {' or '.join(str(n) for n in expected_ndim)}-D)"
            )
        images[stage.name] = image

    shapes = {img.shape for img in images.values()}
    if len(shapes) > 1:
        raise SimulationError(f"Input images must share one shape, got {shapes}")

    for name in topological_order(dag):
        stage = dag.stage(name)
        if stage.is_input:
            continue
        producers = dag.producers_of(name)
        missing = [p for p in producers if p not in images]
        if missing:
            raise SimulationError(f"Stage {name!r} evaluated before producers {missing}")
        if stage.expression is None:
            # Relay (Darkroom dummy) or structural-only stage: forward the
            # first producer unchanged.
            images[name] = images[producers[0]].copy()
            continue
        expression = stage.expression
        if isinstance(expression, StageRef) and expression.dx == 0 and expression.dy == 0:
            images[name] = images[expression.stage].copy()
            continue
        # Evaluate against every image computed so far (not just direct
        # producers): rewrites such as Darkroom linearization leave stage
        # expressions referring to the original producer while routing the
        # data through a relay, and both views are functionally identical.
        images[name] = evaluate(expression, images)

    return FunctionalResult(dag=dag, images=images)
