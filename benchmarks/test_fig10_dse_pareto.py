"""Fig. 10: power-vs-area design-space exploration for Canny-m and Denoise-m.

Each line buffer may independently use a dual-port memory (DP) or dual-port
with line coalescing (DPLC); the sweep compiles every combination at 320p with
right-sized (custom) memory macros and extracts the Pareto frontier.  The
paper's observations: the Pareto-optimal set differs per algorithm, and for
Canny-m the all-DPLC design is far off the frontier.
"""

from __future__ import annotations

from repro.algorithms import build_algorithm
from repro.dse.pareto import pareto_front
from repro.dse.sweep import sweep_memory_configurations

W, H = 480, 320


def run_dse():
    outcomes = {}
    for algorithm in ("canny-m", "denoise-m"):
        points = sweep_memory_configurations(
            build_algorithm(algorithm), image_width=W, image_height=H
        )
        front = pareto_front(points, lambda p: (p.area_mm2, p.power_mw))
        outcomes[algorithm] = (points, front)
    return outcomes


def test_fig10_design_space_exploration(benchmark):
    outcomes = benchmark.pedantic(run_dse, rounds=1, iterations=1)

    for algorithm, (points, front) in outcomes.items():
        print(f"\nFig 10 ({algorithm}): {len(points)} designs, {len(front)} Pareto-optimal")
        print(f"{'design':<32}{'#DPLC':>7}{'area mm2':>11}{'power mW':>11}{'pareto':>8}")
        for point in sorted(points, key=lambda p: p.area_mm2):
            marker = "yes" if point in front else ""
            print(
                f"{point.label[:31]:<32}{point.coalesced_stages:>7}"
                f"{point.area_mm2:>11.3f}{point.power_mw:>11.2f}{marker:>8}"
            )

        # The sweep explores 2^k designs and finds a non-trivial frontier.
        assert len(points) >= 4
        assert 1 <= len(front) < len(points)

        all_dp = next(p for p in points if p.coalesced_stages == 0)
        all_dplc = max(points, key=lambda p: p.coalesced_stages)
        # Coalescing raises per-access energy, so the fully-coalesced design
        # always burns more power than the all-DP design (the paper's P1 vs P4).
        assert all_dplc.power_mw > all_dp.power_mw

    # Canny-m specific observation from the paper: the all-DPLC design (P4) is
    # far from the Pareto frontier.
    canny_points, canny_front = outcomes["canny-m"]
    canny_all_dplc = max(canny_points, key=lambda p: p.coalesced_stages)
    assert canny_all_dplc not in canny_front

    # The Pareto-optimal configurations differ between algorithms (the paper's
    # key DSE observation); report the frontier composition for EXPERIMENTS.md.
    canny_front = sorted(p.label for p in outcomes["canny-m"][1])
    denoise_front = sorted(p.label for p in outcomes["denoise-m"][1])
    print(f"\n  Canny-m Pareto set:   {canny_front}")
    print(f"  Denoise-m Pareto set: {denoise_front}")
