"""Per-stage memory-configuration sweep (reproduces Fig. 10).

Each line buffer in an algorithm may independently be implemented as a plain
dual-port memory (DP) or as a dual-port memory with line coalescing (DPLC).
The sweep enumerates every combination, compiles the pipeline for each, and
reports area and power so a designer (or the benchmark harness) can extract
the Pareto frontier.

Only buffers where coalescing can actually change the design (at least two
line slots and a block large enough for two lines) are swept; the rest are
fixed to DP, which keeps the sweep size at ``2^k`` for the ``k`` buffers that
matter — the paper's example of four configurable stages giving 16 designs.

The sweep is expressed in the unified request API: from one base
:class:`repro.api.CompileTarget` it derives each configuration as a
``base.with_options(...)`` target, so every design point carries the base
target's memory spec and scheduler knobs.  The baseline compile that
discovers the configurable buffers doubles as the all-DP design point, so it
is never solved twice.  Passing an ``engine`` (or ``parallel=N`` /
``executor="process"``) routes every configuration through a
:class:`repro.service.engine.CompileEngine`: designs compile concurrently on
the engine's executor backend, failures are captured per point instead of
aborting the sweep, and the all-DP configuration is served from the cache
entry the baseline compile warmed.

Serial sweeps (no engine) default to **compound** scheduling: the pending
variants' ILPs are folded into one block-diagonal model, warm-started from
the baseline's solution, solved in a single backend call and decomposed back
into per-variant schedules (``repro.core.scheduler.schedule_compound``).
Every design stays byte-identical to a solo solve and keeps its own
fingerprint; pass ``compound=False`` (or an ``engine``) to opt out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.api.target import CompileTarget
from repro.core.compiler import CompiledAccelerator, compile_target
from repro.errors import ReproError
from repro.estimate.report import AcceleratorReport, accelerator_report
from repro.estimate.sram_model import SramTechModel
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec


@dataclass
class DesignPoint:
    """One explored memory configuration and its evaluated metrics."""

    configuration: dict[str, str]  # buffer name -> "DP" | "DPLC"
    accelerator: CompiledAccelerator
    report: AcceleratorReport
    label: str = ""
    metadata: dict[str, float] = field(default_factory=dict)

    @property
    def area_mm2(self) -> float:
        return self.report.memory_area_mm2

    @property
    def power_mw(self) -> float:
        return self.report.memory_power_mw

    @property
    def coalesced_stages(self) -> int:
        return sum(1 for value in self.configuration.values() if value == "DPLC")


def _configurable_buffers(
    base: CompileTarget, engine=None
) -> tuple[CompiledAccelerator, list[str]]:
    """Compile the baseline design and list buffers whose DP/DPLC choice matters.

    Returns the baseline :class:`CompiledAccelerator` alongside the buffer
    names so the caller can reuse it as the all-DP design point instead of
    compiling the identical configuration a second time.
    """
    # Coalescing off regardless of the base options: the baseline must BE the
    # all-DP design (and expose the uncoalesced line buffers the DP/DPLC
    # choice applies to).  Its fingerprint then equals the derived all-DP
    # configuration's, which is what lets the engine path reuse it.
    baseline_target = base.with_options(coalescing=False).with_label(
        f"{base.dag.name}:baseline"
    )
    if engine is not None:
        baseline = engine.submit(baseline_target).unwrap()
    else:
        baseline = compile_target(baseline_target)
    if base.memory_spec.coalescing_factor(base.image_width) <= 1:
        return baseline, []
    configurable = [
        producer
        for producer, config in baseline.schedule.line_buffers.items()
        if config.lines >= 2
    ]
    return baseline, configurable


def _design_target(base: CompileTarget, configuration: dict[str, str]) -> CompileTarget:
    """Derive the target for one DP/DPLC configuration from the base target."""
    coalesce_any = any(choice == "DPLC" for choice in configuration.values())
    per_stage = {name: (choice == "DPLC") for name, choice in configuration.items()}
    return base.with_options(
        coalescing=coalesce_any,
        coalescing_policy="all",
        per_stage_coalescing=per_stage,
    ).with_label(f"{base.dag.name}:{_design_label(configuration)}")


def _design_label(configuration: dict[str, str]) -> str:
    return "+".join(
        name for name, choice in configuration.items() if choice == "DPLC"
    ) or "all-DP"


def sweep_memory_configurations(
    pipeline: CompileTarget | PipelineDAG,
    *,
    image_width: int | None = None,
    image_height: int | None = None,
    memory_spec: MemorySpec | None = None,
    tech: SramTechModel | None = None,
    max_designs: int = 1024,
    sizing: str = "custom",
    engine=None,
    parallel: int | None = None,
    executor: str | None = None,
    compound: bool | None = None,
) -> list[DesignPoint]:
    """Compile every DP/DPLC combination and return the evaluated design points.

    The DSE models an ASIC flow in which memory macros are compiled per design
    (``sizing="custom"``): a DPLC buffer uses fewer but larger macros, which
    lowers area but raises per-access energy — the trade-off of Fig. 10.

    Parameters
    ----------
    pipeline:
        The base design point: a :class:`repro.api.CompileTarget` (preferred;
        its memory spec and scheduler options seed every derived
        configuration) or a raw :class:`PipelineDAG` together with
        ``image_width``/``image_height``/``memory_spec`` keywords.
    engine:
        Optional :class:`repro.service.engine.CompileEngine`.  All ``2^k``
        configurations are submitted as one batch: compiles fan out over the
        engine's executor backend (thread pool, process pool or inline —
        whatever the engine was built with), repeated design points are
        served from its cache, and a design point that fails to compile is
        skipped (the sweep only raises when *every* point fails).  Results
        are identical to the serial path, in the same order.
    parallel:
        Convenience: ``parallel=N`` builds a throwaway engine with ``N``
        workers for this sweep (ignored when ``engine`` is given).
    executor:
        Convenience: backend name for the throwaway engine
        (``"inline"``/``"thread"``/``"process"``; default: the
        ``REPRO_EXECUTOR`` environment variable or ``thread``).  Use
        ``executor="process"`` to keep the ``2^k`` fan-out parallel when the
        HiGHS backend is unavailable and thread workers would serialize on
        the GIL.  Ignored when ``engine`` is given.
    compound:
        Solve the ``2^k`` variants as one compound model
        (:func:`repro.core.scheduler.schedule_compound`): the baseline's
        solution warm-starts every variant — most are *certified* optimal
        from the transfer alone and never build an ILP — and the remainder
        are solved as blocks of one block-diagonal model.  The resulting
        schedules are identical to the per-variant path (the warm transfer
        only short-circuits provably optimal solutions); per-variant
        fingerprints still enter the compile cache when one is available.
        The default (``None``) enables it for the serial path and disables
        it when an ``engine`` fans the variants out instead; it is forced
        off for non-big-M scheduler strategies, which the compound solver
        does not cover.
    """
    if isinstance(pipeline, CompileTarget):
        if image_width is not None or image_height is not None or memory_spec is not None:
            raise TypeError(
                "sweep_memory_configurations(target) takes no resolution/spec "
                "kwargs; derive the target instead"
            )
        base = pipeline
    else:
        if image_width is None or image_height is None:
            raise TypeError(
                "sweep_memory_configurations requires image_width and image_height"
            )
        base = CompileTarget(
            dag=pipeline,
            image_width=image_width,
            image_height=image_height,
            memory_spec=memory_spec,
        )
    if not base.is_imagen:
        raise ReproError(
            f"The DP/DPLC sweep only applies to the ImaGen optimizer; got "
            f"generator={base.generator!r}"
        )

    own_engine = False
    if engine is None and (parallel or executor):
        from repro.service.engine import CompileEngine

        engine = CompileEngine(workers=parallel, executor=executor)
        own_engine = True
    try:
        baseline, configurable = _configurable_buffers(base, engine)
        num_designs = 2 ** len(configurable)
        if num_designs > max_designs:
            raise ReproError(
                f"Sweep would produce {num_designs} designs for {len(configurable)} configurable "
                f"buffers (limit {max_designs})"
            )

        configurations = [
            dict(zip(configurable, choices))
            for choices in itertools.product(("DP", "DPLC"), repeat=len(configurable))
        ]
        use_compound = compound if compound is not None else engine is None
        if base.options.disjunction_strategy != "bigm":
            use_compound = False
        if use_compound:
            compiled = _compile_compound(
                base, configurations, baseline,
                cache=getattr(engine, "cache", None),
            )
        elif engine is not None:
            compiled = _compile_with_engine(base, configurations, engine)
        else:
            compiled = _compile_serially(base, configurations, baseline)

        points: list[DesignPoint] = []
        for configuration, accelerator, metadata in compiled:
            report = accelerator_report(accelerator.schedule, tech, sizing=sizing)
            points.append(
                DesignPoint(
                    configuration=configuration,
                    accelerator=accelerator,
                    report=report,
                    label=_design_label(configuration),
                    metadata=metadata,
                )
            )
        return points
    finally:
        if own_engine:
            engine.shutdown()


def _compile_serially(
    base: CompileTarget,
    configurations: list[dict[str, str]],
    baseline: CompiledAccelerator,
):
    compiled = []
    for configuration in configurations:
        if all(choice == "DP" for choice in configuration.values()):
            # The baseline compile *is* the all-DP design; reuse it.
            compiled.append((configuration, baseline, {}))
            continue
        accelerator = compile_target(_design_target(base, configuration))
        compiled.append((configuration, accelerator, {}))
    return compiled


def _compile_compound(
    base: CompileTarget,
    configurations: list[dict[str, str]],
    baseline: CompiledAccelerator,
    cache=None,
):
    """Solve every DPLC-bearing configuration as one compound model.

    The all-DP point reuses the baseline compile exactly like the serial
    path.  Every other configuration becomes one block of a single
    block-diagonal model, warm-started from the baseline's solution; the
    decomposed schedules are identical to per-variant solves, and each is
    recorded in ``cache`` (when given) under its own compile fingerprint so
    later exact requests hit.
    """
    from repro.core.scheduler import schedule_compound
    from repro.core.warmstart import hint_from_schedule

    variants = [
        (index, configuration, _design_target(base, configuration))
        for index, configuration in enumerate(configurations)
        if any(choice == "DPLC" for choice in configuration.values())
    ]
    accelerators: dict[int, CompiledAccelerator] = {}
    if variants:
        schedules = schedule_compound(
            base.dag,
            base.image_width,
            base.image_height,
            base.memory_spec,
            [target.options for _, _, target in variants],
            base_hint=hint_from_schedule(baseline.schedule),
        )
        for (index, _, target), schedule in zip(variants, schedules):
            fingerprint = target.fingerprint
            if cache is not None:
                cache.put(fingerprint, schedule)
            accelerators[index] = CompiledAccelerator(
                schedule=schedule,
                options=target.options,
                metadata={
                    "schedule_sources": ("solver",),
                    "schedule_fingerprints": (fingerprint,),
                },
                target=target,
            )

    compiled = []
    for index, configuration in enumerate(configurations):
        if index in accelerators:
            compiled.append((configuration, accelerators[index], {}))
        else:
            # The baseline compile *is* the all-DP design; reuse it.
            compiled.append((configuration, baseline, {}))
    return compiled


def _compile_with_engine(
    base: CompileTarget,
    configurations: list[dict[str, str]],
    engine,
):
    targets = [_design_target(base, configuration) for configuration in configurations]
    batch = engine.submit_batch(targets)
    compiled = []
    for configuration, result in zip(configurations, batch.results):
        if not result.ok:
            continue
        compiled.append(
            (configuration, result.accelerator, {"compile_seconds": result.seconds})
        )
    if configurations and not compiled:
        batch.raise_on_error()
    return compiled
