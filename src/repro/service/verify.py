"""Verification-as-a-service: golden replay and cycle legality as cached queries.

Stability: stable.

Compilation grew into a cached, admission-controlled, traced service;
verification — "does this design compute the right pixels, and is its
schedule stall-free?" — stayed a local library call.  This module closes the
gap with a :class:`VerifyEngine` that serves two check kinds with the same
production machinery compiles get:

``golden``
    Vectorized functional replay (:mod:`repro.sim.batch`): deterministic
    seeded frames run through both the *request's* DAG (the reference) and
    the *compiled* DAG (after any generator rewrites — Darkroom relays,
    coalescing), whole frame-batch per stage.  Passes when the outputs agree
    within ``tolerance`` (bit-exact by default) and, when the client pinned
    an ``expected_digest``, when the reference digest matches it.

``cycle``
    Reserved-table legality (:func:`repro.sim.cycle.check_schedule_legality`):
    closed-form R1/R2 plus a periodic R3 slot table over ports and blocks —
    O(lines x accessors) per buffer instead of the event walk's O(cycles).

``both`` runs the two in sequence (the default).

``rtl``
    RTL-level replay (:mod:`repro.rtl.sim`): the generated Verilog is
    elaborated back into a timing model and the same seeded golden frames
    stream through it, two-state and cycle-driven; passes when the RTL
    outputs agree **bit-exactly** with the vectorized replay.  When an
    external HDL tool (Icarus/Verilator) is available it additionally
    syntax-checks the source — optional, gated like the solver backends.

``perf``
    Performance measurement from the elaborated design: achieved
    cycles/frame and initiation interval, parsed out of the emitted source,
    against the schedule's ``end_to_end_latency_cycles`` bound; the verdict
    fails when achieved exceeds the bound.

Results are keyed by a **verify fingerprint** — SHA-256 over the compile
fingerprint x input spec (frames, seed, tolerance, expected digest) x check
kind — and reuse the compile service's production tiers: verdicts live in an
in-memory LRU plus the engine's shared :class:`~repro.service.cache.DiskCacheStore`
volume, identical in-flight requests deduplicate onto one execution, cold
verifies route through a bounded :class:`~repro.service.admission.AdmissionQueue`,
and the replay itself runs on an in-process executor backend.  Compiles are
*not* re-done: the engine's ``submit`` answers from its own cache/dedup/queue.

Verify bodies always run in-process (never the ``process`` backend): the
NumPy replay releases the GIL, so threads scale, and shipping frame stacks
across a process boundary would cost more than the check itself.  When the
compile engine's backend is remote, the verify engine brings up its own
thread pool of the same width.

Spans (``verify`` > ``verify_compile``/``verify_golden``/``verify_cycle``/
``verify_rtl``/``verify_perf``) feed the engine's stage histograms, giving
Prometheus the
``repro_stage_seconds{stage="verify"}`` family; counters surface through
``GET /v1/metrics`` under ``verify_*`` keys (see
:mod:`repro.service.observability`).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass, field, replace

import numpy as np

from repro.api.fingerprint import _digest
from repro.api.target import CompileTarget
from repro.errors import SimulationError
from repro.service.admission import AdmissionQueue, QueueFullError
from repro.service.engine import CompileEngine
from repro.service.events import emit_event
from repro.service.executor import ExecutorBackend, ThreadExecutor, relay_future, resolve_executor
from repro.sim.batch import golden_frames, replay_frames
from repro.sim.cycle import check_schedule_legality
from repro.trace import Span, collect_spans, trace_span

#: Version of the verify fingerprint composition *and* the verify wire/cache
#: payloads; bumping it invalidates every cached verdict.  v2 added the
#: ``rtl`` and ``perf`` check kinds; requests for the v1 kinds still encode
#: as v1 payloads (lowest sufficient version) and v1 payloads still decode.
VERIFY_FORMAT_VERSION = 2

#: Verify payload versions this build can decode.
READABLE_VERIFY_VERSIONS: tuple[int, ...] = (1, 2)

#: check kind -> one-line contract (single source for docs and validation).
CHECK_KINDS: dict[str, str] = {
    "golden": (
        "Functional replay of deterministic seeded frames through the reference "
        "and the compiled DAG; passes when outputs agree within tolerance "
        "(bit-exact by default) and match any pinned expected_digest."
    ),
    "cycle": (
        "Reserved-table legality of the compiled schedule: closed-form R1 "
        "(causality) and R2 (no premature eviction) plus a periodic R3 slot "
        "table (no port over-subscription) over blocks and ports; temporal "
        "schedules additionally check FB (frame-buffer coverage)."
    ),
    "both": "golden followed by cycle; passes only when both pass.",
    "rtl": (
        "Cycle-driven two-state simulation of the emitted Verilog (elaborated "
        "back from the source text): seeded golden frames stream through the "
        "design's line/frame buffers and must agree bit-exactly with the "
        "vectorized replay; an external HDL tool, when present, additionally "
        "syntax-checks the source."
    ),
    "perf": (
        "Achieved cycles/frame and initiation interval measured from the "
        "elaborated RTL against the schedule's end-to-end latency bound; "
        "fails when achieved exceeds the bound."
    ),
}

#: check kind -> lowest verify payload version that can express it.  The
#: encoder stamps this (so v1 kinds keep producing byte-stable v1 payloads)
#: and the decoder rejects a kind stamped below its floor.
CHECK_KIND_MIN_VERSION: dict[str, int] = {
    "golden": 1,
    "cycle": 1,
    "both": 1,
    "rtl": 2,
    "perf": 2,
}

#: (version, check kinds, notes) — the wire-protocol compatibility table
#: (single source for docs/wire-protocol.md).
VERIFY_PAYLOAD_VERSIONS: tuple[tuple[int, str, str], ...] = (
    (
        1,
        "`golden`, `cycle`, `both`",
        "Original verify payload; still emitted for these kinds (lowest "
        "sufficient version) and still decoded.",
    ),
    (
        2,
        "all of v1 plus `rtl`, `perf`",
        "Adds RTL-simulation and performance verdicts; bumping also "
        "invalidated every cached v1 verdict (the version salts the verify "
        "fingerprint).",
    ),
)

#: Wire/request fields beyond ``version``/``target``: (name, type, default,
#: meaning).  Single source for the decoder's accepted-key set and the
#: generated docs table.
VERIFY_REQUEST_FIELDS: tuple[tuple[str, str, str, str], ...] = (
    (
        "check",
        "string",
        '"both"',
        "Check kind: `golden` | `cycle` | `both` | `rtl` | `perf` (see docs/verification.md).",
    ),
    ("frames", "int", "2", "Frames replayed per golden/rtl check (>= 1)."),
    ("seed", "int", "0", "Seed of the deterministic input-frame generator."),
    (
        "tolerance",
        "float",
        "0.0",
        "Max absolute per-pixel error tolerated; 0.0 demands bit-exact outputs.",
    ),
    (
        "expected_digest",
        "string or null",
        "null",
        "Pinned SHA-256 of the reference replay; mismatch fails the golden check.",
    ),
    (
        "strict",
        "bool",
        "false",
        "Raise (HTTP 422 `verify-failed`) on a failed check instead of returning `passed: false`.",
    ),
)


@dataclass(frozen=True)
class VerifyRequest:
    """One verification query: a compile target plus the input/check spec."""

    target: CompileTarget
    check: str = "both"
    frames: int = 2
    seed: int = 0
    tolerance: float = 0.0
    expected_digest: str | None = None
    strict: bool = False

    def __post_init__(self) -> None:
        if self.check not in CHECK_KINDS:
            raise ValueError(
                f"check must be one of {sorted(CHECK_KINDS)}, got {self.check!r}"
            )
        if self.frames < 1:
            raise ValueError(f"frames must be >= 1, got {self.frames}")
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")

    @property
    def fingerprint(self) -> str:
        """The verify fingerprint (compile fingerprint x input spec x check)."""
        return verify_fingerprint(self)

    @property
    def wants_golden(self) -> bool:
        return self.check in ("golden", "both")

    @property
    def wants_cycle(self) -> bool:
        return self.check in ("cycle", "both")

    @property
    def wants_rtl(self) -> bool:
        return self.check == "rtl"

    @property
    def wants_perf(self) -> bool:
        return self.check == "perf"


def verify_fingerprint(request: VerifyRequest) -> str:
    """Content address of one verdict.

    ``strict`` is deliberately excluded: it changes how a failure is
    *delivered* (exception vs ``passed: false``), never what is computed, so
    strict and lax requests share cache entries and in-flight executions.
    """
    return _digest(
        {
            "verify_version": VERIFY_FORMAT_VERSION,
            "compile_fingerprint": request.target.fingerprint,
            "check": request.check,
            "frames": request.frames,
            "seed": request.seed,
            "tolerance": request.tolerance,
            "expected_digest": request.expected_digest,
        }
    )


@dataclass
class VerifyResult:
    """Outcome of one verify submission (cached, deduplicated, or fresh)."""

    request: VerifyRequest
    fingerprint: str
    compile_fingerprint: str
    passed: bool | None  # None when the check itself errored
    golden: dict | None = None
    cycle: dict | None = None
    rtl: dict | None = None
    perf: dict | None = None
    error: str | None = None
    error_kind: str | None = None
    source: str = "verified"  # verified | memory | disk | deduplicated
    compile_source: str | None = None
    seconds: float = 0.0
    spans: tuple[Span, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the check *ran* (a failed check is ok; an error is not)."""
        return self.error is None

    def failure_summary(self) -> str:
        """One line naming every failed check (for strict raises and logs)."""
        parts = []
        if self.golden is not None and not self.golden.get("passed", True):
            if self.golden.get("expected_match") is False:
                parts.append(
                    "golden digest mismatch (expected "
                    f"{(self.golden.get('expected_digest') or '')[:12]}…, got "
                    f"{self.golden.get('digest', '')[:12]}…)"
                )
            else:
                parts.append(
                    f"golden output mismatch (max_abs_error={self.golden.get('max_abs_error')})"
                )
        if self.cycle is not None and not self.cycle.get("passed", True):
            rules = sorted(
                {violation["rule"] for violation in self.cycle.get("violations", ())}
            )
            parts.append(f"cycle legality violated ({', '.join(rules)})")
        if self.rtl is not None and not self.rtl.get("passed", True):
            if self.rtl.get("expected_match") is False:
                parts.append(
                    "rtl digest mismatch vs pinned expected "
                    f"{(self.rtl.get('expected_digest') or '')[:12]}…"
                )
            elif self.rtl.get("external") and self.rtl["external"].get("ok") is False:
                parts.append(
                    f"external HDL check failed ({self.rtl['external'].get('tool')})"
                )
            else:
                parts.append(
                    "rtl output mismatch (rtl "
                    f"{self.rtl.get('rtl_digest', '')[:12]}… != replay "
                    f"{self.rtl.get('digest', '')[:12]}…)"
                )
        if self.perf is not None and not self.perf.get("passed", True):
            parts.append(
                "perf bound exceeded "
                f"({self.perf.get('cycles_per_frame')} > "
                f"{self.perf.get('bound_cycles_per_frame')} cycles/frame)"
            )
        if self.error is not None:
            parts.append(f"{self.error_kind}: {self.error}")
        return "; ".join(parts) or "verify failed"


_INHERIT = object()


class VerifyEngine:
    """Serve verify requests with caching, dedup and admission control.

    Parameters
    ----------
    engine:
        The :class:`CompileEngine` whose compiles, disk-cache volume and
        metrics this verify tier shares.  Compiling the target goes through
        ``engine.submit`` — cache hits, dedup and the engine's own admission
        queue all apply before any replay starts.
    max_entries:
        In-memory verdict LRU bound.
    executor:
        In-process backend for verify bodies: an :class:`ExecutorBackend`, a
        name (``"inline"``/``"thread"``), or ``None`` to share the engine's
        backend when it is in-process (else a private thread pool of the same
        width).  Remote backends are rejected — see the module docstring.
    max_pending / overflow:
        Admission bound and policy for cold verifies, defaulting to the
        engine's settings (``max_pending=None`` disables the queue).
    tracing:
        Whether verify executions record spans (default: the engine's flag).
    """

    def __init__(
        self,
        engine: CompileEngine,
        *,
        max_entries: int = 512,
        executor: ExecutorBackend | str | None = None,
        workers: int | None = None,
        max_pending=_INHERIT,
        overflow: str | None = None,
        tracing: bool | None = None,
    ) -> None:
        self.engine = engine
        self.max_entries = max(1, int(max_entries))
        self.tracing = engine.tracing if tracing is None else bool(tracing)
        self._executor = self._resolve_executor(executor, workers)
        if max_pending is _INHERIT:
            max_pending = engine.max_pending
        self.max_pending = max_pending
        self.overflow = overflow or engine.overflow
        if max_pending is None:
            self._admission: AdmissionQueue | None = None
        else:
            self._admission = AdmissionQueue(
                self._executor.workers,
                max_pending=max_pending,
                policy=self.overflow,
                retry_after=lambda: self.engine.metrics.mean_seconds or 1.0,
            )
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._verdicts: OrderedDict[str, dict] = OrderedDict()
        self._counters = {
            "requests": 0,
            "verified": 0,
            "passed": 0,
            "failed": 0,
            "errors": 0,
            "rejected": 0,
            "served_from_memory": 0,
            "served_from_disk": 0,
            "deduplicated": 0,
            "rtl_simulations": 0,
            "perf_measurements": 0,
            "seconds_total": 0.0,
        }

    def _resolve_executor(
        self, executor: ExecutorBackend | str | None, workers: int | None
    ) -> ExecutorBackend:
        width = workers or self.engine.workers
        if executor is None:
            base = self.engine._executor  # noqa: SLF001 - deliberate sharing
            return base if not base.remote else ThreadExecutor(width)
        if isinstance(executor, str):
            executor = resolve_executor(executor, workers=width)
        if executor.remote:
            raise ValueError(
                f"verify bodies run in-process, not on the remote {executor.name!r} "
                "backend (the replay releases the GIL; verdicts are small JSON)"
            )
        return executor

    # ------------------------------------------------------------ submission
    def submit(self, request: VerifyRequest, *, client: str = "") -> VerifyResult:
        """Verify one request; cached, deduplicated and admission-controlled.

        Raises :class:`~repro.service.admission.QueueFullError` when the
        verify (or underlying compile) queue sheds the job, and
        :class:`~repro.errors.SimulationError` when ``request.strict`` and
        the check fails.
        """
        started = time.perf_counter()
        fingerprint = request.fingerprint
        self._count(requests=1)
        cached = self._lookup(fingerprint)
        if cached is not None:
            payload, tier = cached
            result = self._from_payload(request, fingerprint, payload, tier)
            result.seconds = time.perf_counter() - started
            self._count_outcome(result)
            return self._finalize(result)

        owner = False
        with self._lock:
            future = self._inflight.get(fingerprint)
            if future is None:
                owner = True
                future = Future()
                future.set_running_or_notify_cancel()
                self._inflight[fingerprint] = future
                future.add_done_callback(
                    lambda _done, fp=fingerprint: self._forget(fp)
                )
        try:
            if owner:
                # A shed raises out of the dispatch itself (the placeholder is
                # settled with the same error for any joiners), so the counter
                # must cover both the dispatch and the wait.
                self._dispatch(request, fingerprint, future, client)
            result: VerifyResult = future.result()
        except QueueFullError:
            self._count(rejected=1)
            raise
        if not owner:
            result = replace(
                result, source="deduplicated", seconds=0.0, spans=(), request=request
            )
            self._count(deduplicated=1)
        else:
            result = replace(result, seconds=time.perf_counter() - started)
        self._count_outcome(result)
        return self._finalize(result)

    def _dispatch(
        self, request: VerifyRequest, fingerprint: str, future: Future, client: str
    ) -> None:
        def run_local(_target, _fingerprint) -> VerifyResult:
            return self._execute(request, fingerprint, client)

        def dispatch() -> Future:
            inner = self._executor.submit(run_local, request.target, fingerprint)
            inner.add_done_callback(lambda done: relay_future(done, future))
            return inner

        if self._admission is None:
            dispatch()
            return
        try:
            self._admission.submit(
                dispatch,
                client=client,
                on_cancel=lambda: future.set_exception(CancelledError()),
            )
        except BaseException as exc:  # QueueFullError, or a broken queue
            future.set_exception(exc)
            if isinstance(exc, QueueFullError):
                emit_event(
                    "queue.shed",
                    identity=client,
                    fingerprint=fingerprint,
                    retry_after=round(exc.retry_after, 3),
                )
            raise

    # -------------------------------------------------------------- the body
    def _execute(
        self, request: VerifyRequest, fingerprint: str, client: str
    ) -> VerifyResult:
        started = time.perf_counter()
        target = request.target
        golden = cycle = rtl = perf = None
        error = error_kind = None
        compile_source = None
        trace = collect_spans(enabled=self.tracing)
        try:
            with trace:
                with trace_span("verify", check=request.check, frames=request.frames):
                    with trace_span("verify_compile"):
                        compile_result = self.engine.submit(target, client=client)
                    compile_source = compile_result.source
                    if not compile_result.ok:
                        error = f"compile failed: {compile_result.error}"
                        error_kind = "CompileError"
                    else:
                        schedule = compile_result.unwrap().schedule
                        if request.wants_golden:
                            with trace_span("verify_golden", frames=request.frames):
                                golden = self._golden_check(request, schedule)
                        if request.wants_cycle:
                            with trace_span("verify_cycle"):
                                report = check_schedule_legality(schedule)
                                cycle = report.to_payload()
                        if request.wants_rtl:
                            with trace_span("verify_rtl", frames=request.frames):
                                rtl = self._rtl_check(request, schedule)
                            self._count(rtl_simulations=1)
                        if request.wants_perf:
                            with trace_span("verify_perf"):
                                perf = self._perf_check(schedule)
                            self._count(perf_measurements=1)
        except QueueFullError:
            raise  # the *compile* was shed; surface it as such, not as a verdict
        except SimulationError as exc:
            error, error_kind = str(exc), "SimulationError"
        except Exception as exc:  # noqa: BLE001 - a verdict, not a crash
            error, error_kind = str(exc), type(exc).__name__
        self.engine.metrics.observe_spans(trace.spans)

        passed: bool | None = None
        if error is None:
            passed = all(
                part is None or part.get("passed", False)
                for part in (golden, cycle, rtl, perf)
            )
        result = VerifyResult(
            request=request,
            fingerprint=fingerprint,
            compile_fingerprint=target.fingerprint,
            passed=passed,
            golden=golden,
            cycle=cycle,
            rtl=rtl,
            perf=perf,
            error=error,
            error_kind=error_kind,
            source="verified",
            compile_source=compile_source,
            seconds=time.perf_counter() - started,
            spans=trace.spans,
        )
        self._count(verified=1)
        if error is None:
            self._remember(fingerprint, result)
        return result

    def _golden_check(self, request: VerifyRequest, schedule) -> dict:
        target = request.target
        reference = replay_frames(
            target.dag,
            target.image_width,
            target.image_height,
            frames=request.frames,
            seed=request.seed,
        )
        if schedule.dag is target.dag:
            compiled = reference
        else:
            compiled = replay_frames(
                schedule.dag,
                target.image_width,
                target.image_height,
                frames=request.frames,
                seed=request.seed,
            )
        max_abs_error = (
            0.0
            if compiled is reference
            else float(np.max(np.abs(compiled.output() - reference.output())))
        )
        expected_match = (
            None
            if request.expected_digest is None
            else reference.digest == request.expected_digest
        )
        passed = max_abs_error <= request.tolerance and expected_match is not False
        return {
            "passed": passed,
            "digest": reference.digest,
            "compiled_digest": compiled.digest,
            "max_abs_error": max_abs_error,
            "frames": request.frames,
            "seed": request.seed,
            "tolerance": request.tolerance,
            "expected_digest": request.expected_digest,
            "expected_match": expected_match,
        }

    def _rtl_check(self, request: VerifyRequest, schedule) -> dict:
        """Stream golden frames through the elaborated RTL; demand bit-exact."""
        from repro.rtl.generator import generate_verilog
        from repro.rtl.sim import (
            check_external_syntax,
            elaborate_design,
            external_simulator,
            simulate_design,
        )

        source = generate_verilog(schedule)
        design = elaborate_design(source, schedule.dag)
        inputs = golden_frames(
            schedule.dag,
            schedule.image_width,
            schedule.image_height,
            frames=request.frames,
            seed=request.seed,
        )
        simulated = simulate_design(design, schedule, inputs)
        reference = replay_frames(
            schedule.dag,
            schedule.image_width,
            schedule.image_height,
            frames=request.frames,
            seed=request.seed,
        )
        expected_match = (
            None
            if request.expected_digest is None
            else reference.digest == request.expected_digest
        )
        payload = {
            "passed": simulated.digest == reference.digest
            and expected_match is not False,
            "digest": reference.digest,
            "rtl_digest": simulated.digest,
            "frames": request.frames,
            "seed": request.seed,
            "expected_digest": request.expected_digest,
            "expected_match": expected_match,
            "cycles_per_frame": simulated.cycles_per_frame,
            "external": None,
        }
        tool = external_simulator()
        if tool is not None:
            external = check_external_syntax(source, tool)
            payload["external"] = external
            if external["ok"] is False:
                payload["passed"] = False
        return payload

    def _perf_check(self, schedule) -> dict:
        """Measure achieved cycles/frame from the elaborated RTL vs the bound."""
        from repro.rtl.generator import generate_verilog
        from repro.rtl.sim import elaborate_design, measure_performance

        design = elaborate_design(generate_verilog(schedule), schedule.dag)
        payload = measure_performance(
            design,
            schedule.image_height,
            bound_cycles=schedule.end_to_end_latency_cycles,
        )
        payload["generator"] = schedule.generator
        return payload

    # ------------------------------------------------------------- the cache
    def _payload_of(self, result: VerifyResult) -> dict:
        return {
            "verify_version": VERIFY_FORMAT_VERSION,
            "check": result.request.check,
            "compile_fingerprint": result.compile_fingerprint,
            "passed": result.passed,
            "golden": result.golden,
            "cycle": result.cycle,
            "rtl": result.rtl,
            "perf": result.perf,
        }

    def _remember(self, fingerprint: str, result: VerifyResult) -> None:
        payload = self._payload_of(result)
        with self._lock:
            self._verdicts[fingerprint] = payload
            self._verdicts.move_to_end(fingerprint)
            while len(self._verdicts) > self.max_entries:
                self._verdicts.popitem(last=False)
        store = self.engine.cache.store
        if store is not None:
            store.save(fingerprint, payload)

    def _lookup(self, fingerprint: str) -> tuple[dict, str] | None:
        with self._lock:
            payload = self._verdicts.get(fingerprint)
            if payload is not None:
                self._verdicts.move_to_end(fingerprint)
                return payload, "memory"
        store = self.engine.cache.store
        if store is not None:
            payload = store.load(fingerprint)
            if (
                isinstance(payload, dict)
                and payload.get("verify_version") == VERIFY_FORMAT_VERSION
            ):
                with self._lock:
                    self._verdicts[fingerprint] = payload
                    while len(self._verdicts) > self.max_entries:
                        self._verdicts.popitem(last=False)
                return payload, "disk"
        return None

    def _from_payload(
        self, request: VerifyRequest, fingerprint: str, payload: dict, tier: str
    ) -> VerifyResult:
        return VerifyResult(
            request=request,
            fingerprint=fingerprint,
            compile_fingerprint=payload.get("compile_fingerprint", ""),
            passed=payload.get("passed"),
            golden=payload.get("golden"),
            cycle=payload.get("cycle"),
            rtl=payload.get("rtl"),
            perf=payload.get("perf"),
            source=tier,
        )

    def _forget(self, fingerprint: str) -> None:
        with self._lock:
            self._inflight.pop(fingerprint, None)

    # ------------------------------------------------------------ accounting
    def _count(self, **deltas) -> None:
        with self._lock:
            for key, delta in deltas.items():
                self._counters[key] += delta

    def _count_outcome(self, result: VerifyResult) -> None:
        deltas: dict = {"seconds_total": result.seconds}
        if result.source == "memory":
            deltas["served_from_memory"] = 1
        elif result.source == "disk":
            deltas["served_from_disk"] = 1
        if result.error is not None:
            deltas["errors"] = 1
        elif result.passed:
            deltas["passed"] = 1
        else:
            deltas["failed"] = 1
        self._count(**deltas)

    def _finalize(self, result: VerifyResult) -> VerifyResult:
        if result.request.strict:
            if result.error_kind == "SimulationError":
                raise SimulationError(result.error or "verification failed")
            if result.passed is False:
                raise SimulationError(result.failure_summary())
        return result

    def stats(self) -> dict:
        """Counters for ``GET /v1/metrics`` (served under ``verify_*`` keys)."""
        with self._lock:
            stats = dict(self._counters)
            stats["cache_entries"] = len(self._verdicts)
            stats["seconds_total"] = round(stats["seconds_total"], 6)
        return stats

    def admission_stats(self) -> dict:
        """The verify admission queue's counters (zero-schema when unbounded)."""
        if self._admission is None:
            return {
                "max_pending": 0,
                "overflow": self.overflow,
                "queue_depth": 0,
                "inflight": 0,
                "admitted_total": 0,
                "rejected_total": 0,
                "blocked_total": 0,
                "queued_clients": 0,
            }
        return self._admission.stats()
