"""Observability surface: span tracing, metric registry, Prometheus export.

Stability: public.

Three things live here, and they are deliberately one module because they
must agree with each other:

* **The span tracer** — re-exported from :mod:`repro.trace` (which is
  stdlib-only so the core/ILP/RTL layers can instrument themselves without
  importing the serving layer): :func:`trace_span`, :func:`span_attr`,
  :class:`collect_spans`, :class:`Span`, and the payload codecs.  The hot
  path emits spans named after the stages of the paper's flow — ``cache``
  (tier lookup), ``solve`` (ILP scheduling, with the nested ``ilp`` backend
  span), ``allocate`` (line-buffer realization), ``coalescing_fallback``
  (the second solve of the auto policy), ``rtl`` (Verilog generation) and
  ``disk_read``/``disk_write`` (disk-tier I/O).
* **The metric registry** — :class:`MetricSpec` declares every key the
  service exposes on ``GET /v1/metrics`` and ``GET /v1/cache/stats``: its
  JSON key, kind, unit, help text, stability, and (when exported) its
  Prometheus sample name.  The registry is the single source of truth: the
  exposition renderer walks it, the documentation tables in ``docs/`` are
  generated from it (``tools/gen_docs_tables.py``), and a unit test pins
  that no endpoint key ships unregistered.
* **The exposition renderer** — :func:`render_prometheus` turns the flat
  metrics JSON plus the engine's per-stage histograms into Prometheus text
  exposition format 0.0.4 (the ``GET /v1/metrics?format=prometheus``
  response, content type :data:`PROMETHEUS_CONTENT_TYPE`).

See ``docs/observability.md`` for the span model and a scrape example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_STAGES,
    SOURCE_CLASSES,
    StageHistogram,
    classify_source,
)
from repro.trace import (
    TRACE_ENV_VAR,
    Span,
    collect_spans,
    default_tracing,
    flatten_spans,
    span_attr,
    spans_from_payload,
    spans_to_payload,
    trace_span,
    tracing_active,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_STAGES",
    "METRIC_SPECS",
    "PROMETHEUS_CONTENT_TYPE",
    "SOURCE_CLASSES",
    "STAGE_HISTOGRAM_FAMILY",
    "TRACE_ENV_VAR",
    "MetricSpec",
    "Span",
    "StageHistogram",
    "classify_source",
    "collect_spans",
    "default_tracing",
    "flatten_spans",
    "metric_spec",
    "registered_keys",
    "render_prometheus",
    "span_attr",
    "spans_from_payload",
    "spans_to_payload",
    "trace_span",
    "tracing_active",
]

#: Content type of the text exposition response (Prometheus format 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Family name of the per-stage latency histograms; one
#: ``{stage="..."}``-labelled histogram per span name.
STAGE_HISTOGRAM_FAMILY = "repro_stage_seconds"


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric key the service exposes.

    Attributes
    ----------
    key:
        The key in the endpoint's JSON payload.
    kind:
        ``counter``/``gauge``/``histogram`` (Prometheus-typed), ``info``
        (a string that becomes a label on ``repro_service_info``), or
        ``object`` (structured JSON with no Prometheus form).
    unit:
        Unit of the value (``""`` for dimensionless counts).
    help:
        One-line meaning; for Prometheus-exported metrics this is the
        ``# HELP`` text, shared by every member of a sample family.
    stability:
        ``stable`` (renames are breaking) or ``experimental``.
    prometheus:
        Sample name in the exposition, optionally with fixed labels
        (``repro_latency_seconds{stat="p50",class="all"}``); ``None`` for
        JSON-only keys.
    endpoint:
        Which endpoint serves the key.
    """

    key: str
    kind: str
    unit: str
    help: str
    stability: str = "stable"
    prometheus: str | None = None
    endpoint: str = "/v1/metrics"


_LATENCY_HELP = "Request latency over the recent-trace window, by statistic and source class (rejected traces excluded)."

#: Every key of the flat ``GET /v1/metrics`` object and of
#: ``GET /v1/cache/stats``, in documentation order.  A unit test pins that
#: live endpoint payloads never carry a key missing here.
METRIC_SPECS: tuple[MetricSpec, ...] = (
    # -- engine request counters (EngineMetrics.summary) ---------------------
    MetricSpec("requests", "counter", "", "Compile jobs accounted by the engine, all source classes.", prometheus="repro_requests_total"),
    MetricSpec("compiled", "counter", "", "Jobs answered by a fresh generator run (at least one solve).", prometheus="repro_compiled_total"),
    MetricSpec("served_from_cache", "counter", "", "Jobs answered entirely from the memory or disk cache tier.", prometheus="repro_served_from_cache_total"),
    MetricSpec("deduplicated", "counter", "", "Jobs that joined an identical in-flight request instead of running.", prometheus="repro_deduplicated_total"),
    MetricSpec("rejected", "counter", "", "Jobs shed by the admission queue, as seen in the engine's request traces (the queue's rejected_total is authoritative).", prometheus="repro_rejected_results_total"),
    MetricSpec("errors", "counter", "", "Jobs that failed (infeasible design points, internal errors, sheds).", prometheus="repro_errors_total"),
    MetricSpec("batches", "counter", "", "Batch submissions (each containing many jobs).", prometheus="repro_batches_total"),
    MetricSpec("total_seconds", "counter", "seconds", "Wall-clock seconds spent answering requests, summed over jobs.", prometheus="repro_request_seconds_total"),
    # -- latency aggregates --------------------------------------------------
    MetricSpec("mean_seconds", "gauge", "seconds", _LATENCY_HELP, prometheus='repro_latency_seconds{stat="mean",class="all"}'),
    MetricSpec("p50_seconds", "gauge", "seconds", _LATENCY_HELP, prometheus='repro_latency_seconds{stat="p50",class="all"}'),
    MetricSpec("p95_seconds", "gauge", "seconds", _LATENCY_HELP, prometheus='repro_latency_seconds{stat="p95",class="all"}'),
    MetricSpec("p50_seconds_compiled", "gauge", "seconds", _LATENCY_HELP, prometheus='repro_latency_seconds{stat="p50",class="compiled"}'),
    MetricSpec("p95_seconds_compiled", "gauge", "seconds", _LATENCY_HELP, prometheus='repro_latency_seconds{stat="p95",class="compiled"}'),
    MetricSpec("p50_seconds_served_from_cache", "gauge", "seconds", _LATENCY_HELP, prometheus='repro_latency_seconds{stat="p50",class="served_from_cache"}'),
    MetricSpec("p95_seconds_served_from_cache", "gauge", "seconds", _LATENCY_HELP, prometheus='repro_latency_seconds{stat="p95",class="served_from_cache"}'),
    # -- per-stage spans -----------------------------------------------------
    MetricSpec("stage_seconds", "histogram", "seconds", "Per-stage span durations (cache/solve/allocate/rtl and nested stages); JSON carries count/sum/mean per stage, the exposition carries full histograms.", prometheus=STAGE_HISTOGRAM_FAMILY + '{stage="..."}'),
    # -- ILP solver effectiveness (EngineMetrics, from ilp/ilp_compound spans)
    MetricSpec("ilp_solves", "counter", "", "ILP backend invocations observed in request spans (warm-start certificates included as zero-cost solves).", prometheus="repro_ilp_solves_total"),
    MetricSpec("ilp_warm_certificates", "counter", "", "Solves short-circuited by a warm-start transfer certified optimal (no model built).", prometheus="repro_ilp_warm_certificates_total"),
    MetricSpec("ilp_warm_seeded", "counter", "", "Solves whose branch-and-bound was seeded with a warm-start incumbent (seeded or returned as incumbent).", prometheus="repro_ilp_warm_seeded_total"),
    MetricSpec("ilp_races", "counter", "", "Solves run as a backend race (python vs HiGHS, first finisher wins).", prometheus="repro_ilp_races_total"),
    MetricSpec("ilp_race_wins_python", "counter", "", "Backend races won by the pure-Python branch-and-bound.", prometheus="repro_ilp_race_wins_python_total"),
    MetricSpec("ilp_race_wins_highs", "counter", "", "Backend races won by the HiGHS backend.", prometheus="repro_ilp_race_wins_highs_total"),
    MetricSpec("ilp_pruned_nodes", "counter", "", "Branch-and-bound nodes pruned by bound across observed solves.", prometheus="repro_ilp_pruned_nodes_total"),
    MetricSpec("ilp_compound_solves", "counter", "", "Compound (block-diagonal) model solves, each covering many design variants.", prometheus="repro_ilp_compound_solves_total"),
    MetricSpec("ilp_compound_blocks", "counter", "", "Blocks solved inside compound models (variants not already certified).", prometheus="repro_ilp_compound_blocks_total"),
    # -- executor backend (ExecutorBackend.stats) ----------------------------
    MetricSpec("executor", "info", "", "Active execution backend name (label on repro_service_info)."),
    MetricSpec("workers", "gauge", "workers", "Live worker count (autoscalers report the current fleet).", prometheus="repro_workers"),
    MetricSpec("max_workers", "gauge", "workers", "Configured worker-fleet ceiling.", prometheus="repro_max_workers"),
    MetricSpec("min_workers", "gauge", "workers", "Configured worker-fleet floor (autoscaling backends only).", prometheus="repro_min_workers"),
    MetricSpec("busy_workers", "gauge", "workers", "Workers currently running a job (autoscaling backends only).", prometheus="repro_busy_workers"),
    MetricSpec("executor_queue_depth", "gauge", "", "Jobs queued inside the executor backend awaiting a worker.", prometheus="repro_executor_queue_depth"),
    MetricSpec("scale_ups", "counter", "", "Workers added by the autoscaler (zero on fixed fleets).", prometheus="repro_scale_ups_total"),
    MetricSpec("scale_downs", "counter", "", "Idle workers retired by the autoscaler (zero on fixed fleets).", prometheus="repro_scale_downs_total"),
    MetricSpec("scaling_events", "object", "", "Ring of recent autoscaler decisions (grow/shrink, fleet size, time)."),
    # -- admission queue (CompileEngine.admission_stats) ---------------------
    MetricSpec("max_pending", "gauge", "", "Bound on queued-but-undispatched jobs (null when unbounded).", prometheus="repro_max_pending"),
    MetricSpec("overflow", "info", "", "Full-queue policy, shed or block (label on repro_service_info)."),
    MetricSpec("queue_depth", "gauge", "", "Jobs admitted but not yet dispatched to the executor.", prometheus="repro_queue_depth"),
    MetricSpec("inflight", "gauge", "", "Jobs currently dispatched through the admission queue.", prometheus="repro_inflight"),
    MetricSpec("admitted_total", "counter", "", "Jobs accepted by the admission queue since start.", prometheus="repro_admitted_total"),
    MetricSpec("rejected_total", "counter", "", "Jobs shed by the admission queue since start (authoritative shed count).", prometheus="repro_rejected_total"),
    MetricSpec("blocked_total", "counter", "", "Submissions that waited for queue space under the block policy.", prometheus="repro_blocked_total"),
    MetricSpec("queued_clients", "gauge", "", "Distinct client identities with work waiting in the queue.", prometheus="repro_queued_clients"),
    # -- verification engine (VerifyEngine.stats) ----------------------------
    MetricSpec("verify_requests", "counter", "", "Verification jobs accounted by the verify engine, all source classes.", prometheus="repro_verify_requests_total"),
    MetricSpec("verify_verified", "counter", "", "Verification jobs that ran checks fresh (replay and/or legality analysis).", prometheus="repro_verify_verified_total"),
    MetricSpec("verify_passed", "counter", "", "Completed verifications whose checks all passed.", prometheus="repro_verify_passed_total"),
    MetricSpec("verify_failed", "counter", "", "Completed verifications with at least one failed check (mismatch or violation).", prometheus="repro_verify_failed_total"),
    MetricSpec("verify_errors", "counter", "", "Verification jobs that errored before producing a verdict (infeasible compiles, internal errors).", prometheus="repro_verify_errors_total"),
    MetricSpec("verify_rejected", "counter", "", "Verification jobs shed by the verify admission queue.", prometheus="repro_verify_rejected_total"),
    MetricSpec("verify_served_from_memory", "counter", "", "Verdicts answered from the in-memory verdict cache.", prometheus="repro_verify_served_from_memory_total"),
    MetricSpec("verify_served_from_disk", "counter", "", "Verdicts answered from the disk verdict tier.", prometheus="repro_verify_served_from_disk_total"),
    MetricSpec("verify_deduplicated", "counter", "", "Verification jobs that joined an identical in-flight verification.", prometheus="repro_verify_deduplicated_total"),
    MetricSpec("verify_rtl_simulations", "counter", "", "RTL simulations run by fresh `rtl` checks (cached verdicts do not re-simulate).", prometheus="repro_verify_rtl_simulations_total"),
    MetricSpec("verify_perf_measurements", "counter", "", "Performance measurements run by fresh `perf` checks (achieved cycles/frame vs the schedule bound).", prometheus="repro_verify_perf_measurements_total"),
    MetricSpec("verify_seconds_total", "counter", "seconds", "Wall-clock seconds spent answering verification requests.", prometheus="repro_verify_seconds_total"),
    MetricSpec("verify_cache_entries", "gauge", "", "Entries in the in-memory verdict cache.", prometheus="repro_verify_cache_entries"),
    # -- HTTP front ----------------------------------------------------------
    MetricSpec("throttled_total", "counter", "", "Requests answered 429 by the per-identity rate limiter.", prometheus="repro_throttled_total"),
    MetricSpec("rate_limit", "object", "", "Rate-limiter configuration and counters (present when --rate-limit is set)."),
    MetricSpec("auth", "info", "", "Authentication mode, token or anonymous (label on repro_service_info)."),
    # -- cache occupancy (GET /v1/cache/stats) -------------------------------
    MetricSpec("entries", "gauge", "", "Entries in the in-memory LRU tier.", prometheus="repro_cache_entries", endpoint="/v1/cache/stats"),
    MetricSpec("max_entries", "gauge", "", "Capacity of the in-memory LRU tier.", prometheus="repro_cache_max_entries", endpoint="/v1/cache/stats"),
    MetricSpec("hits", "counter", "", "Cache hits, both tiers (a disk hit also counts here).", prometheus="repro_cache_hits_total", endpoint="/v1/cache/stats"),
    MetricSpec("misses", "counter", "", "Cache misses (the caller had to run a generator).", prometheus="repro_cache_misses_total", endpoint="/v1/cache/stats"),
    MetricSpec("evictions", "counter", "", "Entries evicted from the memory LRU.", prometheus="repro_cache_evictions_total", endpoint="/v1/cache/stats"),
    MetricSpec("stores", "counter", "", "Freshly solved schedules recorded in the cache.", prometheus="repro_cache_stores_total", endpoint="/v1/cache/stats"),
    MetricSpec("disk_hits", "counter", "", "Hits served by the disk tier (promoted into memory).", prometheus="repro_cache_disk_hits_total", endpoint="/v1/cache/stats"),
    MetricSpec("disk_stores", "counter", "", "Schedules persisted to the disk tier.", prometheus="repro_cache_disk_stores_total", endpoint="/v1/cache/stats"),
    MetricSpec("neighbor_hits", "counter", "", "Warm-start neighbor lookups that found a same-DAG schedule to seed the solver.", prometheus="repro_cache_neighbor_hits_total", endpoint="/v1/cache/stats"),
    MetricSpec("neighbor_misses", "counter", "", "Warm-start neighbor lookups that found no usable same-DAG schedule.", prometheus="repro_cache_neighbor_misses_total", endpoint="/v1/cache/stats"),
    MetricSpec("hit_rate", "gauge", "", "hits / (hits + misses) since start.", prometheus="repro_cache_hit_rate", endpoint="/v1/cache/stats"),
    MetricSpec("disk_entries", "gauge", "", "Entries in the disk tier (present with --cache-dir).", prometheus="repro_cache_disk_entries", endpoint="/v1/cache/stats"),
    MetricSpec("disk_directory", "info", "", "Disk-tier directory (present with --cache-dir).", endpoint="/v1/cache/stats"),
    MetricSpec("disk_bytes", "gauge", "bytes", "Total size of disk-tier entries (bounded volumes only).", prometheus="repro_cache_disk_bytes", endpoint="/v1/cache/stats"),
    MetricSpec("disk_max_bytes", "gauge", "bytes", "Configured disk-tier size bound (bounded volumes only).", prometheus="repro_cache_disk_max_bytes", endpoint="/v1/cache/stats"),
    MetricSpec("disk_max_age_seconds", "gauge", "seconds", "Configured disk-tier age bound (bounded volumes only).", prometheus="repro_cache_disk_max_age_seconds", endpoint="/v1/cache/stats"),
)

_SPECS_BY_ENDPOINT_KEY = {(spec.endpoint, spec.key): spec for spec in METRIC_SPECS}


def metric_spec(key: str, endpoint: str = "/v1/metrics") -> MetricSpec | None:
    """Look up one registered spec by JSON key (``None`` when unregistered)."""
    return _SPECS_BY_ENDPOINT_KEY.get((endpoint, key))


def registered_keys(endpoint: str = "/v1/metrics") -> set[str]:
    """All JSON keys the registry declares for one endpoint."""
    return {spec.key for spec in METRIC_SPECS if spec.endpoint == endpoint}


# ---------------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ---------------------------------------------------------------------------
def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return format(float(value), "g")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _family_of(sample: str) -> str:
    return sample.split("{", 1)[0]


def render_prometheus(
    values: dict,
    stage_histograms: dict[str, dict] | None = None,
    cache: dict | None = None,
) -> str:
    """Render the metrics payloads as Prometheus text exposition 0.0.4.

    ``values`` is the flat ``GET /v1/metrics`` object, ``stage_histograms``
    the engine's :meth:`EngineMetrics.stage_histograms` snapshot (cumulative
    buckets), ``cache`` the optional ``GET /v1/cache/stats`` object (its
    gauges and counters are exported under ``repro_cache_*``).  Only
    registered numeric keys are exported; string-valued ``info`` keys become
    labels on one ``repro_service_info`` gauge, and ``object`` keys stay
    JSON-only.  Samples keep the registry's declared order, and HELP/TYPE
    headers are emitted once per family.
    """
    lines: list[str] = []
    seen_families: set[str] = set()
    info_labels: list[tuple[str, str]] = []
    for spec in METRIC_SPECS:
        payload = values if spec.endpoint == "/v1/metrics" else cache
        if payload is None or spec.key not in payload:
            continue
        value = payload[spec.key]
        if spec.kind == "info":
            if spec.endpoint == "/v1/metrics" and isinstance(value, str):
                info_labels.append((spec.key, value))
            continue
        if spec.prometheus is None or spec.kind in ("object", "histogram"):
            continue
        if value is None or not isinstance(value, (int, float)):
            continue  # e.g. max_pending: null on unbounded engines
        family = _family_of(spec.prometheus)
        if family not in seen_families:
            seen_families.add(family)
            lines.append(f"# HELP {family} {spec.help}")
            lines.append(f"# TYPE {family} {spec.kind}")
        lines.append(f"{spec.prometheus} {_format_value(value)}")

    if stage_histograms:
        histogram_spec = metric_spec("stage_seconds")
        lines.append(f"# HELP {STAGE_HISTOGRAM_FAMILY} {histogram_spec.help}")
        lines.append(f"# TYPE {STAGE_HISTOGRAM_FAMILY} histogram")
        for stage in sorted(stage_histograms):
            snapshot = stage_histograms[stage]
            label = _escape_label(stage)
            for bound, count in snapshot["buckets"]:
                le = bound if bound == "+Inf" else _format_value(bound)
                lines.append(
                    f'{STAGE_HISTOGRAM_FAMILY}_bucket{{stage="{label}",le="{le}"}} {count}'
                )
            lines.append(
                f'{STAGE_HISTOGRAM_FAMILY}_sum{{stage="{label}"}} {_format_value(snapshot["sum"])}'
            )
            lines.append(
                f'{STAGE_HISTOGRAM_FAMILY}_count{{stage="{label}"}} {snapshot["count"]}'
            )

    if info_labels:
        rendered = ",".join(
            f'{key}="{_escape_label(value)}"' for key, value in info_labels
        )
        lines.append("# HELP repro_service_info Static service configuration as labels.")
        lines.append("# TYPE repro_service_info gauge")
        lines.append(f"repro_service_info{{{rendered}}} 1")
    return "\n".join(lines) + "\n"
