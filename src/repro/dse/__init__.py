"""Design-space exploration over per-stage memory configurations (paper Sec. 8.5)."""

from repro.dse.sweep import DesignPoint, sweep_memory_configurations
from repro.dse.pareto import pareto_front

__all__ = ["DesignPoint", "sweep_memory_configurations", "pareto_front"]
