"""Unit tests for DAG validation."""

import pytest

from repro.errors import GraphError
from repro.ir.dag import PipelineDAG, Stage
from repro.ir.stencil import StencilWindow
from repro.ir.validate import validate_dag

from tests.conftest import build_chain, build_paper_example


class TestValidation:
    def test_valid_pipelines_pass(self):
        validate_dag(build_chain())
        validate_dag(build_paper_example())

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            validate_dag(PipelineDAG())

    def test_missing_input(self):
        dag = PipelineDAG()
        dag.add_stage(Stage("A"))
        dag.add_stage(Stage("B", is_output=True))
        dag.add_edge("A", "B", StencilWindow.point())
        with pytest.raises(GraphError, match="no input"):
            validate_dag(dag)

    def test_missing_output(self):
        dag = PipelineDAG()
        dag.add_stage(Stage("A", is_input=True))
        dag.add_stage(Stage("B"))
        dag.add_edge("A", "B", StencilWindow.point())
        with pytest.raises(GraphError, match="no output"):
            validate_dag(dag)

    def test_input_with_producer_rejected(self):
        dag = PipelineDAG()
        dag.add_stage(Stage("A", is_input=True))
        dag.add_stage(Stage("B", is_input=True, is_output=True))
        dag.add_edge("A", "B", StencilWindow.point())
        with pytest.raises(GraphError, match="must not have on-chip producers"):
            validate_dag(dag)

    def test_orphan_stage_rejected(self):
        dag = PipelineDAG()
        dag.add_stage(Stage("A", is_input=True))
        dag.add_stage(Stage("B", is_output=True))
        dag.add_stage(Stage("C"))
        dag.add_edge("A", "B", StencilWindow.point())
        with pytest.raises(GraphError):
            validate_dag(dag)

    def test_stage_not_feeding_output_rejected(self):
        dag = PipelineDAG()
        dag.add_stage(Stage("A", is_input=True))
        dag.add_stage(Stage("B", is_output=True))
        dag.add_stage(Stage("C"))  # reads A but feeds nothing
        dag.add_edge("A", "B", StencilWindow.point())
        dag.add_edge("A", "C", StencilWindow.point())
        with pytest.raises(GraphError, match="does not feed any output"):
            validate_dag(dag)

    def test_non_input_without_producer_rejected(self):
        dag = PipelineDAG()
        dag.add_stage(Stage("A", is_input=True))
        dag.add_stage(Stage("B", is_output=True))
        dag.add_stage(Stage("C", is_output=True))
        dag.add_edge("A", "B", StencilWindow.point())
        with pytest.raises(GraphError):
            validate_dag(dag)

    def test_validated_returns_self(self):
        dag = build_chain()
        assert dag.validated() is dag
