"""Integer Linear Programming substrate.

The paper solves its scheduling formulation with Google OR-Tools.  OR-Tools is
not available offline, so this package provides the same capability from
scratch:

* :mod:`repro.ilp.expr` / :mod:`repro.ilp.model` — a small modeling layer
  (variables, linear expressions, constraints, objective).
* :mod:`repro.ilp.simplex` — a dense two-phase primal simplex LP solver.
* :mod:`repro.ilp.branch_and_bound` — a branch-and-bound MILP solver on top of
  the simplex solver (pure Python backend).
* :mod:`repro.ilp.highs` — a backend that maps the model onto
  ``scipy.optimize.milp`` (HiGHS).
* :mod:`repro.ilp.solver` — the facade used by the rest of the library,
  including the backend race (:func:`repro.ilp.solver.solve_racing`).
* :mod:`repro.ilp.compound` — block-diagonal compound models: merge N
  independent models, solve once, split the results (the DSE sweep path).

Both backends are exact; tests cross-check them against each other.
"""

from repro.ilp.expr import Variable, LinExpr
from repro.ilp.model import Model, Constraint, SolveResult, SolveStatus, WarmStart
from repro.ilp.solver import solve, solve_racing, available_backends, resolve_backend

__all__ = [
    "Variable",
    "LinExpr",
    "Model",
    "Constraint",
    "SolveResult",
    "SolveStatus",
    "WarmStart",
    "solve",
    "solve_racing",
    "available_backends",
    "resolve_backend",
]
