"""Service-layer smoke benchmark: compile cache and engine-driven DSE.

Quantifies the serving-layer claims on top of the paper's Sec. 8.2 compile
times: a warm-cache compile must be at least an order of magnitude faster
than a cold one (it is a hash lookup instead of an ILP solve), and the
engine-driven Fig. 10 sweep must match the serial sweep exactly while
reusing the baseline compile through the cache.
"""

from __future__ import annotations

import os
import time

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.dse.sweep import sweep_memory_configurations
from repro.service import CompileEngine

W, H = 480, 320


def test_warm_cache_compile_is_10x_faster_than_cold(benchmark):
    def cold_and_warm():
        engine = CompileEngine()
        target = CompileTarget(build_algorithm("canny-m"), image_width=W, image_height=H)
        start = time.perf_counter()
        engine.compile(target)
        cold = time.perf_counter() - start
        # Best of several warm calls: a single lookup is microseconds, so one
        # badly-timed scheduler preemption must not decide the ratio.
        warm = min(_timed(lambda: engine.compile(target)) for _ in range(5))
        return cold, warm, engine.cache.stats.snapshot()

    cold, warm, stats = benchmark.pedantic(cold_and_warm, rounds=1, iterations=1)
    speedup = cold / warm if warm > 0 else float("inf")
    print(
        f"\nService cache: cold compile {cold * 1000:.1f} ms, warm {warm * 1000:.3f} ms "
        f"({speedup:.0f}x, hits={stats.hits}, misses={stats.misses})"
    )
    assert stats.hits == 5 and stats.misses == 1
    assert warm * 10 <= cold, f"warm-cache compile only {speedup:.1f}x faster than cold"


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_engine_sweep_matches_serial_and_reuses_baseline(benchmark):
    """The Fig. 10 sweeps (8-design denoise-m, 16-design canny-m) via the engine."""

    def sweeps():
        outcomes = {}
        for algorithm in ("denoise-m", "canny-m"):
            start = time.perf_counter()
            serial = sweep_memory_configurations(
                build_algorithm(algorithm), image_width=W, image_height=H
            )
            serial_s = time.perf_counter() - start
            engine = CompileEngine(workers=4)
            start = time.perf_counter()
            parallel = sweep_memory_configurations(
                build_algorithm(algorithm), image_width=W, image_height=H, engine=engine
            )
            engine_s = time.perf_counter() - start
            engine.shutdown()
            outcomes[algorithm] = (
                serial,
                parallel,
                serial_s,
                engine_s,
                engine.cache.stats.snapshot(),
            )
        return outcomes

    outcomes = benchmark.pedantic(sweeps, rounds=1, iterations=1)
    for algorithm, (serial, parallel, serial_s, engine_s, stats) in outcomes.items():
        print(
            f"\n{algorithm} sweep ({len(serial)} designs): serial {serial_s:.2f}s, "
            f"engine {engine_s:.2f}s ({serial_s / engine_s:.2f}x), "
            f"cache hits={stats.hits} misses={stats.misses}"
        )
        assert [p.label for p in serial] == [p.label for p in parallel]
        assert [p.area_mm2 for p in serial] == [p.area_mm2 for p in parallel]
        assert [p.power_mw for p in serial] == [p.power_mw for p in parallel]
        # The all-DP configuration is served from the baseline's cache entry...
        assert stats.hits >= 1
        # ...so the engine path runs at most 2^k ILP passes where the serial
        # path runs 2^k as well (baseline + 2^k - 1): identical solver work
        # plus parallel overlap means no systematic slowdown.
        assert stats.misses <= len(serial)
        if (os.cpu_count() or 1) >= 4:
            # Wall-clock ratios are only meaningful with real parallelism; on
            # 1-2 vCPU runners thread scheduling noise dominates, so there the
            # check stays result-equality + cache counters only.
            assert engine_s < serial_s * 1.5, "engine sweep should not be slower than serial"
    # The paper's example: four configurable canny-m stages give 16 designs.
    assert len(outcomes["canny-m"][0]) == 16
    assert len(outcomes["denoise-m"][0]) == 8
