"""Admission control for the compilation service.

Stability: public.

The serving stack (``repro.service.http`` in front of
:class:`repro.service.engine.CompileEngine`) historically trusted every
client and accepted unbounded work.  This module is the layer that lets a
shared deployment degrade *predictably* instead: every request is
authenticated, rate-limited and queued under an explicit bound before any
solver runs.  Three independent pieces compose:

* :class:`TokenAuthenticator` — static bearer-token authentication.  Tokens
  are loaded from a text file (one per line, ``identity:token`` or bare
  ``token``, optional ``:expires=<epoch>`` suffix) and checked with a
  constant-time digest compare, so the HTTP front never leaks token prefixes
  through timing.  The authenticated *identity* is what rate limits and
  queue fairness key on.
* :class:`RateLimiter` — a per-identity token bucket (``rate`` tokens per
  second, ``burst`` capacity).  Batch submissions charge one token per
  target, so the limit tracks solver cost rather than HTTP request count; a
  denied request carries the exact ``retry_after`` seconds until the bucket
  can pay for it.
* :class:`AdmissionQueue` — a bounded submission queue between the engine's
  dedup table and its executor backend.  At most ``width`` jobs are
  dispatched concurrently; at most ``max_pending`` more may wait.  Overflow
  follows an explicit policy: ``"shed"`` raises :class:`QueueFullError`
  (mapped to HTTP 429 with ``Retry-After``) while ``"block"`` applies
  backpressure to the submitter.  Pending work drains **round-robin across
  client identities**, so one flooding client cannot starve the others —
  with two competing identities each gets every other worker slot regardless
  of how deep the flooder's backlog is.

The engine enables the queue with ``CompileEngine(max_pending=...)`` (or the
``REPRO_MAX_PENDING`` environment variable) and threads the client identity
through ``submit(..., client=...)``; the HTTP front wires all three pieces
together (``--auth-token-file``, ``--rate-limit``, ``--max-pending``,
``--overflow``) and surfaces their counters on ``GET /v1/metrics``
(``rejected_total``, ``throttled_total``, ``queue_depth``).  See
``docs/serving.md`` for the end-to-end semantics and ``docs/tuning.md`` for
sizing guidance.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from concurrent.futures import Future

from repro.errors import ReproError

#: Environment variable enabling the engine's bounded submission queue when
#: ``CompileEngine(max_pending=...)`` is not passed explicitly.
MAX_PENDING_ENV_VAR = "REPRO_MAX_PENDING"

#: Valid overflow policies for :class:`AdmissionQueue`.
OVERFLOW_POLICIES = ("shed", "block")

#: Identity assigned to requests when authentication is disabled and the
#: transport provides none (e.g. direct library calls).
ANONYMOUS_IDENTITY = "anonymous"


class AdmissionError(ReproError):
    """Base class for admission-control rejections."""


class QueueFullError(AdmissionError):
    """The engine's bounded submission queue rejected a job (shed policy).

    ``retry_after`` is the service's best estimate, in seconds, of when
    resubmitting is worthwhile (the HTTP front forwards it as a
    ``Retry-After`` header).
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))


class AuthenticationError(AdmissionError):
    """A request that could not be authenticated (HTTP 401)."""


def validate_max_pending(value, *, source: str = "max_pending") -> int:
    """Check a queue-bound setting; garbage raises :class:`ValueError`.

    Mirrors :func:`repro.service.executor.validate_worker_count`: ``0``,
    negatives and non-integers name the offending setting instead of
    silently mis-sizing a production queue.
    """
    try:
        bound = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{source} must be a positive integer, got {value!r}") from None
    if bound != value and not isinstance(value, str):
        raise ValueError(f"{source} must be a positive integer, got {value!r}")
    if bound < 1:
        raise ValueError(f"{source} must be >= 1, got {bound}")
    return bound


def default_max_pending() -> int | None:
    """Queue bound from ``REPRO_MAX_PENDING``, or ``None`` (unbounded)."""
    override = os.environ.get(MAX_PENDING_ENV_VAR, "").strip()
    if not override:
        return None
    return validate_max_pending(override, source=MAX_PENDING_ENV_VAR)


# ---------------------------------------------------------------------------
# Authentication
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TokenRecord:
    """One credential: an identity, its secret, and an optional expiry."""

    identity: str
    token: str
    expires_epoch: float | None = None

    def expired(self, now: float) -> bool:
        return self.expires_epoch is not None and now >= self.expires_epoch


def _token_digest(token: str) -> bytes:
    return hashlib.sha256(token.encode("utf-8")).digest()


def _default_identity(token: str) -> str:
    return "token-" + hashlib.sha256(token.encode("utf-8")).hexdigest()[:8]


def parse_token_line(line: str, *, lineno: int = 0) -> TokenRecord | None:
    """Parse one token-file line; blank lines and ``#`` comments yield None.

    Accepted forms::

        <token>                        # identity derived from the token hash
        <identity>:<token>
        <identity>:<token>:expires=<unix-epoch-seconds>
    """
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.split(":")
    expires: float | None = None
    if len(parts) >= 2 and parts[-1].startswith("expires="):
        raw = parts.pop()[len("expires="):]
        try:
            expires = float(raw)
        except ValueError:
            raise ValueError(
                f"token file line {lineno}: bad expiry {raw!r} (want unix epoch seconds)"
            ) from None
    if len(parts) == 1:
        identity, token = _default_identity(parts[0]), parts[0]
    elif len(parts) == 2:
        identity, token = parts
    else:
        raise ValueError(
            f"token file line {lineno}: expected 'token', 'identity:token' or "
            f"'identity:token:expires=<epoch>'"
        )
    identity = identity.strip()
    token = token.strip()
    if not token:
        raise ValueError(f"token file line {lineno}: empty token")
    if not identity:
        identity = _default_identity(token)
    return TokenRecord(identity=identity, token=token, expires_epoch=expires)


class TokenAuthenticator:
    """Static bearer-token authentication with constant-time comparison.

    Presented tokens are compared against every record by SHA-256 digest via
    :func:`hmac.compare_digest`; the scan never short-circuits on the first
    byte mismatch and digest lengths are uniform, so response timing carries
    no information about stored tokens.  Expired records fail exactly like
    unknown tokens.
    """

    def __init__(self, records: Iterable[TokenRecord], *, clock: Callable[[], float] = time.time) -> None:
        self._records = [
            (record, _token_digest(record.token)) for record in records
        ]
        if not self._records:
            raise ValueError("TokenAuthenticator needs at least one token record")
        self._clock = clock

    @classmethod
    def from_file(cls, path: str | os.PathLike, *, clock: Callable[[], float] = time.time) -> "TokenAuthenticator":
        """Load credentials from a token file (see :func:`parse_token_line`)."""
        records = []
        for lineno, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
            record = parse_token_line(line, lineno=lineno)
            if record is not None:
                records.append(record)
        if not records:
            raise ValueError(f"token file {os.fspath(path)!r} contains no tokens")
        return cls(records, clock=clock)

    def __len__(self) -> int:
        return len(self._records)

    def authenticate_token(self, token: str) -> str | None:
        """Identity for a presented token, or ``None`` if it does not match.

        Every stored record is compared (constant work regardless of where —
        or whether — the match occurs); expired credentials never match.
        """
        presented = _token_digest(token)
        now = self._clock()
        matched: str | None = None
        for record, digest in self._records:
            if hmac.compare_digest(presented, digest) and not record.expired(now):
                matched = record.identity
        return matched

    def authenticate_header(self, header: str | None) -> str | None:
        """Identity for an ``Authorization`` header value, or ``None``.

        Only the ``Bearer <token>`` scheme is accepted; a missing header,
        another scheme, or a non-matching/expired token all return ``None``.
        """
        if not header:
            return None
        scheme, _, token = header.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            return None
        return self.authenticate_token(token.strip())


# ---------------------------------------------------------------------------
# Rate limiting
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RateDecision:
    """Outcome of one rate-limit check."""

    allowed: bool
    retry_after: float = 0.0


def parse_rate_limit(text: str) -> tuple[float, float]:
    """Parse a ``rps:burst`` flag value into ``(rate, burst)``.

    ``"10:20"`` allows sustained 10 requests/second with bursts of 20; a bare
    ``"10"`` defaults the burst to the rate.  Rates and bursts must be
    positive (fractional rates like ``0.5`` — one request every two seconds —
    are valid).
    """
    parts = text.split(":")
    if len(parts) not in (1, 2):
        raise ValueError(f"rate limit must be 'rps' or 'rps:burst', got {text!r}")
    try:
        rate = float(parts[0])
        burst = float(parts[1]) if len(parts) == 2 else max(rate, 1.0)
    except ValueError:
        raise ValueError(f"rate limit must be numeric 'rps:burst', got {text!r}") from None
    if rate <= 0 or burst <= 0:
        raise ValueError(f"rate limit values must be > 0, got {text!r}")
    return rate, burst


@dataclass
class _Bucket:
    tokens: float
    updated: float


class RateLimiter:
    """Per-identity token buckets: ``rate`` tokens/second, ``burst`` capacity.

    Each admitted request (or batch target — cost is charged per design
    point) spends one token; buckets refill continuously and start full, so
    a client may burst up to ``burst`` requests before the sustained rate
    binds.  A charge larger than the bucket capacity is admitted when the
    bucket is full and drives it negative — the overdraft delays that
    client's subsequent requests, so the long-run rate still holds for
    batches bigger than the burst allowance.
    """

    def __init__(self, rate: float, burst: float, *, clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be > 0, got rate={rate}, burst={burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, _Bucket] = {}
        self._lock = threading.Lock()
        self.throttled_total = 0
        self.admitted_total = 0

    def admit(self, identity: str, cost: float = 1.0) -> RateDecision:
        """Charge ``cost`` tokens to ``identity``'s bucket, or deny with a
        precise ``retry_after``."""
        cost = max(float(cost), 0.0)
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(identity)
            if bucket is None:
                bucket = self._buckets[identity] = _Bucket(tokens=self.burst, updated=now)
            else:
                elapsed = max(0.0, now - bucket.updated)
                bucket.tokens = min(self.burst, bucket.tokens + elapsed * self.rate)
                bucket.updated = now
            # A cost above the burst capacity can never be pre-paid in full;
            # require a full bucket instead and let the overdraft delay what
            # comes next (documented in the class docstring).
            required = min(cost, self.burst)
            if bucket.tokens >= required:
                bucket.tokens -= cost
                self.admitted_total += 1
                return RateDecision(allowed=True)
            self.throttled_total += 1
            retry_after = (required - bucket.tokens) / self.rate
            return RateDecision(allowed=False, retry_after=retry_after)

    def stats(self) -> dict:
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "admitted_total": self.admitted_total,
                "throttled_total": self.throttled_total,
            }


# ---------------------------------------------------------------------------
# Bounded, fair submission queue
# ---------------------------------------------------------------------------
#: A queued dispatch: calling it performs the real executor submission and
#: returns the backend future to track, or ``None`` if submission failed (in
#: which case the dispatch itself settled the caller-visible future).
DispatchFn = Callable[[], "Future | None"]


@dataclass
class _PendingJob:
    client: str
    dispatch: DispatchFn
    #: Invoked (outside the lock) if the job is dropped by
    #: :meth:`AdmissionQueue.cancel_pending` before ever dispatching; settles
    #: the caller-visible future with ``CancelledError``.
    on_cancel: Callable[[], None] | None = None


class AdmissionQueue:
    """Bounded submission queue with per-client round-robin fairness.

    Sits between the engine's dedup table and its executor backend: at most
    ``width`` jobs are dispatched (handed to the executor) at a time, and at
    most ``max_pending`` more may wait.  When the wait queue is full,
    ``policy="shed"`` raises :class:`QueueFullError` and ``policy="block"``
    makes :meth:`submit` wait for space — explicit backpressure either way,
    never unbounded growth.

    Pending work is organised as one FIFO per client identity, drained
    round-robin: each time a slot frees, the next *identity* in rotation runs
    its oldest job.  Within one client, order is preserved; across clients, a
    flood from one identity cannot starve another.
    """

    def __init__(
        self,
        width: int,
        *,
        max_pending: int,
        policy: str = "shed",
        retry_after: Callable[[], float] | None = None,
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = int(width)
        self.max_pending = validate_max_pending(max_pending)
        if policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"policy must be one of {OVERFLOW_POLICIES}, got {policy!r}"
            )
        self.policy = policy
        self._retry_after = retry_after
        self._cond = threading.Condition()
        self._local = threading.local()
        self._queues: dict[str, deque[_PendingJob]] = {}
        self._rotation: deque[str] = deque()
        self._pending_count = 0
        self._inflight = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self.blocked_total = 0

    # ------------------------------------------------------------------ API
    def submit(
        self,
        dispatch: DispatchFn,
        *,
        client: str = "",
        on_cancel: Callable[[], None] | None = None,
    ) -> None:
        """Admit one job, dispatching it now or queueing it for a free slot.

        Raises :class:`QueueFullError` under the shed policy when
        ``max_pending`` jobs are already waiting; blocks under the block
        policy.  ``dispatch`` runs outside the queue's lock; ``on_cancel``
        runs instead of it if :meth:`cancel_pending` drops the job first.
        """
        client = client or ANONYMOUS_IDENTITY
        with self._cond:
            if self._pending_count >= self.max_pending:
                if self.policy == "shed":
                    self.rejected_total += 1
                    raise QueueFullError(
                        f"compile queue is full ({self._pending_count} pending, "
                        f"bound {self.max_pending}); resubmit later",
                        retry_after=self._estimate_retry_after(),
                    )
                self.blocked_total += 1
                while self._pending_count >= self.max_pending:
                    self._cond.wait()
            queue = self._queues.get(client)
            if queue is None:
                queue = self._queues[client] = deque()
                self._rotation.append(client)
            queue.append(_PendingJob(client=client, dispatch=dispatch, on_cancel=on_cancel))
            self._pending_count += 1
            self.admitted_total += 1
        self._pump()

    def cancel_pending(self) -> int:
        """Drop every queued-but-undispatched job; returns how many.

        Each dropped job's ``on_cancel`` hook runs (outside the lock), so
        futures published for those jobs settle with ``CancelledError``
        instead of dangling.  In-flight dispatches are untouched — cancelling
        those is the executor backend's business
        (:meth:`repro.service.engine.CompileEngine.shutdown` does both).
        """
        with self._cond:
            dropped = [job for queue in self._queues.values() for job in queue]
            self._queues.clear()
            self._rotation.clear()
            self._pending_count = 0
            self._cond.notify_all()  # blocked submitters re-check a now-empty queue
        for job in dropped:
            if job.on_cancel is not None:
                try:
                    job.on_cancel()
                except Exception:
                    pass  # cancellation is best-effort cleanup
        return len(dropped)

    def stats(self) -> dict:
        with self._cond:
            return {
                "max_pending": self.max_pending,
                "overflow": self.policy,
                "queue_depth": self._pending_count,
                "inflight": self._inflight,
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "blocked_total": self.blocked_total,
                "queued_clients": len(self._queues),
            }

    # ------------------------------------------------------------ internals
    def _estimate_retry_after(self) -> float:
        if self._retry_after is None:
            return 1.0
        try:
            return max(0.1, float(self._retry_after()))
        except Exception:
            return 1.0

    def _next_job_locked(self) -> _PendingJob:
        # Round-robin across identities: take the head identity's oldest job,
        # then move that identity to the back of the rotation (or retire it
        # when its queue drains).
        client = self._rotation.popleft()
        queue = self._queues[client]
        job = queue.popleft()
        if queue:
            self._rotation.append(client)
        else:
            del self._queues[client]
        self._pending_count -= 1
        return job

    def _pump(self) -> None:
        """Dispatch queued jobs while slots are free (dispatch outside the lock).

        Re-entrancy guard: with a synchronous backend (``inline``), a
        dispatched job completes inside ``dispatch()`` and its done-callback
        calls back into ``_pump`` on this very thread; the guard makes that
        inner call a no-op so the outer ``while`` loop drains the queue
        iteratively instead of recursing once per queued job.
        """
        if getattr(self._local, "pumping", False):
            return
        self._local.pumping = True
        try:
            while True:
                with self._cond:
                    if self._inflight >= self.width or not self._pending_count:
                        return
                    job = self._next_job_locked()
                    self._inflight += 1
                    self._cond.notify_all()  # space freed for blocked submitters
                tracked: Future | None = None
                try:
                    tracked = job.dispatch()
                except BaseException:
                    # The dispatch closure settles its own caller-visible
                    # future; anything escaping must still free the slot,
                    # not wedge it.
                    tracked = None
                if tracked is None:
                    self._job_done(None)
                else:
                    tracked.add_done_callback(self._job_done)
        finally:
            self._local.pumping = False

    def _job_done(self, _future: Future | None) -> None:
        with self._cond:
            self._inflight -= 1
            self._cond.notify_all()
        self._pump()
