"""Area and power estimation for generated accelerators (ASIC and FPGA)."""

from repro.estimate.sram_model import SramTechModel, DEFAULT_TECH
from repro.estimate.area import AreaReport, area_report
from repro.estimate.power import PowerReport, power_report, buffer_access_rates
from repro.estimate.fpga import FpgaReport, fpga_report
from repro.estimate.report import AcceleratorReport, accelerator_report

__all__ = [
    "SramTechModel",
    "DEFAULT_TECH",
    "AreaReport",
    "area_report",
    "PowerReport",
    "power_report",
    "buffer_access_rates",
    "FpgaReport",
    "fpga_report",
    "AcceleratorReport",
    "accelerator_report",
]
