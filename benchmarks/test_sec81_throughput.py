"""Sec. 8.1: throughput (one pixel per cycle) and end-to-end latency overhead.

The paper reports that ImaGen-generated accelerators sustain one pixel per
cycle for every algorithm and increase end-to-end latency by only ~0.01% over
Darkroom/SODA.  We verify the steady-state throughput with the cycle-level
simulator (at a reduced row count so the simulation stays fast) and compare
analytic end-to-end latencies at 320p.
"""

from __future__ import annotations

from repro.algorithms import ALGORITHM_NAMES, build_algorithm
from repro.api import CompileTarget
from repro.core.compiler import compile_pipeline
from repro.sim.cycle import simulate_schedule

SIM_W, SIM_H = 64, 48
W, H = 480, 320


def measure_throughput():
    rows = {}
    for algorithm in ALGORITHM_NAMES:
        base = CompileTarget(build_algorithm(algorithm), image_width=W, image_height=H)
        schedule = compile_pipeline(base.with_resolution(SIM_W, SIM_H)).schedule
        report = simulate_schedule(schedule)
        ours_320 = compile_pipeline(base).schedule
        darkroom_320 = compile_pipeline(base.with_generator("darkroom")).schedule
        soda_320 = compile_pipeline(base.with_generator("soda")).schedule
        rows[algorithm] = {
            "throughput_px_per_cycle": report.steady_state_throughput,
            "violations": len(report.violations),
            "latency_vs_darkroom_pct": 100.0
            * (ours_320.end_to_end_latency_cycles / darkroom_320.end_to_end_latency_cycles - 1.0),
            "latency_vs_soda_pct": 100.0
            * (ours_320.end_to_end_latency_cycles / soda_320.end_to_end_latency_cycles - 1.0),
        }
    return rows


def test_sec81_throughput_and_latency(benchmark):
    rows = benchmark(measure_throughput)

    print("\nSec 8.1: steady-state throughput and latency overhead (320p)")
    print(f"{'algorithm':<12}{'px/cycle':>10}{'vs Darkroom':>14}{'vs SODA':>12}")
    for algorithm, row in rows.items():
        print(
            f"{algorithm:<12}{row['throughput_px_per_cycle']:>10.3f}"
            f"{row['latency_vs_darkroom_pct']:>13.3f}%{row['latency_vs_soda_pct']:>11.3f}%"
        )

    for row in rows.values():
        assert row["violations"] == 0
        assert row["throughput_px_per_cycle"] > 0.95
        # Never slower than the baselines (the paper reports +0.01% average).
        assert row["latency_vs_darkroom_pct"] <= 0.1
