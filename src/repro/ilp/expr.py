"""Linear expressions and decision variables for the ILP modeling layer."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ILPError


class Variable:
    """A decision variable.

    Variables are created through :meth:`repro.ilp.model.Model.add_var`; they
    are hashable by identity and compare by identity, so they can be used as
    dictionary keys in expressions and solutions.
    """

    __slots__ = ("name", "lb", "ub", "integer", "index")

    def __init__(self, name: str, lb: float | None, ub: float | None, integer: bool, index: int):
        self.name = name
        self.lb = lb
        self.ub = ub
        self.integer = integer
        self.index = index

    # Arithmetic produces LinExpr objects.
    def _expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other) -> "LinExpr":
        return self._expr() + other

    def __radd__(self, other) -> "LinExpr":
        return self._expr() + other

    def __sub__(self, other) -> "LinExpr":
        return self._expr() - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self._expr()) + other

    def __mul__(self, coeff) -> "LinExpr":
        return self._expr() * coeff

    def __rmul__(self, coeff) -> "LinExpr":
        return self._expr() * coeff

    def __neg__(self) -> "LinExpr":
        return self._expr() * -1.0

    def __le__(self, rhs):
        return self._expr() <= rhs

    def __ge__(self, rhs):
        return self._expr() >= rhs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "int" if self.integer else "cont"
        return f"Variable({self.name!r}, {kind})"


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[Variable, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[Variable, float] = dict(coeffs or {})
        self.constant = float(constant)

    # ------------------------------------------------------------- utilities
    @staticmethod
    def from_terms(terms: Iterable[tuple[float, Variable]], constant: float = 0.0) -> "LinExpr":
        expr = LinExpr(constant=constant)
        for coeff, var in terms:
            expr.coeffs[var] = expr.coeffs.get(var, 0.0) + float(coeff)
        return expr

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    def variables(self) -> list[Variable]:
        return list(self.coeffs)

    def coefficient(self, var: Variable) -> float:
        return self.coeffs.get(var, 0.0)

    def evaluate(self, values: Mapping[Variable, float]) -> float:
        """Value of the expression under a variable assignment."""
        total = self.constant
        for var, coeff in self.coeffs.items():
            if var not in values:
                raise ILPError(f"No value supplied for variable {var.name!r}")
            total += coeff * values[var]
        return total

    def is_constant(self) -> bool:
        return all(abs(c) < 1e-12 for c in self.coeffs.values())

    # ------------------------------------------------------------ arithmetic
    def _coerce(self, other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return LinExpr({other: 1.0}, 0.0)
        if isinstance(other, (int, float)):
            return LinExpr({}, float(other))
        raise ILPError(f"Cannot combine a linear expression with {other!r}")

    def __add__(self, other) -> "LinExpr":
        rhs = self._coerce(other)
        result = self.copy()
        for var, coeff in rhs.coeffs.items():
            result.coeffs[var] = result.coeffs.get(var, 0.0) + coeff
        result.constant += rhs.constant
        return result

    def __radd__(self, other) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other) -> "LinExpr":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, scalar) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise ILPError("Linear expressions can only be scaled by constants")
        return LinExpr({v: c * float(scalar) for v, c in self.coeffs.items()}, self.constant * float(scalar))

    def __rmul__(self, scalar) -> "LinExpr":
        return self.__mul__(scalar)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # ----------------------------------------------------------- comparisons
    def __le__(self, rhs):
        from repro.ilp.model import Constraint

        return Constraint.from_comparison(self, "<=", self._coerce(rhs))

    def __ge__(self, rhs):
        from repro.ilp.model import Constraint

        return Constraint.from_comparison(self, ">=", self._coerce(rhs))

    def eq(self, rhs):
        """Equality constraint (method form, so ``==`` keeps Python semantics)."""
        from repro.ilp.model import Constraint

        return Constraint.from_comparison(self, "==", self._coerce(rhs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{coeff:+g}*{var.name}" for var, coeff in self.coeffs.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


def linear_sum(terms: Iterable[LinExpr | Variable | float]) -> LinExpr:
    """Sum an iterable of expressions/variables/constants into one LinExpr."""
    total = LinExpr()
    for term in terms:
        total = total + term
    return total
