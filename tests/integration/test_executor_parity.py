"""Thread-vs-process executor parity over the algorithm catalog.

Acceptance for the pluggable-backend refactor: ``CompileEngine(
executor="process")`` must compile the full catalog with fingerprints and
area/power report rows *identical* to the thread backend — the process
boundary (wire-encoded targets out, wire-encoded full results back) is
lossless — and a baseline design saved by one process must be loaded warm
from the shared :class:`DiskCacheStore` by a second process.
"""

import multiprocessing

import pytest

from repro.algorithms import algorithm_names, build_algorithm
from repro.api import CompileTarget
from repro.estimate.report import accelerator_report
from repro.service import CompileCache, CompileEngine, DiskCacheStore

from tests.conftest import TEST_HEIGHT, TEST_WIDTH

W, H = TEST_WIDTH, TEST_HEIGHT


def _catalog_targets() -> list[CompileTarget]:
    return [
        CompileTarget(build_algorithm(name), image_width=W, image_height=H, label=name)
        for name in algorithm_names()
    ]


def _rows(batch):
    return [
        (result.fingerprint, accelerator_report(result.accelerator).row())
        for result in batch.results
    ]


class TestThreadProcessParity:
    def test_catalog_identical_across_backends(self):
        """Same fingerprints, same area/power rows, algorithm by algorithm."""
        targets = _catalog_targets()
        with CompileEngine(workers=2, executor="thread") as thread_engine:
            thread_batch = thread_engine.submit_batch(targets)
        with CompileEngine(workers=2, executor="process") as process_engine:
            process_batch = process_engine.submit_batch(targets)
        assert all(r.ok for r in thread_batch.results)
        assert all(r.ok for r in process_batch.results)
        assert _rows(thread_batch) == _rows(process_batch)

    def test_inline_backend_agrees_too(self):
        targets = _catalog_targets()[:3]
        with CompileEngine(executor="inline") as inline_engine:
            inline_batch = inline_engine.submit_batch(targets)
        with CompileEngine(workers=2, executor="process") as process_engine:
            process_batch = process_engine.submit_batch(targets)
        assert _rows(inline_batch) == _rows(process_batch)

    def test_baseline_generators_identical_across_backends(self):
        dag_name = algorithm_names()[0]
        targets = [
            CompileTarget(
                build_algorithm(dag_name), image_width=W, image_height=H, generator=gen
            )
            for gen in ("darkroom", "soda", "fixynn")
        ]
        with CompileEngine(workers=2, executor="thread") as thread_engine:
            thread_batch = thread_engine.submit_batch(targets)
        with CompileEngine(workers=2, executor="process") as process_engine:
            process_batch = process_engine.submit_batch(targets)
        assert _rows(thread_batch) == _rows(process_batch)
        for ours, theirs in zip(process_batch.results, thread_batch.results):
            assert (
                ours.accelerator.schedule.start_cycles
                == theirs.accelerator.schedule.start_cycles
            )
            for name, config in theirs.accelerator.schedule.line_buffers.items():
                assert (
                    ours.accelerator.schedule.line_buffers[name].to_payload()
                    == config.to_payload()
                )

    def test_coalescing_fallback_identical_across_backends(self):
        """The two-solve auto-coalescing path survives the wire round-trip."""
        target = CompileTarget(
            build_algorithm("unsharp-m"), image_width=W, image_height=H
        ).with_options(coalescing=True)
        with CompileEngine(workers=2, executor="thread") as thread_engine:
            theirs = thread_engine.submit_batch([target]).results[0]
        with CompileEngine(workers=2, executor="process") as process_engine:
            ours = process_engine.submit_batch([target]).results[0]
        assert ours.ok and theirs.ok
        assert ours.accelerator.schedule.generator == theirs.accelerator.schedule.generator
        assert ours.accelerator.metadata["schedule_fingerprints"] == (
            theirs.accelerator.metadata["schedule_fingerprints"]
        )
        assert accelerator_report(ours.accelerator).row() == accelerator_report(
            theirs.accelerator
        ).row()


def _compile_baseline_in_child(cache_dir: str, width: int, height: int) -> None:
    """Child-process body: compile a Darkroom design onto the shared volume."""
    from repro.core.compiler import compile_pipeline

    target = CompileTarget(
        build_algorithm("unsharp-m"),
        image_width=width,
        image_height=height,
        generator="darkroom",
    )
    cache = CompileCache(store=DiskCacheStore(cache_dir))
    compile_pipeline(target, cache=cache)


class TestCrossProcessBaselinePersistence:
    def test_darkroom_saved_by_one_process_loads_warm_in_another(self, tmp_path):
        """Acceptance: baseline designs persist across process boundaries."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method for an in-repo child process")
        child = multiprocessing.get_context("fork").Process(
            target=_compile_baseline_in_child, args=(str(tmp_path), W, H)
        )
        child.start()
        child.join(timeout=120)
        assert child.exitcode == 0

        # This process has a cold memory tier; only the shared disk volume
        # can answer, and it must answer with the identical design.
        target = CompileTarget(
            build_algorithm("unsharp-m"), image_width=W, image_height=H, generator="darkroom"
        )
        cache = CompileCache(store=DiskCacheStore(tmp_path))
        schedule, source, _ = cache.fetch(target)
        assert source == "disk"
        assert schedule.generator == "darkroom"
        from repro.baselines import generate_baseline

        fresh = generate_baseline(target).schedule
        assert accelerator_report(schedule).row() == accelerator_report(fresh).row()
        assert schedule.start_cycles == fresh.start_cycles
