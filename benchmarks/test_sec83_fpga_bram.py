"""Sec. 8.3 FPGA results: BRAM usage on the Spartan-7 board, and the
"multiple algorithms" experiment (hosting the whole suite within 120 BRAMs).
"""

from __future__ import annotations

from repro.algorithms import ALGORITHM_NAMES, build_algorithm
from repro.api import CompileTarget
from repro.core.compiler import compile_pipeline
from repro.estimate.fpga import fpga_report, multi_algorithm_fit
from repro.memory.spec import spartan7_bram, spartan7_fpga

W, H = 480, 320
GENERATORS = ("fixynn", "darkroom", "soda", "ours", "ours+lc")


def build_fpga_reports():
    bram = spartan7_bram()
    reports = {}
    for algorithm in ALGORITHM_NAMES:
        base = CompileTarget(
            build_algorithm(algorithm), image_width=W, image_height=H, memory_spec=bram
        )
        targets = {
            "ours": base,
            "ours+lc": base.with_options(coalescing=True),
            "fixynn": base.with_generator("fixynn").with_memory_spec(spartan7_bram(ports=1)),
            "darkroom": base.with_generator("darkroom"),
            "soda": base.with_generator("soda"),
        }
        reports[algorithm] = {
            generator: fpga_report(compile_pipeline(targets[generator]).schedule)
            for generator in GENERATORS
        }
    return reports


def test_sec83_fpga_bram_usage_and_power(benchmark):
    reports = benchmark.pedantic(build_fpga_reports, rounds=1, iterations=1)

    print("\nSec 8.3 (FPGA): BRAM blocks used per design at 320p")
    print(f"{'algorithm':<12}" + "".join(f"{g:>10}" for g in GENERATORS))
    for algorithm, by_generator in reports.items():
        print(
            f"{algorithm:<12}"
            + "".join(f"{by_generator[g].brams_used:>10}" for g in GENERATORS)
        )

    total = {g: sum(reports[a][g].brams_used for a in reports) for g in GENERATORS}
    power = {g: sum(reports[a][g].total_mw for a in reports) for g in GENERATORS}
    print(f"{'total':<12}" + "".join(f"{total[g]:>10}" for g in GENERATORS))
    print(f"{'power(mW)':<12}" + "".join(f"{power[g]:>10.1f}" for g in GENERATORS))

    # BRAM ordering mirrors the ASIC SRAM ordering.
    assert total["ours"] <= total["darkroom"] <= total["fixynn"]
    assert total["ours+lc"] <= total["ours"]

    # "Multiple algorithms": can the whole suite be resident at once?
    fpga = spartan7_fpga()
    fits = {}
    for generator in GENERATORS:
        blocks, ok = multi_algorithm_fit([reports[a][generator] for a in reports], fpga)
        fits[generator] = (blocks, ok)
        print(f"  all algorithms with {generator:<9}: {blocks:>4} BRAMs "
              f"({'fits' if ok else 'does not fit'} in {fpga.total_blocks})")
    assert fits["ours+lc"][0] <= fits["darkroom"][0]
    assert fits["ours+lc"][0] <= fits["fixynn"][0]
