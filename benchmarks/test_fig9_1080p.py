"""Fig. 9: SRAM size (a) and memory power (b) comparison on 1080p images.

At 1920x1080 the SRAM block is not large enough to hold two lines, so line
coalescing does not apply (Ours+LC degenerates to Ours) — exactly the paper's
setup.  The remaining orderings mirror Fig. 8.
"""

from __future__ import annotations

import pytest

from bench_helpers import RES_1080P, evaluate_all, print_metric_table, savings


@pytest.fixture(scope="module")
def results_1080p():
    return evaluate_all(*RES_1080P)


def test_fig9a_sram_size_1080p(benchmark, results_1080p):
    table = benchmark.pedantic(
        lambda: print_metric_table(
            "Fig 9a: SRAM size at 1080p (KB, block-granular allocation)",
            results_1080p,
            lambda report: report.sram_kbytes,
            "KB",
        ),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n  Ours vs FixyNN:   {savings(table, 'ours', 'fixynn'):+.1f}% (paper: +28.1%)\n"
        f"  Ours vs Darkroom: {savings(table, 'ours', 'darkroom'):+.1f}% (paper: +10.2%)"
    )
    average = table["average"]
    assert average["fixynn"] > average["darkroom"] > average["ours"]
    # No coalescing opportunity at 1080p: Ours+LC collapses onto Ours.
    for algorithm, row in table.items():
        if algorithm == "average":
            continue
        assert row["ours+lc"] == pytest.approx(row["ours"])


def test_fig9b_memory_power_1080p(benchmark, results_1080p):
    table = benchmark.pedantic(
        lambda: print_metric_table(
            "Fig 9b: memory power at 1080p (mW)",
            results_1080p,
            lambda report: report.memory_power_mw,
            "mW",
        ),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n  Ours vs FixyNN:   {savings(table, 'ours', 'fixynn'):+.1f}% (paper: +7.8%)\n"
        f"  Ours vs Darkroom: {savings(table, 'ours', 'darkroom'):+.1f}% (paper: +13.8%)\n"
        f"  Ours vs SODA:     {savings(table, 'ours', 'soda'):+.1f}% (paper: +56.0%)"
    )
    average = table["average"]
    assert average["ours"] < average["fixynn"]
    assert average["ours"] < average["darkroom"]
    assert average["ours"] < average["soda"]
