"""Unit tests for the stdlib HTTP serving front and ServiceClient."""

import json
import http.client

import pytest

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.estimate.report import accelerator_report
from repro.service import (
    CompileEngine,
    ServiceClient,
    ServiceError,
    start_server,
    target_to_wire,
)

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain

W, H = TEST_WIDTH, TEST_HEIGHT


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port + its engine + a client."""
    # Thread backend pinned: the endpoint tests assert parent-cache hit
    # accounting that worker-process caches would intentionally change.
    engine = CompileEngine(workers=2, executor="thread", cache_dir=tmp_path / "cache")
    server = start_server(engine)
    yield ServiceClient(port=server.port), engine, server
    server.stop()
    engine.shutdown()


def _raw_request(port, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


class TestCompileEndpoint:
    def test_round_trip_matches_in_process_submit(self, service):
        """Acceptance: HTTP compile == in-process engine.submit of the target."""
        client, engine, _ = service
        target = CompileTarget(
            build_algorithm("unsharp-m"), image_width=W, image_height=H
        )
        remote = client.compile(target)
        in_process = engine.submit(target)
        assert remote["ok"] is True
        assert remote["fingerprint"] == in_process.fingerprint
        row = accelerator_report(in_process.accelerator).row()
        assert remote["report"]["total_area_mm2"] == row["total_area_mm2"]
        assert remote["report"]["total_power_mw"] == row["total_power_mw"]
        assert remote["report"]["sram_kb"] == row["sram_kb"]

    def test_repeat_request_is_a_cache_hit(self, service):
        """Acceptance: the second identical request reports a cache-tier source."""
        client, _, _ = service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        first = client.compile(target)
        second = client.compile(target)
        assert first["source"] == "solver"
        assert second["source"] in ("memory", "disk")
        assert second["fingerprint"] == first["fingerprint"]

    def test_fresh_engine_serves_from_shared_disk_cache(self, service, tmp_path):
        """A second service process on the same cache volume gets disk hits."""
        client, _, _ = service
        target = CompileTarget(build_chain(4), image_width=W, image_height=H)
        client.compile(target)
        second_engine = CompileEngine(workers=1, cache_dir=tmp_path / "cache")
        second_server = start_server(second_engine)
        try:
            repeat = ServiceClient(port=second_server.port).compile(target)
            assert repeat["source"] == "disk"
        finally:
            second_server.stop()
            second_engine.shutdown()

    def test_compile_failure_is_ok_false_not_500(self, service):
        client, _, _ = service
        result = client.compile(
            CompileTarget(build_chain(3), image_width=1, image_height=H)
        )
        assert result["ok"] is False
        assert "SchedulingError" in result["error"]
        assert "report" not in result

    def test_wrapped_target_body_accepted(self, service):
        client, _, server = service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/compile",
            body=json.dumps({"target": target_to_wire(target)}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 200 and body["ok"] is True


class TestBatchEndpoint:
    def test_ordered_batch_with_per_item_errors(self, service):
        client, _, _ = service
        targets = [
            CompileTarget(build_chain(3), image_width=W, image_height=H, label="a"),
            CompileTarget(build_chain(3), image_width=1, image_height=H, label="bad"),
            CompileTarget(build_chain(3), image_width=W, image_height=H, label="dup"),
        ]
        body = client.compile_batch(targets)
        assert [r["ok"] for r in body["results"]] == [True, False, True]
        assert [r.get("label") for r in body["results"]] == ["a", "bad", "dup"]
        assert body["results"][2]["source"] in ("deduplicated", "memory", "disk")
        assert body["seconds"] >= 0
        assert body["cache_stats"]["misses"] >= 1

    def test_undecodable_item_degrades_to_error_slot(self, service):
        client, _, server = service
        good = target_to_wire(
            CompileTarget(build_chain(3), image_width=W, image_height=H)
        )
        bad = dict(good)
        bad["resolution"] = "nonsense"
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/batch",
            body=json.dumps({"targets": [good, bad, good]}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 200  # per-item errors are JSON, not 500s
        assert [r["ok"] for r in body["results"]] == [True, False, True]
        assert "resolution" in body["results"][1]["error"]
        assert body["results"][0]["fingerprint"] == body["results"][2]["fingerprint"]

    def test_malformed_batch_body_is_400(self, service):
        client, _, server = service
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/batch",
            body=json.dumps({"jobs": []}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert "targets" in body["error"]


class TestOperationalEndpoints:
    def test_healthz(self, service):
        client, _, _ = service
        assert client.health() == {"status": "ok"}

    def test_metrics_reflect_served_requests(self, service):
        client, _, _ = service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        client.compile(target)
        client.compile(target)
        metrics = client.metrics()
        assert metrics["requests"] == 2
        assert metrics["compiled"] == 1
        assert metrics["served_from_cache"] == 1

    def test_cache_stats_include_occupancy_and_disk_tier(self, service):
        client, _, _ = service
        client.compile(CompileTarget(build_chain(3), image_width=W, image_height=H))
        stats = client.cache_stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["disk_entries"] == 1
        assert stats["disk_stores"] == 1

    def test_unknown_path_is_404(self, service):
        client, _, server = service
        for method, path in (("GET", "/v1/nope"), ("POST", "/v2/compile")):
            status, body = _raw_request(
                server.port, method, path, body="{}" if method == "POST" else None
            )
            assert status == 404
            assert path in body["error"]
        with pytest.raises(ServiceError, match="404"):
            ServiceClient(port=server.port)._request("GET", "/v1/nope")

    def test_invalid_json_body_is_400(self, service):
        client, _, server = service
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/compile",
            body="{not json",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert "JSON" in body["error"]

    def test_keep_alive_connection_serves_multiple_requests(self, service):
        _, _, server = service
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            for _ in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()  # drain so the connection can be reused
        finally:
            connection.close()

    def test_error_responses_close_the_connection(self, service):
        """Error paths may not drain the request body; keeping the HTTP/1.1
        connection alive would desync it (body bytes parsed as the next
        request line), so 4xx responses must carry Connection: close."""
        _, _, server = service
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/nope",
                body=json.dumps({"payload": "never drained"}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_internal_errors_become_500_json(self, service, monkeypatch):
        """An unexpected exception in a route is a JSON 500, not a reset."""
        _, engine, server = service

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(engine, "submit", boom)
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/compile",
            body=json.dumps(target_to_wire(target)),
            headers={"Content-Type": "application/json"},
        )
        assert status == 500
        assert "RuntimeError" in body["error"]

    def test_undecodable_target_is_400(self, service):
        client, _, server = service
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/compile",
            body=json.dumps({"dag": {"stages": [], "edges": []}}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert "error" in body
