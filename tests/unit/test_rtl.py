"""Unit tests for Verilog expression translation, generation and linting."""

import pytest

from repro.core.compiler import compile_pipeline
from repro.dsl import ast
from repro.errors import RTLError
from repro.rtl.expressions import (
    DATA_WIDTH,
    constant_literal,
    sanitize,
    translate,
    window_wire,
)
from repro.rtl.generator import generate_design
from repro.rtl.lint import lint_verilog

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


class TestExpressionTranslation:
    def test_constants_are_fixed_point(self):
        assert constant_literal(1.0) == f"{DATA_WIDTH}'sd256"
        assert constant_literal(-0.5) == f"-{DATA_WIDTH}'sd128"

    def test_stage_reference_names(self):
        assert window_wire("K0", -1, 2) == "win_K0_m1_p2"
        assert "win_K0_p0_p0" in translate(ast.StageRef("K0", 0, 0))

    def test_sanitize(self):
        assert sanitize("a-b c") == "a_b_c"
        assert sanitize("1stage").startswith("s_")

    def test_multiplication_renormalises(self):
        text = translate(ast.StageRef("A") * 2.0)
        assert ">>> 8" in text

    def test_division_prescales(self):
        text = translate(ast.StageRef("A") / ast.StageRef("B"))
        assert "<<< 8" in text

    def test_comparison_produces_fixed_point_bool(self):
        text = translate(ast.StageRef("A") > 3.0)
        assert "?" in text and "'sd256" in text

    def test_intrinsics(self):
        assert "?" in translate(ast.Call("max", (ast.StageRef("A"), ast.Const(1.0))))
        assert "isqrt" in translate(ast.Call("sqrt", (ast.StageRef("A"),)))
        clamp = translate(ast.Call("clamp", (ast.StageRef("A"), ast.Const(0.0), ast.Const(1.0))))
        assert clamp.count("?") == 2

    def test_abs_and_negation(self):
        assert "-" in translate(-ast.StageRef("A"))
        assert "< 0" in translate(ast.Call("abs", (ast.StageRef("A"),)))


class TestGeneratedDesign:
    @pytest.fixture(scope="class")
    def design(self):
        accelerator = compile_pipeline(build_paper_example(), image_width=W, image_height=H)
        return generate_design(accelerator.schedule)

    def test_module_inventory(self, design):
        assert design.top_module == "accelerator_paper_example"
        assert "imagen_sram" in design.module_names
        assert any(name.startswith("linebuffer_") for name in design.module_names)
        assert any(name.startswith("stage_") for name in design.module_names)
        assert any(name.startswith("window_") for name in design.module_names)

    def test_every_stage_has_a_module(self, design):
        for stage in ("K1", "K2"):
            assert f"stage_{stage}" in design.module_names

    def test_schedule_constants_embedded(self, design):
        accelerator = compile_pipeline(build_paper_example(), image_width=W, image_height=H)
        for start in accelerator.schedule.start_cycles.values():
            assert f"32'd{start}" in design.source

    def test_line_count_is_substantial(self, design):
        assert design.line_count > 200

    def test_lint_passes(self, design):
        report = lint_verilog(design.source)
        assert report.ok, report.errors

    def test_chain_design_lints(self):
        accelerator = compile_pipeline(build_chain(4), image_width=W, image_height=H)
        report = lint_verilog(accelerator.generate_verilog())
        assert report.ok, report.errors


class TestLinter:
    def test_detects_undefined_module(self):
        source = """
module top (input wire clk);
    missing_module u_inst (.clk(clk));
endmodule
"""
        report = lint_verilog(source)
        assert not report.ok
        assert any("undefined module" in e for e in report.errors)

    def test_detects_unbalanced_endmodule(self):
        source = "module a (input wire clk);\nmodule b (input wire clk);\nendmodule\n"
        report = lint_verilog(source)
        assert not report.ok

    def test_detects_duplicate_modules(self):
        source = "module a ();\nendmodule\nmodule a ();\nendmodule\n"
        report = lint_verilog(source)
        assert any("Duplicate" in e for e in report.errors)

    def test_detects_unknown_port(self):
        source = """
module leaf (input wire clk);
endmodule
module top (input wire clk);
    leaf u_leaf (.clk(clk), .nonexistent(clk));
endmodule
"""
        report = lint_verilog(source)
        assert any("unknown port" in e for e in report.errors)

    def test_reports_top_modules(self):
        source = """
module leaf (input wire clk);
endmodule
module top (input wire clk);
    leaf u_leaf (.clk(clk));
endmodule
"""
        report = lint_verilog(source)
        assert report.ok
        assert report.top_modules == ["top"]
