"""Byte-stability pins for the pre-temporal (pure 2-D) surface.

``tests/data/regression_2d_pins.json`` was captured *before* the time axis
was added to the stencil data model.  Every pin must keep matching bit-for-bit
afterwards: compile fingerprints (per generator), the canonical wire payload
bytes and its stamped version, and the golden replay digests.  A mismatch
means the temporal refactor moved the hash of a purely spatial design — which
would silently invalidate every production cache and pinned digest.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.algorithms import build_algorithm
from repro.api.target import CompileTarget
from repro.service.wire import target_to_wire
from repro.sim.batch import replay_frames

PINS_PATH = Path(__file__).parent.parent / "data" / "regression_2d_pins.json"
PINS = json.loads(PINS_PATH.read_text())

PIN_WIDTH = 64
PIN_HEIGHT = 48
GENERATORS = ("imagen", "soda", "darkroom", "fixynn")


def _target(name: str) -> CompileTarget:
    return CompileTarget(
        dag=build_algorithm(name), image_width=PIN_WIDTH, image_height=PIN_HEIGHT
    )


@pytest.mark.parametrize("name", sorted(PINS))
def test_compile_fingerprints_pinned(name):
    target = _target(name)
    for generator in GENERATORS:
        assert (
            target.with_generator(generator).fingerprint
            == PINS[name][f"fingerprint:{generator}"]
        ), f"{name} fingerprint moved for generator {generator}"


@pytest.mark.parametrize("name", sorted(PINS))
def test_wire_payload_pinned(name):
    wire = target_to_wire(_target(name))
    assert wire["version"] == PINS[name]["wire_version"]
    canonical = json.dumps(wire, sort_keys=True, separators=(",", ":")).encode("utf-8")
    digest = hashlib.sha256(canonical).hexdigest()
    assert digest == PINS[name]["wire_sha256"], f"{name} wire payload bytes moved"


@pytest.mark.parametrize("name", sorted(PINS))
def test_golden_digest_pinned(name):
    replay = replay_frames(
        build_algorithm(name), PIN_WIDTH, PIN_HEIGHT, frames=2, seed=0
    )
    assert replay.digest == PINS[name]["golden_digest"], f"{name} golden digest moved"
