"""Top-level compiler facade (paper Fig. 5).

:func:`compile_pipeline` ties the framework together: it takes one
:class:`repro.api.CompileTarget` — pipeline DAG, resolution, memory spec,
scheduler options and generator name — and returns a
:class:`CompiledAccelerator` with hooks to generate Verilog and area/power
reports.  The target's ``generator`` selects the design style: ``"imagen"``
runs the ILP optimizer (with the optional line-coalescing fallback), any
baseline name (``"darkroom"``, ``"soda"``, ``"fixynn"``) runs that comparison
generator through the same cache, so baseline designs are content-addressed
and reusable exactly like optimized ones.

The historical loose-kwarg form ``compile_pipeline(dag, image_width=...,
...)`` still works but emits a :class:`DeprecationWarning`; it builds a
``CompileTarget`` internally and forwards.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Any

from typing import TYPE_CHECKING

from repro.core.schedule import PipelineSchedule
from repro.core.scheduler import SchedulerOptions, schedule_pipeline
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec
from repro.trace import trace_span

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.api.target import CompileTarget

# `repro.api` imports `repro.core.scheduler`, which triggers this package's
# __init__ (and thus this module) first — so api imports here must happen
# lazily, after both packages finish initializing.


@dataclass
class CompiledAccelerator:
    """A compiled accelerator: schedule plus lazily-generated artifacts."""

    schedule: PipelineSchedule
    options: SchedulerOptions
    metadata: dict[str, Any] = field(default_factory=dict)
    target: CompileTarget | None = None

    @property
    def dag(self) -> PipelineDAG:
        return self.schedule.dag

    @property
    def compile_seconds(self) -> float:
        return float(self.schedule.solver_stats.get("compile_seconds", 0.0))

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the request that produced this design."""
        fingerprints = self.metadata.get("schedule_fingerprints", ())
        return fingerprints[0] if fingerprints else ""

    # ----------------------------------------------------------------- RTL
    def generate_verilog(self) -> str:
        """Emit synthesizable Verilog for the scheduled pipeline."""
        from repro.rtl.generator import generate_verilog

        return generate_verilog(self.schedule)

    # ------------------------------------------------------------- analysis
    def area_report(self):
        """Memory + PE area summary (ASIC model)."""
        from repro.estimate.area import area_report

        return area_report(self.schedule)

    def power_report(self):
        """Memory + PE power summary (ASIC model)."""
        from repro.estimate.power import power_report

        return power_report(self.schedule)

    def verify(self, *, max_rows: int | None = 16):
        """Run the cycle-level legality checks (R1-R3) on a reduced image."""
        from repro.sim.cycle import simulate_schedule

        return simulate_schedule(self.schedule, max_rows=max_rows)

    def describe(self) -> str:
        return self.schedule.describe()


def _schedule_cached(
    target: CompileTarget, cache: Any | None
) -> tuple[PipelineSchedule, str, str]:
    """Solve one ImaGen schedule target, consulting a compile cache when given.

    Returns the schedule, its source — ``"memory"``/``"disk"`` for cache
    tiers, ``"solver"`` for a fresh ILP solve (which is then recorded in the
    cache) — and its content fingerprint.

    On a cache miss the cache is additionally asked for a *neighbor*
    (``fetch_neighbor``): the same DAG solved at another resolution or
    coalescing selection.  A hit becomes the solver's warm-start hint — the
    scheduler transfers the neighbor's solution and either certifies it
    optimal (skipping the ILP) or seeds the branch-and-bound incumbent with
    it.  Either way the solved schedule is byte-identical to a cold solve;
    the hint only changes how fast it is found.
    """
    if cache is None:
        schedule = schedule_pipeline(
            target.dag,
            target.image_width,
            target.image_height,
            target.memory_spec,
            target.options,
        )
        return schedule, "solver", target.fingerprint
    schedule, source, fingerprint = cache.fetch(target)
    if schedule is None:
        warm_hint = None
        fetch_neighbor = getattr(cache, "fetch_neighbor", None)
        if fetch_neighbor is not None:
            warm_hint = fetch_neighbor(target)
        schedule = schedule_pipeline(
            target.dag,
            target.image_width,
            target.image_height,
            target.memory_spec,
            target.options,
            warm_hint=warm_hint,
        )
        cache.put(fingerprint, schedule)
    return schedule, source, fingerprint


def _compile_imagen(target: CompileTarget, cache: Any | None) -> CompiledAccelerator:
    """The ImaGen ILP path, including the auto-coalescing fallback."""
    options = target.options
    schedule, source, fingerprint = _schedule_cached(target, cache)
    sources = [source]
    fingerprints = [fingerprint]

    if options.coalescing and options.coalescing_policy == "auto":
        # Coalescing interacts with downstream buffer sizes through the extra
        # writer-separation constraints; like any compiler optimization it is
        # only kept when it actually reduces the allocated on-chip memory.
        plain_target = target.with_options(coalescing=False)
        with trace_span("coalescing_fallback"):
            plain, plain_source, plain_fingerprint = _schedule_cached(plain_target, cache)
        sources.append(plain_source)
        fingerprints.append(plain_fingerprint)
        if plain.total_allocated_bits < schedule.total_allocated_bits or (
            plain.total_allocated_bits == schedule.total_allocated_bits
            and plain.total_blocks < schedule.total_blocks
        ):
            # Relabel a copy: `plain` may live in the cache under the
            # non-coalesced fingerprint and must stay pristine there.
            schedule = dc_replace(
                plain,
                generator="imagen+lc",
                solver_stats={**plain.solver_stats, "coalescing_fallback": True},
            )

    return CompiledAccelerator(
        schedule=schedule,
        options=options,
        metadata={
            "schedule_sources": tuple(sources),
            "schedule_fingerprints": tuple(fingerprints),
        },
        target=target,
    )


def _compile_baseline(target: CompileTarget, cache: Any | None) -> CompiledAccelerator:
    """Run a baseline generator (Darkroom/SODA/FixyNN) through the cache."""
    from repro.baselines.base import baseline_generator

    generator = baseline_generator(target.generator)  # raises BaselineError early
    if cache is None:
        schedule = generator.generate(
            target.dag, target.image_width, target.image_height, target.memory_spec
        )
        source, fingerprint = "solver", target.fingerprint
    else:
        schedule, source, fingerprint = cache.fetch(target)
        if schedule is None:
            schedule = generator.generate(
                target.dag, target.image_width, target.image_height, target.memory_spec
            )
            cache.put(fingerprint, schedule)
    return CompiledAccelerator(
        schedule=schedule,
        options=target.options,
        metadata={
            "schedule_sources": (source,),
            "schedule_fingerprints": (fingerprint,),
        },
        target=target,
    )


def compile_target(target: CompileTarget, *, cache: Any | None = None) -> CompiledAccelerator:
    """Compile one :class:`CompileTarget` into an accelerator design.

    Dispatches on ``target.generator``: ``"imagen"`` solves the scheduling
    ILP, a baseline name runs that generator.  Both paths consult the same
    ``cache`` (a :class:`repro.service.cache.CompileCache`) by content
    fingerprint, and both record, in the returned accelerator's metadata, the
    ``schedule_sources`` consulted and the matching ``schedule_fingerprints``
    so callers can correlate results with cache entries.
    """
    if target.is_imagen:
        return _compile_imagen(target, cache)
    return _compile_baseline(target, cache)


def compile_pipeline(
    pipeline: CompileTarget | PipelineDAG,
    *,
    image_width: int | None = None,
    image_height: int | None = None,
    memory_spec: MemorySpec | None = None,
    coalescing: bool = False,
    options: SchedulerOptions | None = None,
    cache: Any | None = None,
) -> CompiledAccelerator:
    """Compile a pipeline into a line-buffered accelerator design.

    The primary form takes a :class:`repro.api.CompileTarget`::

        target = CompileTarget(dag, image_width=480, image_height=320)
        acc = compile_pipeline(target)
        lc = compile_pipeline(target.with_options(coalescing=True))

    Parameters
    ----------
    pipeline:
        A :class:`CompileTarget` (preferred).  Passing a raw
        :class:`PipelineDAG` with the loose ``image_width=...`` keyword form
        is deprecated: it builds a target internally and emits a
        :class:`DeprecationWarning`.
    cache:
        Optional :class:`repro.service.cache.CompileCache`.  Every generator
        run — including both solves of the auto-coalescing fallback — is
        first looked up by content fingerprint and recorded on a miss, so
        repeated requests never re-run a generator.  The sources consulted
        and their fingerprints are recorded in the returned accelerator's
        ``metadata["schedule_sources"]`` / ``metadata["schedule_fingerprints"]``.
    """
    from repro.api.target import CompileTarget

    if isinstance(pipeline, CompileTarget):
        if (
            image_width is not None
            or image_height is not None
            or memory_spec is not None
            or options is not None
            or coalescing
        ):
            raise TypeError(
                "compile_pipeline(target) takes no compile kwargs; derive the "
                "target instead (target.with_options(...), .with_resolution(...))"
            )
        return compile_target(pipeline, cache=cache)

    warnings.warn(
        "compile_pipeline(dag, image_width=..., ...) is deprecated; build a "
        "repro.api.CompileTarget and call compile_pipeline(target)",
        DeprecationWarning,
        stacklevel=2,
    )
    if image_width is None or image_height is None:
        raise TypeError("compile_pipeline requires image_width and image_height")
    target = CompileTarget.from_kwargs(
        pipeline,
        image_width=image_width,
        image_height=image_height,
        memory_spec=memory_spec,
        options=options,
        coalescing=coalescing,
    )
    return compile_target(target, cache=cache)
