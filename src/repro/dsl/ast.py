"""Expression AST for stencil stages.

Each pipeline stage's arithmetic is a pure function of pixels read from its
producers at constant offsets.  The AST supports:

* constants,
* producer references at constant offsets (``K0(x-1, y+1)``),
* binary arithmetic (``+ - * / //``), comparisons (0/1 valued), min/max,
* unary negation and absolute value,
* a small set of intrinsics (``abs``, ``min``, ``max``, ``sqrt``, ``clamp``,
  ``select``).

The same AST serves three purposes: deriving the stencil window of each edge
(:func:`stencil_windows`), pixel-accurate functional simulation over NumPy
arrays (:func:`evaluate`), and Verilog expression generation
(:mod:`repro.rtl.modules`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import DSLSemanticError
from repro.ir.stencil import StencilWindow

_BINARY_OPS = {"+", "-", "*", "/", "//", "min", "max", "<", ">", "<=", ">=", "==", "!="}
_UNARY_OPS = {"-", "abs"}
_CALLS = {"abs", "min", "max", "sqrt", "clamp", "select"}


class Expr:
    """Base class for expression nodes.  Supports operator overloading."""

    # -- arithmetic sugar -------------------------------------------------
    def __add__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("+", self, _as_expr(other))

    def __radd__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("+", _as_expr(other), self)

    def __sub__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("-", self, _as_expr(other))

    def __rsub__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("-", _as_expr(other), self)

    def __mul__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("*", self, _as_expr(other))

    def __rmul__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("*", _as_expr(other), self)

    def __truediv__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("/", self, _as_expr(other))

    def __rtruediv__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("/", _as_expr(other), self)

    def __floordiv__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("//", self, _as_expr(other))

    def __neg__(self) -> "Expr":
        return UnaryOp("-", self)

    def __lt__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("<", self, _as_expr(other))

    def __gt__(self, other: "Expr | float | int") -> "Expr":
        return BinOp(">", self, _as_expr(other))

    def __le__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("<=", self, _as_expr(other))

    def __ge__(self, other: "Expr | float | int") -> "Expr":
        return BinOp(">=", self, _as_expr(other))

    def children(self) -> Sequence["Expr"]:
        return ()


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: float

    def children(self) -> Sequence[Expr]:
        return ()

    def __str__(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class StageRef(Expr):
    """A read of producer ``stage`` at constant offset ``(dx, dy)``.

    The optional frame offset ``dt`` (``0`` = current frame, ``-1`` = the
    previous frame) makes the reference temporal.  ``dt`` must be ``<= 0``
    for a causal pipeline — enforced at DAG validation, not here.
    """

    stage: str
    dx: int = 0
    dy: int = 0
    dt: int = 0

    def children(self) -> Sequence[Expr]:
        return ()

    def prev(self, frames: int = 1) -> "StageRef":
        """The same read shifted ``frames`` frames into the past."""
        return StageRef(self.stage, self.dx, self.dy, self.dt - frames)

    def __str__(self) -> str:
        def fmt(base: str, off: int) -> str:
            if off == 0:
                return base
            return f"{base}{'+' if off > 0 else '-'}{abs(off)}"

        # Spatial references keep the historical 2-axis form so the canonical
        # (str-based) serialization of 2-D pipelines stays byte-stable.
        if self.dt == 0:
            return f"{self.stage}({fmt('x', self.dx)},{fmt('y', self.dy)})"
        return f"{self.stage}({fmt('x', self.dx)},{fmt('y', self.dy)},{fmt('t', self.dt)})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise DSLSemanticError(f"Unsupported binary operator {self.op!r}")

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def __str__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.left}, {self.right})"
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operation (negation or absolute value)."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in _UNARY_OPS:
            raise DSLSemanticError(f"Unsupported unary operator {self.op!r}")

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __str__(self) -> str:
        if self.op == "abs":
            return f"abs({self.operand})"
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Call(Expr):
    """An intrinsic call: abs, min, max, sqrt, clamp(v, lo, hi), select(c, a, b)."""

    fn: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.fn not in _CALLS:
            raise DSLSemanticError(f"Unsupported intrinsic {self.fn!r}")
        arity = {"abs": 1, "sqrt": 1, "clamp": 3, "select": 3}
        if self.fn in arity and len(self.args) != arity[self.fn]:
            raise DSLSemanticError(
                f"Intrinsic {self.fn!r} expects {arity[self.fn]} arguments, got {len(self.args)}"
            )
        if self.fn in ("min", "max") and len(self.args) < 2:
            raise DSLSemanticError(f"Intrinsic {self.fn!r} expects at least 2 arguments")

    def children(self) -> Sequence[Expr]:
        return self.args

    def __str__(self) -> str:
        return f"{self.fn}({', '.join(str(a) for a in self.args)})"


def _as_expr(value: Expr | float | int) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise DSLSemanticError(f"Cannot convert {value!r} to a DSL expression")


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------
def walk(expr: Expr):
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def references_by_stage(expr: Expr) -> dict[str, list[StageRef]]:
    """Group every producer reference in ``expr`` by producer name."""
    refs: dict[str, list[StageRef]] = {}
    for node in walk(expr):
        if isinstance(node, StageRef):
            refs.setdefault(node.stage, []).append(node)
    return refs


def stencil_windows(expr: Expr) -> dict[str, StencilWindow]:
    """The stencil window read from each producer referenced by ``expr``.

    Temporal references (``dt != 0``) widen the window's frame extent; purely
    spatial expressions produce the same windows they always did.
    """
    windows: dict[str, StencilWindow] = {}
    for stage, refs in references_by_stage(expr).items():
        window = _point_window(refs[0])
        for ref in refs[1:]:
            window = window.union(_point_window(ref))
        windows[stage] = window
    return windows


def _point_window(ref: StageRef) -> StencilWindow:
    if ref.dt == 0:
        return StencilWindow(ref.dx, ref.dx, ref.dy, ref.dy)
    return StencilWindow(ref.dx, ref.dx, ref.dy, ref.dy, ref.dt, ref.dt)


# ---------------------------------------------------------------------------
# Functional evaluation over NumPy images
# ---------------------------------------------------------------------------
def _shifted(image: np.ndarray, dx: int, dy: int, dt: int = 0) -> np.ndarray:
    """Return image sampled at (x+dx, y+dy) — and frame (t+dt) — edge-clamped.

    Spatial offsets shift the trailing two axes only, so a
    (frames, height, width) batch evaluates all frames in one pass — the
    vectorized replay path of ``repro.sim.batch`` relies on this.  A temporal
    offset shifts the third-from-last axis (the frame/time axis) with the
    same clamping convention: before the first frame, the sequence is padded
    by repeating frame 0 (the temporal analogue of edge-clamped borders).
    """
    height, width = image.shape[-2], image.shape[-1]
    ys = np.clip(np.arange(height) + dy, 0, height - 1)
    xs = np.clip(np.arange(width) + dx, 0, width - 1)
    shifted = image[..., ys[:, None], xs[None, :]]
    if dt == 0:
        return shifted
    if image.ndim < 3:
        raise DSLSemanticError(
            f"Temporal reference (dt={dt}) needs a (frames, height, width) "
            "sequence, got a single 2-D frame"
        )
    frames = image.shape[-3]
    ts = np.clip(np.arange(frames) + dt, 0, frames - 1)
    axis = image.ndim - 3
    return np.take(shifted, ts, axis=axis)


def evaluate(expr: Expr, images: Mapping[str, np.ndarray]) -> np.ndarray:
    """Evaluate ``expr`` over full images (pixel-accurate functional semantics).

    ``images`` maps producer stage names to float arrays of identical shape —
    2-D ``(height, width)`` single frames or N-D batches whose trailing two
    axes are ``(height, width)``.  Border handling is edge clamping, matching
    the padding assumption of the paper's formulation (Sec. 5, footnote 2).
    """
    if isinstance(expr, Const):
        shapes = {img.shape for img in images.values()}
        if not shapes:
            raise DSLSemanticError("Cannot evaluate a constant expression without images")
        shape = next(iter(shapes))
        return np.full(shape, expr.value, dtype=np.float64)
    if isinstance(expr, StageRef):
        if expr.stage not in images:
            raise DSLSemanticError(f"No image supplied for producer {expr.stage!r}")
        return _shifted(
            np.asarray(images[expr.stage], dtype=np.float64), expr.dx, expr.dy, expr.dt
        )
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, images)
        return np.abs(value) if expr.op == "abs" else -value
    if isinstance(expr, BinOp):
        left = evaluate(expr.left, images)
        right = evaluate(expr.right, images)
        return _apply_binop(expr.op, left, right)
    if isinstance(expr, Call):
        args = [evaluate(arg, images) for arg in expr.args]
        return _apply_call(expr.fn, args)
    raise DSLSemanticError(f"Cannot evaluate expression node {expr!r}")


def _apply_binop(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return np.divide(left, np.where(right == 0, 1.0, right))
    if op == "//":
        return np.floor_divide(left, np.where(right == 0, 1.0, right))
    if op == "min":
        return np.minimum(left, right)
    if op == "max":
        return np.maximum(left, right)
    if op == "<":
        return (left < right).astype(np.float64)
    if op == ">":
        return (left > right).astype(np.float64)
    if op == "<=":
        return (left <= right).astype(np.float64)
    if op == ">=":
        return (left >= right).astype(np.float64)
    if op == "==":
        return (left == right).astype(np.float64)
    if op == "!=":
        return (left != right).astype(np.float64)
    raise DSLSemanticError(f"Unsupported binary operator {op!r}")


def _apply_call(fn: str, args: list[np.ndarray]) -> np.ndarray:
    if fn == "abs":
        return np.abs(args[0])
    if fn == "sqrt":
        return np.sqrt(np.maximum(args[0], 0.0))
    if fn == "min":
        result = args[0]
        for arg in args[1:]:
            result = np.minimum(result, arg)
        return result
    if fn == "max":
        result = args[0]
        for arg in args[1:]:
            result = np.maximum(result, arg)
        return result
    if fn == "clamp":
        return np.clip(args[0], args[1], args[2])
    if fn == "select":
        return np.where(args[0] != 0, args[1], args[2])
    raise DSLSemanticError(f"Unsupported intrinsic {fn!r}")


def estimate_operation_count(expr: Expr) -> int:
    """Number of arithmetic operators in an expression (proxy for PE cost)."""
    count = 0
    for node in walk(expr):
        if isinstance(node, (BinOp, UnaryOp)):
            count += 1
        elif isinstance(node, Call):
            count += max(1, len(node.args) - 1)
    return count
