"""Baseline accelerator generators the paper compares against (Sec. 7).

* :mod:`repro.baselines.darkroom` — linearizes multi-consumer pipelines and
  uses dual-port SRAM line buffers.
* :mod:`repro.baselines.soda` — FIFO-based line buffers (dual-port SRAM),
  FIFO splitting for multi-consumer stages, last line in DFFs.
* :mod:`repro.baselines.fixynn` — classic line buffers restricted to
  single-port SRAM.

Each generator returns the same :class:`repro.core.schedule.PipelineSchedule`
artifact as the ImaGen optimizer, so simulators and estimators treat all
designs uniformly.
"""

from repro.baselines.base import (
    BASELINE_NAMES,
    BaselineGenerator,
    baseline_generator,
    generate_baseline,
)
from repro.baselines.darkroom import DarkroomGenerator, linearize_dag
from repro.baselines.soda import SodaGenerator
from repro.baselines.fixynn import FixynnGenerator

__all__ = [
    "BaselineGenerator",
    "baseline_generator",
    "generate_baseline",
    "BASELINE_NAMES",
    "DarkroomGenerator",
    "linearize_dag",
    "SodaGenerator",
    "FixynnGenerator",
]
