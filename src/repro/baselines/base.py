"""Common infrastructure for baseline generators."""

from __future__ import annotations

import abc

from repro.core.schedule import PipelineSchedule
from repro.errors import BaselineError
from repro.ir.dag import PipelineDAG
from repro.ir.traversal import topological_order
from repro.memory.spec import MemorySpec

BASELINE_NAMES = ("fixynn", "darkroom", "soda")


class BaselineGenerator(abc.ABC):
    """Interface shared by all baseline accelerator generators."""

    name: str = "baseline"

    @abc.abstractmethod
    def generate(
        self,
        dag: PipelineDAG,
        image_width: int,
        image_height: int,
        memory_spec: MemorySpec | None = None,
    ) -> PipelineSchedule:
        """Produce a schedule + line-buffer configuration for the pipeline."""

    # Convenience used by several baselines: data-dependency-only ASAP schedule.
    @staticmethod
    def asap_schedule(
        dag: PipelineDAG, image_width: int, extra_gap: dict[tuple[str, str], int] | None = None
    ) -> dict[str, int]:
        """Earliest start cycles honouring Eq. 1b (plus optional per-edge extra gaps)."""
        extra_gap = extra_gap or {}
        starts: dict[str, int] = {}
        for node in topological_order(dag):
            stage = dag.stage(node)
            if stage.is_input:
                starts[node] = 0
                continue
            best = 0
            for edge in dag.in_edges(node):
                min_delay = (edge.window.height - 1) * image_width + 1
                min_delay += extra_gap.get((edge.producer, edge.consumer), 0)
                best = max(best, starts[edge.producer] + min_delay)
            starts[node] = best
        return starts


def generate_baseline(
    name: str,
    dag: PipelineDAG,
    image_width: int,
    image_height: int,
    memory_spec: MemorySpec | None = None,
) -> PipelineSchedule:
    """Dispatch by baseline name (``fixynn``, ``darkroom``, ``soda``)."""
    from repro.baselines.darkroom import DarkroomGenerator
    from repro.baselines.fixynn import FixynnGenerator
    from repro.baselines.soda import SodaGenerator

    generators = {
        "fixynn": FixynnGenerator,
        "darkroom": DarkroomGenerator,
        "soda": SodaGenerator,
    }
    if name not in generators:
        raise BaselineError(f"Unknown baseline {name!r}; expected one of {BASELINE_NAMES}")
    return generators[name]().generate(dag, image_width, image_height, memory_spec)
