"""The observability surface stays coherent with itself.

Three contracts, all enforced here:

* every key the live JSON endpoints actually serve is declared in the
  ``METRIC_SPECS`` registry (no unregistered metric ships);
* the Prometheus exposition scrapes clean (``tools/check_prometheus.py``'s
  validator) and carries the acceptance-critical per-stage histograms;
* the generated docs tables (``tools/gen_docs_tables.py``) cannot drift —
  ``--check`` passes on this checkout and fails on a doctored copy.

Plus the metrics-layer semantics the exposition relies on: per-source-class
latency percentiles with rejected traces excluded, and exactly-once span
aggregation into the stage histograms.
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

import pytest

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.service import (
    METRIC_SPECS,
    CompileEngine,
    ServiceClient,
    metric_spec,
    registered_keys,
    render_prometheus,
    start_server,
)
from repro.service.metrics import (
    DEFAULT_STAGES,
    EngineMetrics,
    RequestTrace,
    StageHistogram,
    classify_source,
)
from repro.trace import collect_spans, trace_span

from tests.conftest import TEST_HEIGHT, TEST_WIDTH

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_prometheus  # noqa: E402 - path set up above
import gen_docs_tables  # noqa: E402

W, H = TEST_WIDTH, TEST_HEIGHT


@pytest.fixture(scope="module")
def live_service():
    """One compiled-and-scraped inline service shared by the surface tests."""
    engine = CompileEngine(workers=1, executor="inline", tracing=True)
    server = start_server(engine)
    client = ServiceClient(port=server.port)
    target = CompileTarget(build_algorithm("unsharp-m"), image_width=W, image_height=H)
    client.compile(target)
    client.compile(target)  # repeat: exercises the cache tier and its span
    yield client
    server.stop()
    engine.shutdown()


class TestRegistryCoversLiveEndpoints:
    def test_metrics_keys_are_all_registered(self, live_service):
        served = set(live_service.metrics())
        declared = registered_keys("/v1/metrics")
        assert served <= declared, f"unregistered keys: {sorted(served - declared)}"

    def test_cache_stats_keys_are_all_registered(self, live_service):
        served = set(live_service.cache_stats())
        declared = registered_keys("/v1/cache/stats")
        assert served <= declared, f"unregistered keys: {sorted(served - declared)}"

    def test_registry_is_unique_per_endpoint(self):
        seen = set()
        for spec in METRIC_SPECS:
            assert (spec.endpoint, spec.key) not in seen
            seen.add((spec.endpoint, spec.key))

    def test_counters_export_total_suffixed_samples(self):
        for spec in METRIC_SPECS:
            if spec.kind == "counter" and spec.prometheus:
                name = spec.prometheus.split("{", 1)[0]
                assert name.endswith("_total"), spec.prometheus

    def test_lookup_helpers(self):
        assert metric_spec("requests").kind == "counter"
        assert metric_spec("hits", "/v1/cache/stats").prometheus
        assert metric_spec("no-such-key") is None


class TestPrometheusExposition:
    def test_live_scrape_passes_the_lint(self, live_service):
        text = live_service.metrics_prometheus()
        assert check_prometheus.validate_exposition(text) == []

    def test_required_stage_histograms_present(self, live_service):
        text = live_service.metrics_prometheus()
        for stage in check_prometheus.REQUIRED_STAGES:
            assert f'repro_stage_seconds_count{{stage="{stage}"}}' in text

    def test_trace_flag_returns_nested_span_tree(self, live_service):
        target = CompileTarget(
            build_algorithm("unsharp-m"), image_width=W, image_height=H
        )
        result = live_service.compile(target, trace=True)
        names = [span["name"] for span in result["spans"]]
        assert "cache" in names  # warm repeat: the tier lookup is the story
        untraced = live_service.compile(target)
        assert "spans" not in untraced

    def test_renderer_output_on_empty_metrics_still_lints(self):
        metrics = EngineMetrics()
        text = render_prometheus(metrics.summary(), metrics.stage_histograms())
        assert check_prometheus.validate_exposition(text) == []
        for stage in DEFAULT_STAGES:
            assert f'repro_stage_seconds_count{{stage="{stage}"}} 0' in text
        assert text.endswith("\n")

    def test_validator_rejects_broken_expositions(self):
        assert check_prometheus.validate_exposition("repro_x 1\n")  # no TYPE
        assert check_prometheus.validate_exposition(
            "# TYPE repro_x counter\nrepro_x 1\n"  # counter without _total
        )
        assert check_prometheus.validate_exposition(
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 2\nrepro_h_sum 1\nrepro_h_count 2\n'
        )  # histogram without a +Inf bucket
        assert check_prometheus.validate_exposition(
            "# TYPE repro_x gauge\nrepro_x not-a-number\n"
        )


class TestStageHistogram:
    def test_buckets_are_cumulative_and_end_at_inf(self):
        hist = StageHistogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(5.555)
        assert snapshot["buckets"] == [[0.01, 1], [0.1, 2], [1.0, 3], ["+Inf", 4]]

    def test_observation_on_bucket_boundary_counts_into_it(self):
        hist = StageHistogram(buckets=(0.01, 0.1))
        hist.observe(0.1)
        assert hist.snapshot()["buckets"] == [[0.01, 0], [0.1, 1], ["+Inf", 1]]


class TestEngineMetricsSpans:
    def _spans(self):
        with collect_spans() as trace:
            with trace_span("solve"):
                with trace_span("ilp"):
                    pass
            with trace_span("rtl"):
                pass
        return trace.spans

    def test_observe_spans_counts_nested_stages_separately(self):
        metrics = EngineMetrics()
        metrics.observe_spans(self._spans())
        histograms = metrics.stage_histograms()
        assert histograms["solve"]["count"] == 1
        assert histograms["ilp"]["count"] == 1  # created on demand
        assert histograms["rtl"]["count"] == 1
        assert histograms["cache"]["count"] == 0  # pre-seeded, untouched

    def test_default_stages_pre_seeded(self):
        assert set(DEFAULT_STAGES) <= set(EngineMetrics().stage_histograms())

    def test_summary_carries_stage_seconds(self):
        metrics = EngineMetrics()
        metrics.observe_spans(self._spans())
        stage_seconds = metrics.summary()["stage_seconds"]
        assert stage_seconds["solve"]["count"] == 1
        assert stage_seconds["solve"]["sum_seconds"] >= 0.0


class TestPerClassPercentiles:
    @staticmethod
    def _trace(source: str, seconds: float, ok: bool = True) -> RequestTrace:
        return RequestTrace(
            label="", fingerprint="f", source=source, seconds=seconds, ok=ok
        )

    def test_classify_source(self):
        assert classify_source("memory") == "served_from_cache"
        assert classify_source("disk") == "served_from_cache"
        assert classify_source("solver") == "compiled"
        assert classify_source("rejected") == "rejected"
        assert classify_source("deduplicated") == "deduplicated"

    def test_percentiles_split_by_source_class(self):
        metrics = EngineMetrics()
        for seconds in (1.0, 2.0, 3.0):
            metrics.record(self._trace("solver", seconds))
        for seconds in (0.001, 0.002, 0.003):
            metrics.record(self._trace("memory", seconds))
        summary = metrics.summary()
        assert summary["p50_seconds_compiled"] == 2.0
        assert summary["p50_seconds_served_from_cache"] == 0.002
        # The blended p50 sits between the two class medians.
        assert 0.003 <= summary["p50_seconds"] <= 2.0

    def test_rejected_traces_excluded_from_every_aggregate(self):
        metrics = EngineMetrics()
        for seconds in (1.0, 2.0, 3.0):
            metrics.record(self._trace("solver", seconds))
        baseline = metrics.summary()
        for _ in range(50):  # a shed storm of zero-latency traces
            metrics.record(self._trace("rejected", 0.0, ok=False))
        stormy = metrics.summary()
        assert stormy["rejected"] == 50
        for key in (
            "mean_seconds",
            "p50_seconds",
            "p95_seconds",
            "p50_seconds_compiled",
            "p95_seconds_compiled",
        ):
            assert stormy[key] == baseline[key], key

    def test_empty_window_percentile_is_zero(self):
        assert EngineMetrics().latency_percentile(0.95) == 0.0
        assert EngineMetrics().latency_percentile(0.5, "compiled") == 0.0


class TestGeneratedDocsTables:
    def test_check_passes_on_this_checkout(self):
        assert gen_docs_tables.process(REPO_ROOT, check=True) == []

    def _copy_docs(self, tmp_path: Path) -> Path:
        docs = tmp_path / "docs"
        docs.mkdir()
        for name in ("serving.md", "observability.md", "verification.md", "wire-protocol.md"):
            shutil.copy(REPO_ROOT / "docs" / name, docs / name)
        return tmp_path

    def test_check_fails_on_drifted_copy(self, tmp_path):
        root = self._copy_docs(tmp_path)
        page = root / "docs" / "serving.md"
        page.write_text(
            page.read_text(encoding="utf-8").replace(
                "| `requests` |", "| `requests_renamed` |", 1
            ),
            encoding="utf-8",
        )
        problems = gen_docs_tables.process(root, check=True)
        assert problems and "metrics-table" in problems[0]

    def test_check_fails_on_missing_markers(self, tmp_path):
        root = self._copy_docs(tmp_path)
        page = root / "docs" / "observability.md"
        begin, end = gen_docs_tables._markers("prometheus-table")
        text = page.read_text(encoding="utf-8").replace(begin, "").replace(end, "")
        page.write_text(text, encoding="utf-8")
        problems = gen_docs_tables.process(root, check=True)
        assert any("prometheus-table" in problem for problem in problems)

    def test_regenerate_repairs_a_drifted_copy(self, tmp_path):
        root = self._copy_docs(tmp_path)
        page = root / "docs" / "serving.md"
        original = page.read_text(encoding="utf-8")
        page.write_text(
            original.replace("| `requests` |", "| `requests_renamed` |", 1),
            encoding="utf-8",
        )
        assert gen_docs_tables.process(root, check=False) == []
        assert page.read_text(encoding="utf-8") == original
