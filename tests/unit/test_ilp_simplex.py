"""Unit tests for the dense two-phase simplex LP solver."""

import numpy as np
import pytest

from repro.ilp.simplex import solve_lp


def lp(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, lb=None, ub=None):
    c = np.asarray(c, dtype=float)
    n = c.size
    lb = np.zeros(n) if lb is None else np.asarray(lb, dtype=float)
    ub = np.full(n, np.inf) if ub is None else np.asarray(ub, dtype=float)
    return solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub)


class TestBasicLPs:
    def test_simple_minimisation(self):
        # min x + y s.t. x + y >= 2  (as -x - y <= -2)
        result = lp([1, 1], a_ub=[[-1, -1]], b_ub=[-2])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(2.0)

    def test_bounded_maximisation_as_negated_min(self):
        # max 3x + 2y s.t. x + y <= 4, x <= 2  ->  min -3x - 2y
        result = lp([-3, -2], a_ub=[[1, 1], [1, 0]], b_ub=[4, 2])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-10.0)
        assert result.x[0] == pytest.approx(2.0)
        assert result.x[1] == pytest.approx(2.0)

    def test_equality_constraints(self):
        # min x + 2y s.t. x + y == 5
        result = lp([1, 2], a_eq=[[1, 1]], b_eq=[5])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(5.0)
        assert result.x[0] == pytest.approx(5.0)

    def test_infeasible(self):
        # x >= 5 and x <= 1 simultaneously.
        result = lp([1], a_ub=[[-1], [1]], b_ub=[-5, 1])
        assert result.status == "infeasible"

    def test_unbounded(self):
        # min -x with x unbounded above.
        result = lp([-1])
        assert result.status == "unbounded"

    def test_degenerate_constraints(self):
        result = lp([1, 1], a_ub=[[1, 1], [1, 1], [2, 2]], b_ub=[3, 3, 6])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(0.0)


class TestBounds:
    def test_lower_bounds_shift(self):
        # min x + y with x >= 3, y >= 4
        result = lp([1, 1], lb=[3, 4])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(7.0)

    def test_upper_bounds(self):
        # min -x with 0 <= x <= 6
        result = lp([-1], ub=[6])
        assert result.status == "optimal"
        assert result.x[0] == pytest.approx(6.0)

    def test_negative_lower_bound(self):
        # min x with x >= -5
        result = lp([1], lb=[-5])
        assert result.status == "optimal"
        assert result.x[0] == pytest.approx(-5.0)

    def test_free_variable(self):
        # min x s.t. x >= -7 expressed via a constraint, x itself free.
        result = lp([1], a_ub=[[-1]], b_ub=[7], lb=[-np.inf])
        assert result.status == "optimal"
        assert result.x[0] == pytest.approx(-7.0)

    def test_mirrored_variable(self):
        # Only an upper bound: min -x, x <= 9, x unbounded below -> optimum at 9.
        result = lp([-1], lb=[-np.inf], ub=[9])
        assert result.status == "optimal"
        assert result.x[0] == pytest.approx(9.0)

    def test_infeasible_bound_vs_constraint(self):
        # x <= 2 (bound) but constraint x >= 4.
        result = lp([1], a_ub=[[-1]], b_ub=[-4], ub=[2])
        assert result.status == "infeasible"


class TestSolutionQuality:
    def test_solution_satisfies_constraints(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = 3
            a_ub = rng.integers(-3, 4, size=(4, n)).astype(float)
            b_ub = rng.integers(5, 20, size=4).astype(float)
            c = rng.integers(1, 5, size=n).astype(float)
            result = lp(c, a_ub=a_ub, b_ub=b_ub)
            assert result.status == "optimal"
            assert np.all(a_ub @ result.x <= b_ub + 1e-6)
            assert np.all(result.x >= -1e-9)

    def test_matches_scipy_linprog(self):
        from scipy.optimize import linprog

        rng = np.random.default_rng(3)
        for _ in range(10):
            n = 4
            a_ub = rng.integers(-2, 5, size=(5, n)).astype(float)
            b_ub = rng.integers(5, 30, size=5).astype(float)
            c = rng.integers(1, 6, size=n).astype(float)
            ours = lp(c, a_ub=a_ub, b_ub=b_ub)
            reference = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * n, method="highs")
            assert ours.status == "optimal" and reference.success
            assert ours.objective == pytest.approx(reference.fun, abs=1e-6)
