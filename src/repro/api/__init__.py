"""The public request API: one design-point abstraction for the whole library.

:class:`CompileTarget` is the unified, immutable compile request — pipeline
DAG + resolution + memory spec + scheduler options + generator name — that
every layer consumes and produces:

* :func:`repro.core.compile_pipeline` compiles a target (ImaGen ILP or a
  baseline generator, chosen by ``target.generator``);
* :class:`repro.service.CompileEngine` serves targets synchronously
  (``submit`` / ``submit_batch``) and asynchronously (``submit_async`` /
  ``submit_batch_async``);
* :func:`repro.baselines.generate_baseline` compiles baseline-flavoured
  targets through the same cache;
* :func:`repro.dse.sweep_memory_configurations` enumerates
  ``target.with_options(...)`` derivations.

:func:`compile_fingerprint` gives every target a stable content hash — the
cache key used across the in-memory and on-disk tiers.
"""

from repro.api.fingerprint import (
    FINGERPRINT_VERSION,
    compile_fingerprint,
    dag_fingerprint,
    normalize_memory_spec,
    normalize_options,
)
from repro.api.target import IMAGEN_GENERATOR, CompileTarget

__all__ = [
    "CompileTarget",
    "FINGERPRINT_VERSION",
    "IMAGEN_GENERATOR",
    "compile_fingerprint",
    "dag_fingerprint",
    "normalize_memory_spec",
    "normalize_options",
]
