"""The compile engine: cached, deduplicated, parallel compilation service.

Stability: public.

:class:`CompileEngine` is the serving-layer entry point.  Its unit of work is
the :class:`repro.api.CompileTarget`; every submission path wraps
:func:`repro.core.compile_pipeline`:

* every generator run goes through a shared :class:`CompileCache`, so
  repeated targets (interactive clients, DSE sweeps, the auto-coalescing
  fallback, baseline comparisons) are answered without re-running anything;
  on a miss the cache still helps: its nearest same-DAG entry
  (:meth:`CompileCache.fetch_neighbor`) warm-starts the scheduling ILP,
  which certifies most resolution/option neighbors outright and seeds the
  branch-and-bound otherwise (``ilp_warm_*`` counters on ``/v1/metrics``,
  ``neighbor_*`` on ``/v1/cache/stats``);
* identical in-flight targets are deduplicated — concurrent batches that
  contain the same design point trigger exactly one run;
* batches fan out over a pluggable :class:`repro.service.executor`
  backend — ``inline`` (deterministic, for tests), ``thread`` (the default;
  the HiGHS backend releases the GIL, so independent solves overlap on
  multi-core hosts) or ``process`` (worker processes talking wire payloads,
  which parallelizes the pure-Python solver fallback too) — selected via
  ``CompileEngine(executor=...)`` or the ``REPRO_EXECUTOR`` environment
  variable;
* per-request latency and hit-rate metrics are recorded
  (:class:`repro.service.metrics.EngineMetrics`).

Single targets submitted through :meth:`CompileEngine.submit` (or the
:meth:`CompileEngine.compile` convenience wrapper) run inline on the calling
thread — pools are created lazily, so a cache-only engine costs nothing to
construct.

Speculative pre-warming
-----------------------
``CompileEngine(prewarm=True)`` turns each single-target compile into a
forecast: the engine background-submits the same design point at the other
evaluation resolutions (320p/1080p by default) and with the coalescing flag
toggled, so an interactive client stepping through the paper's design axes
finds every next request already cached.  The in-flight dedup table makes
speculation free when the client races it to the same fingerprint, and the
first resolution solved warm-starts the speculative siblings through the
cache's neighbor lookup.

Admission control
-----------------
``CompileEngine(max_pending=...)`` (or the ``REPRO_MAX_PENDING`` environment
variable) inserts a bounded :class:`repro.service.admission.AdmissionQueue`
between the dedup table and the executor backend: at most ``workers`` jobs
are dispatched at a time and at most ``max_pending`` more may wait.  The
``overflow`` policy decides what happens beyond that — ``"shed"`` raises
:class:`repro.service.admission.QueueFullError` (batch submissions degrade
the shed items to error-carrying results with ``source="rejected"`` instead)
while ``"block"`` applies backpressure to the submitter.  Every submission
path accepts a ``client=`` identity; pending work drains round-robin across
identities, so one flooding client cannot starve the rest.  Cache-answerable
submits bypass the queue entirely — admission control prices solver work,
not dictionary lookups.

Async front
-----------
For services that await compile jobs instead of dedicating a thread per
request, the engine exposes an :mod:`asyncio` front over the same worker
pool: :meth:`submit_async` and :meth:`submit_batch_async` wrap the pool's
futures with :func:`asyncio.wrap_future`, and the engine is an async context
manager::

    async with CompileEngine(workers=4) as engine:
        batch = await engine.submit_batch_async(targets)

Results are identical to the synchronous paths for the same targets, and the
cache, dedup and metrics machinery is shared — an async client and a sync
batch racing on the same design point still trigger exactly one solve.

Legacy :class:`CompileRequest` objects are still accepted everywhere a target
is (converted via ``request.to_target()`` with a :class:`DeprecationWarning`).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
import warnings
from concurrent.futures import CancelledError, Future
from dataclasses import replace
from typing import Callable, Iterable, Sequence

from repro.api.target import CompileTarget
from repro.core.compiler import CompiledAccelerator, compile_pipeline
from repro.service.admission import (
    AdmissionQueue,
    QueueFullError,
    default_max_pending,
    validate_max_pending,
)
from repro.core.scheduler import SchedulerOptions
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec
from repro.service.cache import CompileCache, DiskCacheStore
from repro.service.events import emit_event
from repro.service.executor import (
    WORKERS_ENV_VAR,
    ExecutorBackend,
    relay_future,
    resolve_executor,
    validate_worker_count,
)
from repro.service.jobs import (
    SOURCE_DEDUPLICATED,
    BatchResult,
    CompileRequest,
    CompileResult,
    derive_source,
    rejected_result,
)
from repro.service.metrics import EngineMetrics, RequestTrace
from repro.trace import collect_spans, default_tracing

#: Resolutions speculatively pre-warmed by ``CompileEngine(prewarm=True)``:
#: the paper's two evaluation sizes (320p and 1080p).
PREWARM_RESOLUTIONS: tuple[tuple[int, int], ...] = ((480, 320), (1920, 1080))


async def _resolved(value):
    """An already-settled awaitable (gather alignment for preset batch slots)."""
    return value


def default_worker_count() -> int:
    """Pool size used when the caller does not specify one.

    The ``REPRO_WORKERS`` environment variable, when set, takes precedence
    and must be a positive integer — ``0``, negatives and garbage raise
    :class:`ValueError` (they used to be ignored, which silently mis-sized
    production pools).
    """
    override = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if override:
        return validate_worker_count(override, source=WORKERS_ENV_VAR)
    return min(8, os.cpu_count() or 1)


class CompileEngine:
    """A compilation service instance: cache + executor backend + metrics.

    Parameters
    ----------
    workers:
        Pool size for batch submissions (default:
        :func:`default_worker_count`, overridable via ``REPRO_WORKERS``).
    executor:
        Execution backend for batch/async fan-out: ``"inline"``,
        ``"thread"`` (default), ``"process"``, or a ready-made
        :class:`repro.service.executor.ExecutorBackend` instance (which may
        be shared between engines).  ``None`` consults the
        ``REPRO_EXECUTOR`` environment variable.
    cache:
        A :class:`CompileCache` to share between engines; one is created when
        omitted.
    cache_dir:
        Convenience: when given (and ``cache`` is not), the created cache is
        backed by a :class:`DiskCacheStore` in this directory, so schedules
        persist across processes.  The process backend forwards this volume
        to its workers.
    max_cache_entries:
        LRU capacity of the created cache.
    prewarm:
        Opt-in speculative pre-warming: each single-target compile
        background-submits the target at the other ``prewarm_resolutions``
        and with the coalescing flag toggled (see the module docstring).
    prewarm_resolutions:
        The resolutions speculation covers (default: the paper's 320p/1080p
        evaluation sizes).
    max_pending:
        Bound on the number of admitted-but-undispatched jobs (default:
        ``REPRO_MAX_PENDING``, else unbounded).  Enables the admission queue:
        submissions beyond ``workers`` in-flight + ``max_pending`` waiting
        follow the ``overflow`` policy, and pending work drains round-robin
        across ``client=`` identities.
    overflow:
        What a full queue does to new submissions: ``"shed"`` (default)
        raises :class:`repro.service.admission.QueueFullError` — the HTTP
        front maps it to 429 with ``Retry-After`` — while ``"block"`` makes
        the submitter wait for space.
    tracing:
        Whether in-process compiles record per-stage spans
        (:mod:`repro.trace`) onto their results and into the engine's stage
        histograms.  ``None`` (default) follows the ``REPRO_TRACE``
        environment variable, which also governs process-pool workers (they
        inherit the environment; an explicit ``tracing=`` here cannot reach
        an already-spawned worker process).
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        executor: str | ExecutorBackend | None = None,
        cache: CompileCache | None = None,
        cache_dir: str | os.PathLike | None = None,
        max_cache_entries: int = 512,
        prewarm: bool = False,
        prewarm_resolutions: Sequence[tuple[int, int]] = PREWARM_RESOLUTIONS,
        max_pending: int | None = None,
        overflow: str = "shed",
        tracing: bool | None = None,
    ) -> None:
        if workers is not None:
            workers = validate_worker_count(workers)
        self.workers = workers or default_worker_count()
        if cache is None:
            store = DiskCacheStore(cache_dir) if cache_dir is not None else None
            cache = CompileCache(max_entries=max_cache_entries, store=store)
        self.cache = cache
        store = self.cache.store
        self._executor = resolve_executor(
            executor,
            workers=self.workers,
            cache_dir=str(store.directory) if store is not None else None,
            cache_max_bytes=store.max_bytes if store is not None else None,
            cache_max_age_seconds=store.max_age_seconds if store is not None else None,
        )
        self.prewarm = prewarm
        self.prewarm_resolutions = tuple(prewarm_resolutions)
        self.tracing = default_tracing() if tracing is None else bool(tracing)
        self.metrics = EngineMetrics()
        if max_pending is None:
            max_pending = default_max_pending()
        else:
            max_pending = validate_max_pending(max_pending)
        self.max_pending = max_pending
        self.overflow = overflow
        if max_pending is not None:
            # Retry-After for shed jobs: roughly one mean solve, so clients
            # back off in proportion to how expensive this workload is.  The
            # dispatch width follows the *backend's* fleet (a ready-made
            # ExecutorBackend instance may size itself differently from the
            # engine default).
            self._admission: AdmissionQueue | None = AdmissionQueue(
                self._executor.workers,
                max_pending=max_pending,
                policy=overflow,
                retry_after=lambda: self.metrics.mean_seconds or 1.0,
            )
        else:
            if overflow not in ("shed", "block"):
                raise ValueError(f"overflow must be 'shed' or 'block', got {overflow!r}")
            self._admission = None
        self._inflight: dict[str, Future] = {}
        self._prewarm_pending: set[Future] = set()
        self._lock = threading.Lock()

    @property
    def executor_name(self) -> str:
        """Name of the active execution backend (``inline``/``thread``/``process``)."""
        return self._executor.name

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "CompileEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    async def __aenter__(self) -> "CompileEngine":
        return self

    async def __aexit__(self, *exc_info) -> None:
        # Pool shutdown joins worker threads; keep that off the event loop.
        await asyncio.get_running_loop().run_in_executor(None, self.shutdown)

    def shutdown(self, wait: bool = True, *, cancel_pending: bool = False) -> None:
        """Stop the executor backend (the cache and its disk store stay usable).

        ``cancel_pending=True`` additionally cancels queued-but-unstarted
        jobs — both those waiting in the admission queue (dropped before
        they ever reach a backend, so they cannot be pumped into a recreated
        pool) and those queued inside the backend: their futures (and any
        :func:`asyncio.wrap_future` wrappers awaiting them) resolve with
        ``CancelledError``.  The engine stays usable — the next batch
        submission transparently recreates the pool.
        """
        if cancel_pending and self._admission is not None:
            self._admission.cancel_pending()
        self._executor.shutdown(wait, cancel_pending=cancel_pending)

    # -------------------------------------------------------- normalization
    @staticmethod
    def _as_target(item: CompileTarget | CompileRequest) -> CompileTarget:
        if isinstance(item, CompileTarget):
            return item
        if isinstance(item, CompileRequest):
            warnings.warn(
                "Submitting CompileRequest objects is deprecated; build a "
                "repro.api.CompileTarget instead",
                DeprecationWarning,
                stacklevel=3,
            )
            return item.to_target()
        raise TypeError(f"Expected CompileTarget or CompileRequest, got {type(item).__name__}")

    # ------------------------------------------------------------ single job
    def compile(
        self,
        pipeline: CompileTarget | PipelineDAG,
        *,
        image_width: int | None = None,
        image_height: int | None = None,
        memory_spec: MemorySpec | None = None,
        coalescing: bool = False,
        options: SchedulerOptions | None = None,
        label: str = "",
    ) -> CompiledAccelerator:
        """Compile one target through the cache and return the accelerator.

        ``engine.compile(target)`` is shorthand for
        ``engine.submit(target).unwrap()``.  The loose kwarg form
        ``engine.compile(dag, image_width=..., ...)`` is deprecated; it builds
        a target internally and emits a :class:`DeprecationWarning`.
        """
        if isinstance(pipeline, CompileTarget):
            if (
                image_width is not None
                or image_height is not None
                or memory_spec is not None
                or options is not None
                or coalescing
                or label
            ):
                raise TypeError(
                    "engine.compile(target) takes no compile kwargs; derive the "
                    "target instead (target.with_options(...), .with_label(...))"
                )
            return self.submit(pipeline).unwrap()
        warnings.warn(
            "engine.compile(dag, image_width=..., ...) is deprecated; build a "
            "repro.api.CompileTarget and call engine.compile(target)",
            DeprecationWarning,
            stacklevel=2,
        )
        if image_width is None or image_height is None:
            raise TypeError("engine.compile requires image_width and image_height")
        target = CompileTarget.from_kwargs(
            pipeline,
            image_width=image_width,
            image_height=image_height,
            memory_spec=memory_spec,
            options=options,
            coalescing=coalescing,
            label=label,
        )
        return self.submit(target).unwrap()

    def submit(
        self, target: CompileTarget | CompileRequest, *, client: str = ""
    ) -> CompileResult:
        """Run one target synchronously, via the cache.

        With the in-process backends (``inline``/``thread``) the job runs on
        the calling thread; with a remote backend (``process``) a job that
        the parent's memory tier cannot answer is shipped to a worker, so a
        cold pure-Python solve never blocks the serving process on the GIL —
        warm repeats are still answered in-process in microseconds.

        Either way the submit takes part in the engine-wide in-flight
        deduplication: if an identical fingerprint is already being solved
        (by a batch, an async client, or another thread's submit), this call
        waits for that solve and reports ``source="deduplicated"`` instead of
        running a second one; otherwise it publishes its own future so
        concurrent submitters of the same target join it.

        When the engine has a bounded admission queue
        (``max_pending=``/``REPRO_MAX_PENDING``), cold submits route through
        it under the ``client=`` identity: a saturated engine sheds them with
        :class:`repro.service.admission.QueueFullError` (or blocks, per the
        ``overflow`` policy) while cache-answerable submits stay inline.
        """
        target = self._as_target(target)
        fingerprint = target.fingerprint
        gated = self._executor.remote or self._admission is not None
        if gated and not self._answerable_inline(target, fingerprint):
            future, owner = self._enqueue(target, fingerprint, {}, client=client)
            outcome: CompileResult = future.result()
            self._speculate(target)
            return self._collect(target, future=None, outcome=outcome, owner=owner)
        future: Future = Future()
        # Mark the future running *before* publishing it: a joiner whose
        # asyncio wrapper gets cancelled would otherwise cancel() the pending
        # future and make our set_result() below raise InvalidStateError.
        future.set_running_or_notify_cancel()
        with self._lock:
            existing = self._inflight.get(fingerprint)
            if existing is None:
                self._inflight[fingerprint] = future
        if existing is not None:
            return self._collect(target, future=existing, outcome=None, owner=False)
        try:
            result = self._execute(target, fingerprint)
        except BaseException as exc:
            # _execute captures compile errors in the result; anything that
            # still escapes is fatal — propagate it to waiters before
            # unpublishing, so they never re-run the solve obliviously.
            future.set_exception(exc)
            self._clear_inflight(fingerprint)
            raise
        future.set_result(result)
        self._clear_inflight(fingerprint)
        self._speculate(target)
        return self._collect(target, future=None, outcome=result, owner=True)

    async def submit_async(
        self, target: CompileTarget | CompileRequest, *, client: str = ""
    ) -> CompileResult:
        """Await one target on the worker pool without blocking the event loop.

        The result is identical to :meth:`submit` for the same target; the
        job shares the engine's cache, in-flight dedup and admission queue,
        so awaiting a design point that a concurrent batch is already solving
        costs nothing extra — and a saturated engine sheds or blocks exactly
        as it would for a synchronous submitter.
        """
        target = self._as_target(target)
        future, owner = await self._enqueue_off_loop(
            lambda: self._enqueue(target, target.fingerprint, {}, client=client)
        )
        outcome: CompileResult = await asyncio.wrap_future(future)
        self._speculate(target)
        return self._collect(target, future=None, outcome=outcome, owner=owner)

    async def _enqueue_off_loop(self, enqueue: "Callable[[], object]"):
        """Run an enqueue, keeping blocking admission off the event loop.

        Under ``overflow="block"`` a full queue makes the enqueue wait on a
        condition variable for up to a whole solve; done inline in a
        coroutine that would freeze every other task on the loop, so it is
        offloaded to the default thread pool.  The shed policy never blocks
        (it raises immediately), so the cheap direct call stays.
        """
        if self._admission is not None and self._admission.policy == "block":
            return await asyncio.get_running_loop().run_in_executor(None, enqueue)
        return enqueue()

    # ----------------------------------------------------------------- batch
    def submit_batch(
        self,
        requests: Sequence[CompileTarget | CompileRequest] | Iterable[CompileTarget | CompileRequest],
        *,
        client: str = "",
    ) -> BatchResult:
        """Compile many targets concurrently; results come back in order.

        Targets with identical fingerprints — within the batch or already in
        flight from a concurrent batch — share a single execution; the
        sharers are reported with ``source="deduplicated"``.  A failing
        target yields an error-carrying :class:`CompileResult` instead of
        raising, so one infeasible design point cannot kill a sweep.  Under a
        full admission queue with the shed policy, excess items degrade the
        same way: error results with ``source="rejected"``, never a raised
        batch.
        """
        targets = [self._as_target(request) for request in requests]
        started = time.perf_counter()
        slots = self._enqueue_all(targets, client=client)
        results = []
        for target, future, owner, preset in slots:
            if preset is not None:
                results.append(self._reject(preset))
                continue
            try:
                results.append(
                    self._collect(target, future=future, outcome=None, owner=owner)
                )
            except QueueFullError as exc:
                # A dedup sharer whose owner was shed: report the shed, don't
                # kill the batch.
                results.append(self._reject(rejected_result(target, str(exc))))
        self.metrics.record_batch()
        return BatchResult(
            results=results,
            seconds=time.perf_counter() - started,
            cache_stats=self.cache.stats.snapshot(),
        )

    async def submit_batch_async(
        self,
        requests: Sequence[CompileTarget | CompileRequest] | Iterable[CompileTarget | CompileRequest],
        *,
        client: str = "",
    ) -> BatchResult:
        """Async twin of :meth:`submit_batch`: await a whole batch at once.

        Jobs fan out over the same worker pool, dedup and admission machinery
        as the synchronous path, and the returned :class:`BatchResult` is
        equal to what :meth:`submit_batch` would produce for the same
        targets.  If the engine is shut down with ``cancel_pending=True``
        while the batch is queued, the await raises
        :class:`asyncio.CancelledError`.
        """
        targets = [self._as_target(request) for request in requests]
        started = time.perf_counter()
        slots = await self._enqueue_off_loop(
            lambda: self._enqueue_all(targets, client=client)
        )
        outcomes = await asyncio.gather(
            *(
                asyncio.wrap_future(future) if future is not None else _resolved(preset)
                for _, future, _, preset in slots
            ),
            return_exceptions=True,
        )
        results = []
        for (target, future, owner, preset), outcome in zip(slots, outcomes):
            if preset is not None:
                results.append(self._reject(preset))
                continue
            if isinstance(outcome, QueueFullError):
                results.append(self._reject(rejected_result(target, str(outcome))))
                continue
            if isinstance(outcome, BaseException):
                raise outcome  # cancellation and fatal errors keep propagating
            results.append(
                self._collect(target, future=None, outcome=outcome, owner=owner)
            )
        self.metrics.record_batch()
        return BatchResult(
            results=results,
            seconds=time.perf_counter() - started,
            cache_stats=self.cache.stats.snapshot(),
        )

    # ------------------------------------------------------------- internals
    def _answerable_inline(self, target: CompileTarget, fingerprint: str) -> bool:
        """Whether a submit can be served from the parent's memory tier alone.

        Used by remote backends to keep warm repeats in-process: when every
        schedule the compile would consult is already in the memory LRU,
        running it inline is a dictionary lookup, not GIL-bound solver work.
        """
        options = target.options
        if (
            target.is_imagen
            and options.coalescing
            and options.coalescing_policy == "auto"
        ):
            # The auto fallback consults two entries: the coalesced solve and
            # the plain one it compares against.
            plain = target.with_options(coalescing=False)
            return fingerprint in self.cache and plain.fingerprint in self.cache
        return fingerprint in self.cache

    def _enqueue(
        self,
        target: CompileTarget,
        fingerprint: str,
        local: dict[str, Future],
        *,
        client: str = "",
        gate: bool = True,
    ) -> tuple[Future, bool]:
        """Queue one target on the executor backend, deduplicating against
        ``local`` and the engine-wide in-flight table.  Returns
        ``(future, owner)``.

        The published future is a placeholder the backend's future relays
        into, so the actual ``executor.submit`` happens *outside* the engine
        lock — the inline backend runs whole compiles in ``submit``, and the
        process backend wire-encodes the target there; neither may stall
        every other engine operation.  (Marked running before publication for
        the same cancel-proofing as inline submits.)

        With an admission queue configured, the dispatch is routed through it
        under the ``client`` identity instead of hitting the executor
        directly; a shed job settles the published placeholder with the
        :class:`QueueFullError` (so dedup joiners observe the same rejection)
        and re-raises it to the submitter.  ``gate=False`` (speculative
        pre-warm jobs) skips the queue: engine-initiated work must never
        consume a client's ``max_pending`` slots, inflate ``rejected_total``,
        or — under the block policy — stall the request that triggered it.
        """
        future = local.get(fingerprint)
        if future is not None:
            return future, False
        with self._lock:
            future = self._inflight.get(fingerprint)
            owner = future is None
            if owner:
                future = Future()
                future.set_running_or_notify_cancel()
                self._inflight[fingerprint] = future
        if owner:
            # Registered outside the lock: if the job already finished, the
            # callbacks run inline and must be able to take the lock.
            if self._executor.remote:
                future.add_done_callback(self._absorb_remote_result)
            future.add_done_callback(lambda _f, fp=fingerprint: self._clear_inflight(fp))
            if self._admission is None or not gate:
                try:
                    inner = self._executor.submit(self._execute, target, fingerprint)
                except BaseException as exc:
                    # The placeholder is already published: settle it so
                    # joiners unblock with the same failure and the
                    # done-callbacks clear the in-flight table — a fingerprint
                    # must never dedup against a future that can no longer
                    # resolve.
                    future.set_exception(exc)
                    raise
                inner.add_done_callback(
                    lambda done, out=future: relay_future(done, out)
                )
            else:
                dispatch = self._dispatcher(target, fingerprint, future)
                try:
                    self._admission.submit(
                        dispatch,
                        client=client,
                        # A job dropped by shutdown(cancel_pending=True) must
                        # settle its placeholder, or dedup joiners hang on a
                        # future nothing will ever resolve.
                        on_cancel=lambda: future.set_exception(CancelledError()),
                    )
                except BaseException as exc:  # QueueFullError, or a broken queue
                    future.set_exception(exc)
                    if isinstance(exc, QueueFullError):
                        emit_event(
                            "queue.shed",
                            identity=client,
                            fingerprint=fingerprint,
                            retry_after=round(exc.retry_after, 3),
                        )
                    raise
        local[fingerprint] = future
        return future, owner

    def _dispatcher(
        self, target: CompileTarget, fingerprint: str, future: Future
    ) -> "Callable[[], Future | None]":
        """The admission queue's deferred executor submission for one job.

        Runs when a dispatch slot frees up — possibly on another thread, long
        after the submitter admitted the job — so it must settle the
        published placeholder itself on failure (returning ``None`` tells the
        queue the slot is already free again).
        """

        def dispatch() -> Future | None:
            try:
                inner = self._executor.submit(self._execute, target, fingerprint)
            except BaseException as exc:
                future.set_exception(exc)
                return None
            inner.add_done_callback(lambda done, out=future: relay_future(done, out))
            return inner

        return dispatch

    def _reject(self, result: CompileResult) -> CompileResult:
        """Record a shed job in the request metrics and return its result."""
        self.metrics.record(self._trace(result))
        return result

    def _absorb_remote_result(self, future: Future) -> None:
        """Adopt a worker process's solve into the in-memory cache tier.

        Only single-solve results are adopted: the auto-coalescing fallback
        records *two* fingerprints but the wire result carries only the
        winning (possibly relabelled ``imagen+lc``) schedule, which must not
        be filed under either raw solve's key.  The disk tier — which the
        worker already wrote both solves to — covers those.
        """
        if future.cancelled() or future.exception() is not None:
            return
        result: CompileResult = future.result()
        if result.accelerator is None:
            return
        fingerprints = result.accelerator.metadata.get("schedule_fingerprints", ())
        if len(fingerprints) == 1:
            self.cache.absorb(fingerprints[0], result.accelerator.schedule)

    # ------------------------------------------------------------ speculation
    def _speculate(self, target: CompileTarget) -> None:
        """Background-submit the likely next requests after ``target``.

        Fire-and-forget and strictly best-effort: speculative jobs go through
        the normal dedup table (so a real request racing one simply joins
        it), never touch the request metrics — they are the engine's own
        work, not a client's — and never let a speculation failure (broken
        pool, unserializable variant) surface on the triggering request.

        "Background" is as asynchronous as the active backend: the thread
        and process pools truly run speculation off the caller's path, while
        the ``inline`` backend — having no concurrency by design — compiles
        the variants synchronously before returning.
        """
        if not self.prewarm or not target.is_imagen:
            return
        variants = [
            target.with_resolution(width, height)
            for width, height in self.prewarm_resolutions
            if (width, height) != target.resolution
        ]
        variants.append(
            target.with_options(coalescing=not target.options.coalescing)
        )
        for variant in variants:
            try:
                # gate=False: speculation is the engine's own work — it
                # bypasses the admission queue so it never occupies a
                # client's max_pending slot, blocks the triggering request,
                # or pollutes the rejected_total counter.
                future, owner = self._enqueue(
                    variant, variant.fingerprint, {}, gate=False
                )
            except Exception:
                continue  # the client's own result must never pay for this
            if owner:
                with self._lock:
                    self._prewarm_pending.add(future)
                future.add_done_callback(self._discard_prewarm)

    def _discard_prewarm(self, future: Future) -> None:
        with self._lock:
            self._prewarm_pending.discard(future)

    def wait_prewarm(self, timeout: float | None = None) -> bool:
        """Block until in-flight speculative jobs settle (for tests/shutdown).

        Returns ``False`` when jobs are still pending after ``timeout``
        seconds.  Speculative failures are deliberately swallowed — a
        speculation that cannot compile just means no warm cache entry.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                pending = next(iter(self._prewarm_pending), None)
            if pending is None:
                return True
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return False
            try:
                pending.result(timeout=remaining)
            except (Exception, asyncio.CancelledError):
                pass  # captured per-job; speculation is best-effort

    def _enqueue_all(
        self, targets: list[CompileTarget], *, client: str = ""
    ) -> list[tuple[CompileTarget, Future | None, bool, CompileResult | None]]:
        # Batch-local duplicates always share one execution (deterministic,
        # immune to the owner finishing before the twin is enqueued).  A slot
        # the admission queue sheds carries a preset rejected result instead
        # of a future, so one saturated moment never aborts the whole batch.
        local: dict[str, Future] = {}
        slots: list[tuple[CompileTarget, Future | None, bool, CompileResult | None]] = []
        for target in targets:
            try:
                future, owner = self._enqueue(
                    target, target.fingerprint, local, client=client
                )
            except QueueFullError as exc:
                slots.append((target, None, True, rejected_result(target, str(exc))))
                continue
            slots.append((target, future, owner, None))
        return slots

    def _collect(
        self,
        target: CompileTarget,
        *,
        future: Future | None,
        outcome: CompileResult | None,
        owner: bool,
    ) -> CompileResult:
        """Finalize one job: relabel dedup sharers, record metrics."""
        if outcome is None:
            outcome = future.result()
        if owner:
            result = outcome
            # Stage histograms aggregate each executed job exactly once:
            # dedup sharers keep the owner's spans on their result (useful
            # for per-request tracing) but must not double-count them.
            if result.spans:
                self.metrics.observe_spans(result.spans)
        else:
            result = replace(
                outcome, target=target, source=SOURCE_DEDUPLICATED, seconds=0.0
            )
        self.metrics.record(self._trace(result))
        return result

    def _clear_inflight(self, fingerprint: str) -> None:
        with self._lock:
            self._inflight.pop(fingerprint, None)

    def _execute(self, target: CompileTarget, fingerprint: str) -> CompileResult:
        # Kept on the engine (rather than delegating to jobs.execute_target)
        # so the module-level compile_pipeline stays the single patch point
        # for instrumenting in-process solves.
        trace = collect_spans(enabled=self.tracing)
        started = time.perf_counter()
        try:
            with trace:
                accelerator = compile_pipeline(target, cache=self.cache)
        except Exception as exc:  # one bad design point must not kill a batch
            return CompileResult(
                target=target,
                fingerprint=fingerprint,
                error=f"{type(exc).__name__}: {exc}",
                seconds=time.perf_counter() - started,
                spans=trace.spans,
            )
        return CompileResult(
            target=target,
            fingerprint=fingerprint,
            accelerator=accelerator,
            source=derive_source(accelerator),
            seconds=time.perf_counter() - started,
            spans=trace.spans,
        )

    def _trace(self, result: CompileResult) -> RequestTrace:
        return RequestTrace(
            label=result.target.display_label,
            fingerprint=result.fingerprint,
            source=result.source,
            seconds=result.seconds,
            ok=result.ok,
        )

    # ------------------------------------------------------------ inspection
    @property
    def hit_rate(self) -> float:
        return self.cache.stats.hit_rate

    def executor_stats(self) -> dict:
        """Live executor-backend snapshot (worker counts, scaling counters).

        Fixed backends report their configured fleet; the autoscaling
        backends report the current fleet plus ``scale_ups``/``scale_downs``
        and recent scaling events.  Republished on ``GET /v1/metrics``.
        """
        return self._executor.stats()

    def admission_stats(self) -> dict:
        """Admission-queue snapshot (``queue_depth``, ``rejected_total``, ...).

        Engines without a bounded queue report the same schema with zero
        counters, so metrics consumers never branch on configuration.
        """
        if self._admission is None:
            return {
                "max_pending": None,
                "overflow": self.overflow,
                "queue_depth": 0,
                "inflight": 0,
                "admitted_total": 0,
                "rejected_total": 0,
                "blocked_total": 0,
                "queued_clients": 0,
            }
        return self._admission.stats()

    def describe(self) -> str:
        stats = self.cache.stats
        admission = (
            f", max_pending={self.max_pending}({self.overflow})"
            if self.max_pending is not None
            else ""
        )
        return (
            f"CompileEngine(executor={self.executor_name}, workers={self.workers}"
            f"{admission}, cache={len(self.cache)}/{self.cache.max_entries} entries, "
            f"hits={stats.hits}, misses={stats.misses}, hit_rate={stats.hit_rate:.1%})"
        )
