"""Dense two-phase primal simplex solver for LP relaxations.

This is the LP engine underneath the pure-Python branch-and-bound backend.
It solves::

    min  c^T x
    s.t. A_ub x <= b_ub
         A_eq x == b_eq
         lb <= x <= ub   (any bound may be infinite)

The implementation converts bounded variables into shifted non-negative
variables (splitting free variables), adds slack variables, and runs a
two-phase simplex with Bland's anti-cycling rule.  It favours clarity over
speed: the scheduling ILPs in this project have tens to a few hundred
variables, well within reach of a dense tableau.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError

_EPS = 1e-9


@dataclass
class LPResult:
    """Result of an LP solve."""

    status: str  # 'optimal', 'infeasible', 'unbounded'
    x: np.ndarray | None = None
    objective: float | None = None
    iterations: int = 0


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    a_eq: np.ndarray | None,
    b_eq: np.ndarray | None,
    lb: np.ndarray,
    ub: np.ndarray,
    max_iterations: int = 20000,
) -> LPResult:
    """Solve the LP described in the module docstring."""
    c = np.asarray(c, dtype=float)
    n = c.size
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)
    a_ub = np.zeros((0, n)) if a_ub is None else np.asarray(a_ub, dtype=float).reshape(-1, n)
    b_ub = np.zeros(0) if b_ub is None else np.asarray(b_ub, dtype=float).ravel()
    a_eq = np.zeros((0, n)) if a_eq is None else np.asarray(a_eq, dtype=float).reshape(-1, n)
    b_eq = np.zeros(0) if b_eq is None else np.asarray(b_eq, dtype=float).ravel()
    if a_ub.shape[0] != b_ub.size or a_eq.shape[0] != b_eq.size:
        raise SolverError("Constraint matrix / RHS size mismatch")

    # --- transform variables: x = x_pos - x_neg + shift so every column >= 0.
    # For each original variable j we create:
    #   finite lb: y_j >= 0 with x_j = y_j + lb_j     (ub becomes y_j <= ub_j - lb_j)
    #   lb = -inf, finite ub: y_j >= 0 with x_j = ub_j - y_j
    #   free: x_j = y_j+ - y_j-
    col_map: list[tuple[str, int, float]] = []  # per new column: (kind, orig index, sign/shift aux)
    shifts = np.zeros(n)
    new_cols: list[np.ndarray] = []
    new_c: list[float] = []
    upper_rows: list[tuple[int, float]] = []  # (new col idx, upper bound) extra rows y_j <= u

    a_all = np.vstack([a_ub, a_eq]) if (a_ub.size or a_eq.size) else np.zeros((0, n))

    for j in range(n):
        column = a_all[:, j] if a_all.size else np.zeros(0)
        low, high = lb[j], ub[j]
        if np.isfinite(low):
            shifts[j] = low
            new_cols.append(column.copy())
            new_c.append(c[j])
            col_map.append(("shifted", j, 1.0))
            if np.isfinite(high):
                upper_rows.append((len(new_cols) - 1, high - low))
        elif np.isfinite(high):
            # x = high - y, y >= 0
            shifts[j] = high
            new_cols.append(-column.copy())
            new_c.append(-c[j])
            col_map.append(("mirrored", j, -1.0))
        else:
            new_cols.append(column.copy())
            new_c.append(c[j])
            col_map.append(("free_pos", j, 1.0))
            new_cols.append(-column.copy())
            new_c.append(-c[j])
            col_map.append(("free_neg", j, -1.0))

    num_new = len(new_cols)
    a_new = np.column_stack(new_cols) if num_new else np.zeros((a_all.shape[0], 0))
    rhs_shift = a_all @ shifts if a_all.size else np.zeros(0)

    n_ub = a_ub.shape[0]
    rows_ub = a_new[:n_ub, :] if a_new.size else np.zeros((n_ub, num_new))
    rows_eq = a_new[n_ub:, :] if a_new.size else np.zeros((a_eq.shape[0], num_new))
    b_ub_new = b_ub - rhs_shift[:n_ub]
    b_eq_new = b_eq - rhs_shift[n_ub:]

    # Add the variable upper-bound rows as extra <= rows.
    if upper_rows:
        extra = np.zeros((len(upper_rows), num_new))
        extra_b = np.zeros(len(upper_rows))
        for row_idx, (col_idx, bound) in enumerate(upper_rows):
            extra[row_idx, col_idx] = 1.0
            extra_b[row_idx] = bound
        rows_ub = np.vstack([rows_ub, extra]) if rows_ub.size else extra
        b_ub_new = np.concatenate([b_ub_new, extra_b])

    result = _simplex_standard(
        np.asarray(new_c, dtype=float), rows_ub, b_ub_new, rows_eq, b_eq_new, max_iterations
    )
    if result.status != "optimal":
        return result

    y = result.x
    x = np.zeros(n)
    for col_idx, (kind, j, sign) in enumerate(col_map):
        if kind == "shifted":
            x[j] += y[col_idx]
        elif kind == "mirrored":
            x[j] -= y[col_idx]
        elif kind == "free_pos":
            x[j] += y[col_idx]
        else:  # free_neg
            x[j] -= y[col_idx]
    x += shifts
    return LPResult(status="optimal", x=x, objective=float(c @ x), iterations=result.iterations)


def _simplex_standard(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    max_iterations: int,
) -> LPResult:
    """Two-phase simplex for ``min c^T y, A_ub y <= b_ub, A_eq y = b_eq, y >= 0``."""
    num_vars = c.size
    num_ub = a_ub.shape[0]
    num_eq = a_eq.shape[0]
    num_rows = num_ub + num_eq

    if num_rows == 0:
        # Unconstrained over y >= 0: minimised at 0 for non-negative costs.
        if np.any(c < -_EPS):
            return LPResult(status="unbounded")
        return LPResult(status="optimal", x=np.zeros(num_vars), objective=0.0)

    # Build rows as equalities with slack variables for the <= rows.
    a = np.zeros((num_rows, num_vars + num_ub))
    b = np.concatenate([b_ub, b_eq]).astype(float)
    a[:num_ub, :num_vars] = a_ub
    a[num_ub:, :num_vars] = a_eq
    for i in range(num_ub):
        a[i, num_vars + i] = 1.0

    # Normalise negative RHS rows.
    for i in range(num_rows):
        if b[i] < 0:
            a[i, :] *= -1.0
            b[i] *= -1.0

    total_vars = num_vars + num_ub
    # Phase 1: add artificial variables for every row; drive their sum to 0.
    art = np.eye(num_rows)
    tableau_a = np.hstack([a, art])
    basis = list(range(total_vars, total_vars + num_rows))
    cost1 = np.zeros(total_vars + num_rows)
    cost1[total_vars:] = 1.0

    status, basis, tableau_a, b, iters1 = _primal_iterate(tableau_a, b, cost1, basis, max_iterations)
    if status == "unbounded":
        return LPResult(status="infeasible")
    phase1_obj = float(cost1[basis] @ b)
    if phase1_obj > 1e-7:
        return LPResult(status="infeasible", iterations=iters1)

    # Drive artificial variables out of the basis when possible, then drop them.
    for row, var in enumerate(basis):
        if var >= total_vars:
            pivot_col = next(
                (j for j in range(total_vars) if abs(tableau_a[row, j]) > _EPS), None
            )
            if pivot_col is not None:
                _pivot(tableau_a, b, row, pivot_col)
                basis[row] = pivot_col
    keep = [i for i, var in enumerate(basis) if var < total_vars]
    tableau_a = tableau_a[keep][:, :total_vars]
    b = b[keep]
    basis = [basis[i] for i in keep]

    cost2 = np.zeros(total_vars)
    cost2[:num_vars] = c
    status, basis, tableau_a, b, iters2 = _primal_iterate(tableau_a, b, cost2, basis, max_iterations)
    if status == "unbounded":
        return LPResult(status="unbounded", iterations=iters1 + iters2)

    y = np.zeros(total_vars)
    for row, var in enumerate(basis):
        y[var] = b[row]
    return LPResult(
        status="optimal",
        x=y[:num_vars],
        objective=float(c @ y[:num_vars]),
        iterations=iters1 + iters2,
    )


def _primal_iterate(a: np.ndarray, b: np.ndarray, cost: np.ndarray, basis: list[int], max_iterations: int):
    """Primal simplex iterations with Bland's rule.  Mutates ``a``/``b`` in place."""
    iterations = 0
    num_rows, num_cols = a.shape
    while iterations < max_iterations:
        iterations += 1
        duals_basis = cost[basis]
        reduced = cost - duals_basis @ a
        # Bland's rule: smallest index with negative reduced cost.
        entering = next((j for j in range(num_cols) if reduced[j] < -_EPS), None)
        if entering is None:
            return "optimal", basis, a, b, iterations
        column = a[:, entering]
        ratios = [
            (b[i] / column[i], i) for i in range(num_rows) if column[i] > _EPS
        ]
        if not ratios:
            return "unbounded", basis, a, b, iterations
        min_ratio = min(r for r, _ in ratios)
        leaving_row = min(i for r, i in ratios if abs(r - min_ratio) <= _EPS * (1 + abs(min_ratio)))
        _pivot(a, b, leaving_row, entering)
        basis[leaving_row] = entering
    raise SolverError("Simplex iteration limit exceeded")


def _pivot(a: np.ndarray, b: np.ndarray, row: int, col: int) -> None:
    pivot_value = a[row, col]
    a[row, :] /= pivot_value
    b[row] /= pivot_value
    for i in range(a.shape[0]):
        if i != row and abs(a[i, col]) > _EPS:
            factor = a[i, col]
            a[i, :] -= factor * a[row, :]
            b[i] -= factor * b[row]
