"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package (e.g.
offline machines where ``pip install -e .`` cannot build an editable wheel and
``python setup.py develop`` is the fallback).
"""

from setuptools import setup

setup()
