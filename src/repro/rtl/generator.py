"""Top-level Verilog generation for a scheduled pipeline.

:func:`generate_verilog` emits one self-contained Verilog source containing:

* the behavioral SRAM macro model,
* one line-buffer module per producer,
* one window (shift-register array) module per producer->consumer edge,
* one compute module per stage,
* a top-level module whose controller starts each stage at the start cycle
  chosen by the optimizer and steps every stage in raster order.

The output is accompanied by a :class:`VerilogDesign` summary (module names,
line counts) used by reports and tests; structural consistency is checked by
:mod:`repro.rtl.lint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import PipelineSchedule
from repro.rtl import modules
from repro.rtl.expressions import sanitize
from repro.trace import span_attr, trace_span


@dataclass
class VerilogDesign:
    """Summary of a generated Verilog design."""

    top_module: str
    source: str
    module_names: list[str] = field(default_factory=list)

    @property
    def line_count(self) -> int:
        return self.source.count("\n") + 1


def generate_verilog(schedule: PipelineSchedule) -> str:
    """Emit the full Verilog source for ``schedule``."""
    return generate_design(schedule).source


def generate_design(schedule: PipelineSchedule) -> VerilogDesign:
    """Emit Verilog and return it with its module inventory."""
    dag = schedule.dag
    pixel_bits = schedule.memory_spec.pixel_bits
    with trace_span("rtl"):
        chunks: list[str] = [modules.emit_header(schedule)]
        module_names: list[str] = []

        chunks.append(modules.emit_sram_model(schedule.memory_spec.ports))
        module_names.append("imagen_sram")

        for producer, config in schedule.line_buffers.items():
            readers = dag.out_edges(producer)
            chunks.append(modules.emit_line_buffer(config, readers))
            module_names.append(modules.line_buffer_module_name(producer))

        for edge in dag.edges():
            chunks.append(modules.emit_window(edge, pixel_bits))
            module_names.append(modules.window_module_name(edge.producer, edge.consumer))

        for stage in dag.stages():
            if stage.is_input:
                continue
            chunks.append(modules.emit_stage(stage, dag.in_edges(stage.name), pixel_bits))
            module_names.append(modules.stage_module_name(stage.name))

        top_name = f"accelerator_{sanitize(dag.name)}"
        chunks.append(_emit_top(schedule, top_name, pixel_bits))
        module_names.append(top_name)
        span_attr(modules=len(module_names))

    return VerilogDesign(top_module=top_name, source="\n".join(chunks), module_names=module_names)


def _emit_top(schedule: PipelineSchedule, top_name: str, pixel_bits: int) -> str:
    dag = schedule.dag
    width = schedule.image_width
    total_cycles = schedule.end_to_end_latency_cycles

    lines = [
        f"module {top_name} (",
        "    input  wire                   clk,",
        "    input  wire                   rst,",
        "    input  wire                   start,",
        f"    input  wire [{pixel_bits-1}:0] pixel_in,",
        f"    output wire [{pixel_bits-1}:0] pixel_out,",
        "    output wire                   pixel_valid,",
        "    output reg                    frame_done",
        ");",
        f"    // Global cycle counter; stage K starts when cycle == S_K (the ILP schedule).",
        "    reg [31:0] cycle;",
        "    reg running;",
        "    always @(posedge clk) begin",
        "        if (rst) begin",
        "            cycle <= 32'd0;",
        "            running <= 1'b0;",
        "            frame_done <= 1'b0;",
        "        end else if (start && !running) begin",
        "            cycle <= 32'd0;",
        "            running <= 1'b1;",
        "            frame_done <= 1'b0;",
        "        end else if (running) begin",
        "            cycle <= cycle + 32'd1;",
        f"            if (cycle >= 32'd{total_cycles}) begin",
        "                running <= 1'b0;",
        "                frame_done <= 1'b1;",
        "            end",
        "        end",
        "    end",
        "",
    ]

    # Per-stage activation signals and raster counters.
    for stage in dag.stages():
        name = sanitize(stage.name)
        start_cycle = schedule.start(stage.name)
        lines.extend(
            [
                f"    wire active_{name} = running && (cycle >= 32'd{start_cycle});",
                f"    reg [31:0] pos_{name};",
                f"    always @(posedge clk) begin",
                f"        if (rst || !running) pos_{name} <= 32'd0;",
                f"        else if (active_{name}) pos_{name} <= pos_{name} + 32'd1;",
                "    end",
                f"    wire [31:0] col_{name} = pos_{name} % 32'd{width};",
                f"    wire [31:0] line_{name} = pos_{name} / 32'd{width};",
                f"    wire [{pixel_bits-1}:0] pixel_{name};",
                f"    wire valid_{name};",
                "",
            ]
        )

    # Input stages forward the external pixel stream.
    for stage in dag.input_stages():
        name = sanitize(stage.name)
        lines.append(f"    assign pixel_{name} = pixel_in;")
        lines.append(f"    assign valid_{name} = active_{name};")
        lines.append("")

    # Line buffers and window register arrays.
    for producer, config in schedule.line_buffers.items():
        producer_id = sanitize(producer)
        buffer_module = modules.line_buffer_module_name(producer)
        buffer_lines = max(1, config.lines)
        connections = [
            "        .clk(clk),",
            "        .rst(rst),",
            f"        .wr_en(active_{producer_id}),",
            f"        .wr_col(col_{producer_id}[{modules._addr_bits(width)-1}:0]),",
            f"        .wr_line(line_{producer_id}[{modules._addr_bits(buffer_lines)-1}:0] % {buffer_lines}),",
            f"        .wr_data(pixel_{producer_id}),",
        ]
        for edge in dag.out_edges(producer):
            consumer_id = sanitize(edge.consumer)
            height = edge.window.height
            lines.append(
                f"    wire [{height * pixel_bits - 1}:0] column_{producer_id}_{consumer_id};"
            )
            connections.extend(
                [
                    f"        .rd_en_{consumer_id}(active_{consumer_id}),",
                    f"        .rd_col_{consumer_id}(col_{consumer_id}[{modules._addr_bits(width)-1}:0]),",
                    f"        .rd_line_{consumer_id}(line_{consumer_id}[{modules._addr_bits(buffer_lines)-1}:0] % {buffer_lines}),",
                    f"        .rd_column_{consumer_id}(column_{producer_id}_{consumer_id}),",
                ]
            )
        connections[-1] = connections[-1].rstrip(",")
        lines.append(f"    {buffer_module} u_lb_{producer_id} (")
        lines.extend(connections)
        lines.append("    );")
        lines.append("")

    for edge in dag.edges():
        producer_id = sanitize(edge.producer)
        consumer_id = sanitize(edge.consumer)
        window_module = modules.window_module_name(edge.producer, edge.consumer)
        size = edge.window.height * edge.window.width * pixel_bits
        lines.extend(
            [
                f"    wire [{size - 1}:0] window_{producer_id}_{consumer_id};",
                f"    {window_module} u_win_{producer_id}_{consumer_id} (",
                "        .clk(clk),",
                f"        .shift(active_{consumer_id}),",
                f"        .column_in(column_{producer_id}_{consumer_id}),",
                f"        .window_out(window_{producer_id}_{consumer_id})",
                "    );",
                "",
            ]
        )

    for stage in dag.stages():
        if stage.is_input:
            continue
        name = sanitize(stage.name)
        stage_module = modules.stage_module_name(stage.name)
        connections = ["        .clk(clk),", f"        .enable(active_{name}),"]
        for edge in dag.in_edges(stage.name):
            producer_id = sanitize(edge.producer)
            connections.append(
                f"        .window_{producer_id}(window_{producer_id}_{name}),"
            )
        connections.append(f"        .pixel_out(pixel_{name}),")
        connections.append(f"        .valid_out(valid_{name})")
        lines.append(f"    {stage_module} u_stage_{name} (")
        lines.extend(connections)
        lines.append("    );")
        lines.append("")

    output_stage = sanitize(dag.output_stages()[0].name)
    lines.extend(
        [
            f"    assign pixel_out = pixel_{output_stage};",
            f"    assign pixel_valid = valid_{output_stage};",
            "endmodule",
            "",
        ]
    )
    return "\n".join(lines)
