#!/usr/bin/env python3
"""Quickstart: compile the paper's 3-stage example pipeline into an accelerator.

The pipeline is the one shown in Sec. 4 of the paper: K1 reads a 3x3 window of
the input K0, and the output K2 reads a 2x2 window of K0 *and* a 3x3 window of
K1, making K0 a multi-consumer stage.  The script parses the textual DSL,
compiles it for dual-port SRAM at 480x320, verifies the schedule with the
cycle-level simulator, prints the resulting line-buffer configuration and
area/power estimates, and writes the generated Verilog next to this script.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import CompileTarget, compile_pipeline, parse_pipeline

PAPER_EXAMPLE = """
input K0;
// K1 reads a 3x3 window of K0.
K1 = im(x,y) (K0(x-1,y-1) + K0(x,y-1) + K0(x+1,y-1) +
              K0(x-1,y)   + K0(x,y)   + K0(x+1,y)   +
              K0(x-1,y+1) + K0(x,y+1) + K0(x+1,y+1)) / 9 end
// K2 reads a 2x2 window of K0 and a 3x3 window of K1.
output K2 = im(x,y) (K0(x,y) + K0(x+1,y) + K0(x,y+1) + K0(x+1,y+1)) / 4 +
                    (K1(x-1,y-1) + K1(x+1,y+1) + K1(x,y)) / 3 end
"""


def main() -> None:
    dag = parse_pipeline(PAPER_EXAMPLE, name="paper_example")
    print(dag.summary())

    # A CompileTarget is the unit of work everywhere in the library: the same
    # object compiles directly, submits to a CompileEngine, or seeds a sweep.
    target = CompileTarget(dag, image_width=480, image_height=320)
    accelerator = compile_pipeline(target)
    print()
    print(accelerator.describe())
    print(f"\ncompile time: {accelerator.compile_seconds * 1000:.1f} ms")

    verification = accelerator.verify()
    print(
        f"cycle-level verification: {'OK' if verification.ok else verification.violations}"
        f" (throughput {verification.steady_state_throughput:.2f} px/cycle)"
    )

    area = accelerator.area_report()
    power = accelerator.power_report()
    print(f"SRAM: {area.sram_kbytes:.1f} KB in {area.sram_blocks} blocks")
    print(f"memory area:  {area.memory_mm2:.3f} mm^2 ({area.memory_fraction:.0%} of total)")
    print(f"memory power: {power.memory_mw:.2f} mW   PE power: {power.pe_mw:.2f} mW")

    verilog = accelerator.generate_verilog()
    output = Path(__file__).with_name("paper_example.v")
    output.write_text(verilog)
    print(f"\nwrote {len(verilog.splitlines())} lines of Verilog to {output}")


if __name__ == "__main__":
    main()
