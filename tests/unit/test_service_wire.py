"""Unit tests for the HTTP wire codec: lossless target round-trips."""

import json

import pytest

from repro.algorithms import ALGORITHM_NAMES, build_algorithm
from repro.api import CompileTarget
from repro.core.scheduler import SchedulerOptions
from repro.dsl import ast
from repro.memory.spec import asic_fifo, asic_single_port, spartan7_bram
from repro.service.wire import (
    WIRE_FORMAT_VERSION,
    WireFormatError,
    batch_result_to_wire,
    dag_from_wire,
    dag_to_wire,
    expr_from_wire,
    expr_to_wire,
    result_to_wire,
    target_from_wire,
    target_to_wire,
)

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


def _round_trip(target: CompileTarget) -> CompileTarget:
    """Encode -> JSON text -> decode, exactly as the HTTP layer does."""
    return target_from_wire(json.loads(json.dumps(target_to_wire(target))))


class TestTargetRoundTrip:
    """Property over the whole algorithm catalog: wire encoding is lossless."""

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_catalog_fingerprints_survive(self, name):
        target = CompileTarget(build_algorithm(name), image_width=W, image_height=H)
        restored = _round_trip(target)
        assert restored.fingerprint == target.fingerprint
        assert restored.dag.canonical_form() == target.dag.canonical_form()
        assert restored.resolution == target.resolution
        assert restored.memory_spec == target.memory_spec
        assert restored.options == target.options
        assert restored.generator == target.generator

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_catalog_structure_survives(self, name):
        target = CompileTarget(build_algorithm(name), image_width=W, image_height=H)
        restored = _round_trip(target)
        assert restored.dag.stage_names() == target.dag.stage_names()
        for stage in target.dag.stages():
            twin = restored.dag.stage(stage.name)
            assert (twin.is_input, twin.is_output) == (stage.is_input, stage.is_output)
            assert str(twin.expression) == str(stage.expression)
        assert [
            (e.producer, e.consumer, e.window) for e in restored.dag.edges()
        ] == [(e.producer, e.consumer, e.window) for e in target.dag.edges()]

    @pytest.mark.parametrize(
        "spec", [asic_single_port(), asic_fifo(), spartan7_bram(ports=1)]
    )
    def test_memory_spec_variants(self, spec):
        target = CompileTarget(
            build_chain(3), image_width=W, image_height=H, memory_spec=spec
        )
        restored = _round_trip(target)
        assert restored.memory_spec == spec
        assert restored.fingerprint == target.fingerprint

    def test_options_label_metadata_generator_survive(self):
        options = SchedulerOptions(
            ports=1,
            coalescing=True,
            coalescing_policy="all",
            per_stage_coalescing={"K1": True, "K2": False},
            backend="python",
        )
        target = CompileTarget(
            build_paper_example(),
            image_width=W,
            image_height=H,
            options=options,
            generator="soda",
            label="wire-test",
            metadata={"sweep_id": 7},
        )
        restored = _round_trip(target)
        assert restored.options == target.options
        assert restored.generator == "soda"
        assert restored.label == "wire-test"
        assert restored.metadata == {"sweep_id": 7}
        assert restored.fingerprint == target.fingerprint

    def test_to_wire_from_wire_methods_on_target(self):
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        assert CompileTarget.from_wire(target.to_wire()).fingerprint == target.fingerprint

    def test_distinct_targets_stay_distinct(self):
        base = CompileTarget(build_paper_example(), image_width=W, image_height=H)
        variants = [
            base,
            base.with_options(coalescing=True),
            base.with_resolution(W * 2, H * 2),
            base.with_generator("darkroom"),
        ]
        fingerprints = {_round_trip(t).fingerprint for t in variants}
        assert len(fingerprints) == len(variants)


class TestExpressionCodec:
    def test_every_node_kind_round_trips(self):
        expr = ast.Call(
            "select",
            (
                ast.BinOp("<", ast.StageRef("K0", -1, 2), ast.Const(4.0)),
                ast.UnaryOp("-", ast.StageRef("K1")),
                ast.Call("clamp", (ast.StageRef("K0"), ast.Const(0.0), ast.Const(1.5))),
            ),
        )
        restored = expr_from_wire(json.loads(json.dumps(expr_to_wire(expr))))
        assert restored == expr
        assert str(restored) == str(expr)

    def test_none_passes_through(self):
        assert expr_to_wire(None) is None
        assert expr_from_wire(None) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireFormatError, match="kind"):
            expr_from_wire({"kind": "lambda", "body": 1})

    def test_bad_operator_rejected(self):
        with pytest.raises(WireFormatError, match="binop"):
            expr_from_wire(
                {
                    "kind": "binop",
                    "op": "**",
                    "left": {"kind": "const", "value": 1},
                    "right": {"kind": "const", "value": 2},
                }
            )


class TestMalformedPayloads:
    def _wire(self):
        return target_to_wire(
            CompileTarget(build_chain(3), image_width=W, image_height=H)
        )

    def test_wrong_version_rejected(self):
        wire = self._wire()
        wire["version"] = WIRE_FORMAT_VERSION + 1
        with pytest.raises(WireFormatError, match="version"):
            target_from_wire(wire)

    @pytest.mark.parametrize("field", ["dag", "resolution", "memory_spec", "options"])
    def test_missing_required_field_rejected(self, field):
        wire = self._wire()
        del wire[field]
        with pytest.raises(WireFormatError, match=field):
            target_from_wire(wire)

    def test_non_object_rejected(self):
        with pytest.raises(WireFormatError):
            target_from_wire([1, 2, 3])

    def test_bad_resolution_rejected(self):
        wire = self._wire()
        wire["resolution"] = [W]
        with pytest.raises(WireFormatError, match="resolution"):
            target_from_wire(wire)

    def test_unknown_option_field_rejected(self):
        wire = self._wire()
        wire["options"]["turbo"] = True
        with pytest.raises(WireFormatError, match="turbo"):
            target_from_wire(wire)

    def test_unknown_memory_spec_field_rejected(self):
        wire = self._wire()
        wire["memory_spec"]["latency"] = 3
        with pytest.raises(WireFormatError, match="latency"):
            target_from_wire(wire)

    def test_cyclic_dag_rejected(self):
        wire = dag_to_wire(build_chain(3))
        wire["edges"].append(
            {"producer": "K2", "consumer": "K0", "window": [0, 0, 0, 0]}
        )
        with pytest.raises(WireFormatError):
            dag_from_wire(wire)

    def test_degenerate_window_rejected(self):
        wire = dag_to_wire(build_chain(3))
        wire["edges"][0]["window"] = [1, 0, 0, 0]
        with pytest.raises(WireFormatError):
            dag_from_wire(wire)


class TestResultCodec:
    def test_success_carries_report_summary(self):
        from repro.estimate.report import accelerator_report
        from repro.service import CompileEngine

        target = CompileTarget(
            build_paper_example(), image_width=W, image_height=H, label="paper"
        )
        with CompileEngine(workers=1) as engine:
            result = engine.submit(target)
        wire = json.loads(json.dumps(result_to_wire(result)))
        assert wire["ok"] is True
        assert wire["fingerprint"] == target.fingerprint
        assert wire["label"] == "paper"
        assert wire["source"] == "solver"
        assert wire["seconds"] > 0
        row = accelerator_report(result.accelerator).row()
        assert wire["report"] == json.loads(json.dumps(row))
        assert "error" not in wire

    def test_failure_carries_error_not_report(self):
        from repro.service import CompileEngine

        with CompileEngine(workers=1) as engine:
            result = engine.submit(
                CompileTarget(build_chain(3), image_width=1, image_height=H)
            )
        wire = result_to_wire(result)
        assert wire["ok"] is False
        assert "SchedulingError" in wire["error"]
        assert "report" not in wire

    def test_batch_wire_preserves_order_and_stats(self):
        from repro.service import CompileEngine

        targets = [
            CompileTarget(build_chain(3), image_width=W, image_height=H, label="a"),
            CompileTarget(build_chain(3), image_width=1, image_height=H, label="bad"),
            CompileTarget(build_chain(4), image_width=W, image_height=H, label="b"),
        ]
        # Thread backend pinned: the cache_stats assertion below reads the
        # parent cache, which the process backend leaves to its workers.
        with CompileEngine(workers=2, executor="thread") as engine:
            wire = batch_result_to_wire(engine.submit_batch(targets))
        assert [r["label"] for r in wire["results"]] == ["a", "bad", "b"]
        assert [r["ok"] for r in wire["results"]] == [True, False, True]
        assert wire["cache_stats"]["misses"] >= 2
        json.dumps(wire)  # the whole body must be JSON-serializable
