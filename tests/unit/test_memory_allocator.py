"""Unit tests for line-buffer allocation."""

import pytest

from repro.errors import AllocationError
from repro.memory.allocator import (
    allocate_fifo_buffer,
    allocate_line_buffer,
    allocate_register_buffer,
    dff_realization_threshold,
)
from repro.memory.spec import MemorySpec, asic_dual_port, asic_fifo


class TestLineBufferAllocation:
    def test_one_block_per_line(self):
        config = allocate_line_buffer("p", 480, 3, asic_dual_port())
        assert config.lines == 3
        assert config.num_blocks == 3
        assert all(block.num_lines == 1 for block in config.blocks)

    def test_coalesced_allocation(self):
        config = allocate_line_buffer("p", 480, 4, asic_dual_port(), coalesce_factor=2)
        assert config.num_blocks == 2
        assert all(block.num_lines == 2 for block in config.blocks)

    def test_coalesce_with_remainder(self):
        config = allocate_line_buffer("p", 480, 3, asic_dual_port(), coalesce_factor=2)
        assert config.num_blocks == 2
        assert config.blocks[-1].num_lines == 1

    def test_wide_line_spans_blocks(self):
        spec = MemorySpec("small", block_bits=8 * 1024, ports=2, pixel_bits=16)
        config = allocate_line_buffer("p", 1920, 2, spec)
        # 1920 px * 16 b = 30720 bits -> 4 blocks of 8 Kbit per line.
        assert config.num_blocks == 8
        segments = {block.segment for block in config.blocks}
        assert segments == {0, 1, 2, 3}

    def test_wide_line_cannot_coalesce(self):
        spec = MemorySpec("small", block_bits=8 * 1024, ports=2, pixel_bits=16)
        with pytest.raises(AllocationError):
            allocate_line_buffer("p", 1920, 2, spec, coalesce_factor=2)

    def test_over_coalescing_rejected(self):
        spec = MemorySpec("s", block_bits=16 * 1024, ports=2, pixel_bits=16)
        # One 480-px line is 7680 bits; 16 Kbit holds two lines but not three.
        with pytest.raises(AllocationError):
            allocate_line_buffer("p", 480, 6, spec, coalesce_factor=3)

    def test_zero_lines(self):
        config = allocate_line_buffer("p", 480, 0, asic_dual_port())
        assert config.num_blocks == 0
        assert config.pixel_capacity == 0

    def test_negative_rejected(self):
        with pytest.raises(AllocationError):
            allocate_line_buffer("p", 480, -1, asic_dual_port())
        with pytest.raises(AllocationError):
            allocate_line_buffer("p", 480, 2, asic_dual_port(), coalesce_factor=0)

    def test_capacity_accounting(self):
        spec = asic_dual_port()
        config = allocate_line_buffer("p", 480, 3, spec)
        assert config.pixel_capacity == 3 * 480
        assert config.data_bits == 3 * 480 * spec.pixel_bits
        assert config.allocated_bits == 3 * spec.block_bits
        assert config.allocated_kbytes == pytest.approx(3 * spec.block_bits / 8192)


class TestFifoAllocation:
    def test_single_consumer_chain(self):
        config = allocate_fifo_buffer("p", 480, 2, asic_fifo(), num_consumers=1)
        assert config.style == "fifo"
        assert config.num_blocks == 2
        assert config.dff_pixels >= 2

    def test_splitting_multiplies_blocks_not_capacity(self):
        single = allocate_fifo_buffer("p", 480, 2, asic_fifo(), num_consumers=1)
        split = allocate_fifo_buffer("p", 480, 2, asic_fifo(), num_consumers=2)
        assert split.num_blocks == 2 * single.num_blocks
        # Used bits stay (roughly) the same: each split FIFO is half a line.
        assert sum(b.used_bits for b in split.blocks) == pytest.approx(
            sum(b.used_bits for b in single.blocks), rel=0.01
        )

    def test_zero_reuse_lines(self):
        config = allocate_fifo_buffer("p", 480, 0, asic_fifo())
        assert config.num_blocks == 0

    def test_invalid_arguments(self):
        with pytest.raises(AllocationError):
            allocate_fifo_buffer("p", 480, -1, asic_fifo())
        with pytest.raises(AllocationError):
            allocate_fifo_buffer("p", 480, 2, asic_fifo(), num_consumers=0)


class TestRegisterBuffers:
    def test_register_buffer_has_no_blocks(self):
        config = allocate_register_buffer("p", 480, 5, asic_dual_port())
        assert config.num_blocks == 0
        assert config.lines == 0
        assert config.dff_pixels == 6
        assert config.style == "registers"

    def test_threshold_scales_with_width(self):
        assert dff_realization_threshold(64) == 8
        assert dff_realization_threshold(480) == 60
        assert dff_realization_threshold(1920) == 64  # capped

    def test_negative_delay_rejected(self):
        with pytest.raises(AllocationError):
            allocate_register_buffer("p", 480, -1, asic_dual_port())
