"""Service surface of the temporal IR: wire v2, cache round-trip, verify."""

from __future__ import annotations

import json

import pytest

from repro.algorithms import TEMPORAL_ALGORITHM_NAMES, build_algorithm
from repro.api.target import CompileTarget
from repro.core.compiler import compile_target
from repro.service.cache import deserialize_schedule, serialize_schedule
from repro.service.engine import CompileEngine
from repro.service.verify import VerifyEngine, VerifyRequest
from repro.service.wire import (
    READABLE_WIRE_VERSIONS,
    WIRE_FORMAT_VERSION,
    WireFormatError,
    target_from_wire,
    target_to_wire,
)
from repro.sim.batch import replay_frames

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain

GENERATORS = ("imagen", "soda", "darkroom", "fixynn")


def temporal_target(name: str = "frame-diff-m") -> CompileTarget:
    return CompileTarget(
        dag=build_algorithm(name), image_width=TEST_WIDTH, image_height=TEST_HEIGHT
    )


class TestWireV2:
    def test_version_constants(self):
        assert WIRE_FORMAT_VERSION == 2
        assert READABLE_WIRE_VERSIONS == (1, 2)

    def test_spatial_targets_stamp_v1(self):
        target = CompileTarget(
            dag=build_chain(), image_width=TEST_WIDTH, image_height=TEST_HEIGHT
        )
        wire = target_to_wire(target)
        assert wire["version"] == 1
        assert '"dt"' not in json.dumps(wire)
        assert all(len(edge["window"]) == 4 for edge in wire["dag"]["edges"])

    @pytest.mark.parametrize("name", TEMPORAL_ALGORITHM_NAMES)
    def test_temporal_targets_stamp_v2(self, name):
        wire = target_to_wire(temporal_target(name))
        assert wire["version"] == 2
        assert any(len(edge["window"]) == 6 for edge in wire["dag"]["edges"])
        decoded = target_from_wire(wire)
        assert decoded.dag.is_temporal()
        assert decoded.fingerprint == temporal_target(name).fingerprint

    def test_v1_payload_still_decodes(self):
        target = CompileTarget(
            dag=build_chain(), image_width=TEST_WIDTH, image_height=TEST_HEIGHT
        )
        wire = target_to_wire(target)
        assert wire["version"] == 1  # i.e. this *is* a v1 payload
        decoded = target_from_wire(json.loads(json.dumps(wire)))
        assert decoded.fingerprint == target.fingerprint

    def test_unknown_version_rejected(self):
        wire = target_to_wire(temporal_target())
        wire["version"] = max(READABLE_WIRE_VERSIONS) + 1
        with pytest.raises(WireFormatError, match="version"):
            target_from_wire(wire)

    def test_bad_window_length_rejected(self):
        wire = target_to_wire(temporal_target())
        wire["dag"]["edges"][0]["window"] = [0, 0, 0, 0, -1]
        with pytest.raises(WireFormatError, match="window"):
            target_from_wire(wire)


class TestTemporalCacheRoundTrip:
    @pytest.mark.parametrize("generator", GENERATORS)
    def test_frame_buffers_rederived_identically(self, generator):
        target = temporal_target().with_generator(generator)
        schedule = compile_target(target).schedule
        assert schedule.frame_buffers
        restored = deserialize_schedule(serialize_schedule(schedule), schedule.dag)
        assert restored.frame_buffers == schedule.frame_buffers
        assert restored.total_allocated_bits == schedule.total_allocated_bits


class TestTemporalGoldenRoundTrip:
    @pytest.mark.parametrize("name", TEMPORAL_ALGORITHM_NAMES)
    @pytest.mark.parametrize("generator", GENERATORS)
    def test_compiled_dag_replays_identically(self, name, generator):
        """Generator rewrites (relays, linearization) must not change pixels."""
        target = temporal_target(name).with_generator(generator)
        compiled = compile_target(target)
        reference = replay_frames(target.dag, 32, 24, frames=4, seed=1)
        rewritten = replay_frames(compiled.schedule.dag, 32, 24, frames=4, seed=1)
        assert rewritten.digest == reference.digest


class TestTemporalVerifyService:
    @pytest.fixture
    def verify_engine(self):
        engine = CompileEngine(executor="inline", cache_dir=None)
        return VerifyEngine(engine, executor="inline", max_pending=None)

    @pytest.mark.parametrize("name", TEMPORAL_ALGORITHM_NAMES)
    def test_golden_and_cycle_pass(self, verify_engine, name):
        result = verify_engine.submit(
            VerifyRequest(target=temporal_target(name), check="both", frames=3)
        )
        assert result.ok, result.error
        assert result.passed
        assert result.golden["max_abs_error"] == 0.0
        assert result.cycle["passed"]

    def test_temporal_verify_over_http(self, tmp_path):
        """POST /v1/verify accepts a v2 target payload end to end."""
        from repro.service import ServiceClient, start_server

        engine = CompileEngine(workers=2, executor="thread", cache_dir=tmp_path / "c")
        server = start_server(engine)
        try:
            client = ServiceClient(port=server.port)
            verdict = client.verify(temporal_target(), check="both", frames=3)
        finally:
            server.stop()
            engine.shutdown()
        assert verdict["passed"] is True
        assert verdict["golden"]["max_abs_error"] == 0.0
        assert verdict["cycle"]["passed"] is True

    def test_pinned_digest_round_trips_through_verify(self, verify_engine):
        target = temporal_target()
        expected = replay_frames(
            target.dag, TEST_WIDTH, TEST_HEIGHT, frames=2, seed=0
        ).digest
        result = verify_engine.submit(
            VerifyRequest(target=target, check="golden", expected_digest=expected)
        )
        assert result.passed
        mismatched = verify_engine.submit(
            VerifyRequest(target=target, check="golden", expected_digest="0" * 64)
        )
        assert mismatched.passed is False
        assert mismatched.golden["expected_match"] is False
