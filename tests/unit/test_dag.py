"""Unit tests for the pipeline DAG container."""

import pytest

from repro.errors import GraphError
from repro.ir.dag import Edge, PipelineDAG, Stage, merge_parallel_edges
from repro.ir.stencil import StencilWindow


def make_simple() -> PipelineDAG:
    dag = PipelineDAG("simple")
    dag.add_stage(Stage("K0", is_input=True))
    dag.add_stage(Stage("K1"))
    dag.add_stage(Stage("K2", is_output=True))
    dag.add_edge("K0", "K1", StencilWindow.from_extent(3, 3))
    dag.add_edge("K1", "K2", StencilWindow.from_extent(1, 1))
    return dag


class TestConstruction:
    def test_duplicate_stage_rejected(self):
        dag = PipelineDAG()
        dag.add_stage(Stage("K0"))
        with pytest.raises(GraphError):
            dag.add_stage(Stage("K0"))

    def test_edge_requires_existing_stages(self):
        dag = PipelineDAG()
        dag.add_stage(Stage("K0", is_input=True))
        with pytest.raises(GraphError):
            dag.add_edge("K0", "missing", StencilWindow.point())
        with pytest.raises(GraphError):
            dag.add_edge("missing", "K0", StencilWindow.point())

    def test_self_edge_rejected(self):
        dag = PipelineDAG()
        dag.add_stage(Stage("K0"))
        with pytest.raises(GraphError):
            dag.add_edge("K0", "K0", StencilWindow.point())

    def test_duplicate_edge_rejected(self):
        dag = make_simple()
        with pytest.raises(GraphError):
            dag.add_edge("K0", "K1", StencilWindow.point())

    def test_len_and_contains(self):
        dag = make_simple()
        assert len(dag) == 3
        assert "K1" in dag
        assert "missing" not in dag


class TestQueries:
    def test_consumers_and_producers(self):
        dag = make_simple()
        assert dag.consumers_of("K0") == ["K1"]
        assert dag.producers_of("K2") == ["K1"]
        assert dag.producers_of("K0") == []

    def test_edge_lookup(self):
        dag = make_simple()
        edge = dag.edge("K0", "K1")
        assert edge.stencil_height == 3
        with pytest.raises(GraphError):
            dag.edge("K0", "K2")

    def test_unknown_stage_raises(self):
        dag = make_simple()
        with pytest.raises(GraphError):
            dag.stage("nope")
        with pytest.raises(GraphError):
            dag.consumers_of("nope")

    def test_input_output_stages(self):
        dag = make_simple()
        assert [s.name for s in dag.input_stages()] == ["K0"]
        assert [s.name for s in dag.output_stages()] == ["K2"]

    def test_multi_consumer_detection(self):
        dag = make_simple()
        assert dag.multi_consumer_stages() == []
        assert dag.is_single_consumer()
        dag.add_stage(Stage("K3", is_output=True))
        dag.add_edge("K0", "K3", StencilWindow.point())
        assert dag.multi_consumer_stages() == ["K0"]
        assert not dag.is_single_consumer()

    def test_accessor_stages(self):
        dag = make_simple()
        assert dag.accessor_stages("K0") == ["K0", "K1"]

    def test_summary_mentions_all_stages(self):
        text = make_simple().summary()
        for name in ("K0", "K1", "K2"):
            assert name in text


class TestCopy:
    def test_copy_is_deep_for_structure(self):
        dag = make_simple()
        clone = dag.copy("clone")
        clone.add_stage(Stage("K3"))
        assert "K3" not in dag
        assert clone.name == "clone"
        assert len(clone.edges()) == len(dag.edges())

    def test_copy_preserves_flags_and_metadata(self):
        dag = make_simple()
        dag.stage("K1").metadata["tag"] = 1
        clone = dag.copy()
        assert clone.stage("K0").is_input
        assert clone.stage("K2").is_output
        assert clone.stage("K1").metadata == {"tag": 1}


class TestMergeParallelEdges:
    def test_merges_windows_of_same_pair(self):
        edges = [
            Edge("A", "B", StencilWindow(0, 0, 0, 0)),
            Edge("A", "B", StencilWindow(1, 2, -1, 0)),
            Edge("A", "C", StencilWindow(0, 0, 0, 0)),
        ]
        merged = merge_parallel_edges(edges)
        assert merged[("A", "B")].max_dx == 2
        assert merged[("A", "B")].min_dy == -1
        assert merged[("A", "C")].size == 1
