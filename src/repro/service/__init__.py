"""Compilation service layer: content-addressed caching and batch execution.

This package turns the one-shot :func:`repro.core.compile_pipeline` facade
into a serving subsystem (the ROADMAP's "heavy traffic" direction):

* :mod:`repro.service.fingerprint` — stable content hashes of compile requests;
* :mod:`repro.service.cache` — two-tier (LRU + disk) schedule cache;
* :mod:`repro.service.jobs` — typed request/result/batch records;
* :mod:`repro.service.metrics` — per-request latency and hit-rate metrics;
* :mod:`repro.service.engine` — the :class:`CompileEngine` front door.

Quickstart::

    from repro import CompileEngine
    from repro.algorithms import build_algorithm

    engine = CompileEngine(workers=4, cache_dir=".imagen-cache")
    acc = engine.compile(build_algorithm("unsharp-m"), image_width=480, image_height=320)
    acc = engine.compile(build_algorithm("unsharp-m"), image_width=480, image_height=320)
    assert engine.cache.stats.hits >= 1  # second call never touched the solver
"""

from repro.service.cache import (
    CacheStats,
    CompileCache,
    DiskCacheStore,
    deserialize_schedule,
    serialize_schedule,
)
from repro.service.engine import CompileEngine, default_worker_count
from repro.service.fingerprint import (
    FINGERPRINT_VERSION,
    compile_fingerprint,
    dag_fingerprint,
)
from repro.service.jobs import (
    BatchResult,
    CompileRequest,
    CompileResult,
    CompileStatus,
)
from repro.service.metrics import EngineMetrics, RequestTrace

__all__ = [
    "BatchResult",
    "CacheStats",
    "CompileCache",
    "CompileEngine",
    "CompileRequest",
    "CompileResult",
    "CompileStatus",
    "DiskCacheStore",
    "EngineMetrics",
    "FINGERPRINT_VERSION",
    "RequestTrace",
    "compile_fingerprint",
    "dag_fingerprint",
    "default_worker_count",
    "deserialize_schedule",
    "serialize_schedule",
]
