"""The evaluation algorithm suite (paper Table 3)."""

from repro.algorithms.catalog import (
    ALGORITHM_NAMES,
    TEMPORAL_ALGORITHM_NAMES,
    AlgorithmInfo,
    algorithm_info,
    algorithm_names,
    build_algorithm,
    register_algorithm,
    table3,
    unregister_algorithm,
)
from repro.algorithms.canny import build_canny_s, build_canny_m
from repro.algorithms.harris import build_harris_s, build_harris_m
from repro.algorithms.unsharp import build_unsharp_m
from repro.algorithms.xcorr import build_xcorr_m
from repro.algorithms.denoise import build_denoise_m
from repro.algorithms.synthetic import build_synthetic_pipeline
from repro.algorithms.temporal import build_frame_diff_m, build_temporal_denoise_m

__all__ = [
    "ALGORITHM_NAMES",
    "TEMPORAL_ALGORITHM_NAMES",
    "AlgorithmInfo",
    "algorithm_info",
    "algorithm_names",
    "build_algorithm",
    "register_algorithm",
    "table3",
    "unregister_algorithm",
    "build_canny_s",
    "build_canny_m",
    "build_harris_s",
    "build_harris_m",
    "build_unsharp_m",
    "build_xcorr_m",
    "build_denoise_m",
    "build_synthetic_pipeline",
    "build_temporal_denoise_m",
    "build_frame_diff_m",
]
