"""Tokenizer for the textual Darkroom-like DSL.

The surface syntax follows the fragment shown in Sec. 4 of the paper::

    input K0;
    K1 = im(x,y) K0(x-1,y-1) + K0(x,y-1) + ... end
    output K2 = im(x,y) K0(x,y) + K1(x+1,y+1) end
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DSLSyntaxError

KEYWORDS = {"input", "output", "im", "end"}

_SYMBOLS = (
    "<=",
    ">=",
    "==",
    "!=",
    "//",
    "(",
    ")",
    ",",
    ";",
    "=",
    "+",
    "-",
    "*",
    "/",
    "<",
    ">",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with source position (1-based)."""

    kind: str  # 'name', 'number', 'keyword', 'symbol', 'eof'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Convert DSL source text into a token list terminated by an EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    while index < length:
        char = source[index]

        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise DSLSyntaxError("Unterminated block comment", line, column)
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            column = 1 if "\n" in skipped else column + len(skipped)
            index = end + 2
            continue

        if char.isdigit() or (char == "." and index + 1 < length and source[index + 1].isdigit()):
            start = index
            start_col = column
            seen_dot = False
            while index < length and (source[index].isdigit() or (source[index] == "." and not seen_dot)):
                if source[index] == ".":
                    seen_dot = True
                index += 1
                column += 1
            tokens.append(Token("number", source[start:index], line, start_col))
            continue

        if char.isalpha() or char == "_":
            start = index
            start_col = column
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
                column += 1
            word = source[start:index]
            kind = "keyword" if word in KEYWORDS else "name"
            tokens.append(Token(kind, word, line, start_col))
            continue

        matched = False
        for symbol in _SYMBOLS:
            if source.startswith(symbol, index):
                # A lone '/' followed by '/' would be a comment, handled above.
                tokens.append(Token("symbol", symbol, line, column))
                index += len(symbol)
                column += len(symbol)
                matched = True
                break
        if matched:
            continue

        if source.startswith("...", index):
            raise DSLSyntaxError(
                "The ellipsis in the paper's listing is informal; spell out every term",
                line,
                column,
            )
        raise DSLSyntaxError(f"Unexpected character {char!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens
