"""Constraint pruning (paper Sec. 5.4).

The contention constraints for one ``(P+1)``-combination are OR-ed: any one
pair-separation suffices.  Pruning removes candidates that *imply* another
candidate — removing an implied-from disjunct never changes the feasible set
(``A or B == B`` whenever ``A implies B``) but it shrinks the number of
sub-problems (enumeration strategy) or indicator variables (big-M strategy),
which is where the paper's 4x compile-time speedup comes from.

Implication rule
----------------
Let candidate ``A`` require "``a`` trails ``b``" and candidate ``C`` require
"``c`` trails ``d``" over the same buffer.  ``A`` implies ``C`` when

* ``a ≼ c``  (``c`` equals or data-depends on ``a``, so ``S_c >= S_a``),
* ``d ≼ b``  (``b`` equals or data-depends on ``d``, so ``S_d <= S_b``),
* ``SH_c <= SH_a`` (the trailing gap ``C`` needs is no larger than ``A``'s).

This is the paper's theorem with the partial-order direction matched to its
own worked example (Fig. 6 / Eq. 13); see DESIGN.md for the notation note.
"""

from __future__ import annotations

from repro.core.constraints import Disjunction, PairSeparation
from repro.ir.dag import PipelineDAG
from repro.ir.traversal import partial_order


def implies(a: PairSeparation, c: PairSeparation, order: dict[str, set[str]]) -> bool:
    """True when satisfying candidate ``a`` necessarily satisfies candidate ``c``."""
    if a.buffer != c.buffer:
        return False
    a_precedes_c = c.trailing in order.get(a.trailing, set())
    d_precedes_b = a.leading in order.get(c.leading, set())
    return a_precedes_c and d_precedes_b and c.min_gap <= a.min_gap


def prune_candidates(
    candidates: list[PairSeparation], order: dict[str, set[str]]
) -> list[PairSeparation]:
    """Keep only the most relaxed candidates of one disjunction.

    A candidate is dropped when it implies another *kept* candidate.  Mutually
    equivalent candidates keep a single representative (first in input order).
    """
    kept: list[PairSeparation] = []
    for index, candidate in enumerate(candidates):
        dominated = False
        for other_index, other in enumerate(candidates):
            if index == other_index:
                continue
            if implies(candidate, other, order):
                # candidate implies other: other is at least as relaxed.
                if implies(other, candidate, order):
                    # Equivalent: keep only the earliest of the pair.
                    if other_index < index:
                        dominated = True
                        break
                else:
                    dominated = True
                    break
        if not dominated:
            kept.append(candidate)
    return kept


def prune_disjunctions(
    disjunctions: list[Disjunction],
    dag: PipelineDAG,
    order: dict[str, set[str]] | None = None,
) -> list[Disjunction]:
    """Apply :func:`prune_candidates` to every disjunction."""
    order = order if order is not None else partial_order(dag)
    pruned: list[Disjunction] = []
    for disjunction in disjunctions:
        pruned.append(
            Disjunction(
                buffer=disjunction.buffer,
                combination=disjunction.combination,
                candidates=prune_candidates(disjunction.candidates, order),
            )
        )
    return pruned


def count_subproblems(disjunctions: list[Disjunction]) -> int:
    """Number of ILP sub-problems the enumeration strategy would solve."""
    total = 1
    for disjunction in disjunctions:
        total *= max(1, len(disjunction.candidates))
    return total
