"""Solver facade: pick a backend and solve an ILP model.

``backend`` may be:

* ``"highs"`` — SciPy's HiGHS MILP solver (fast, default when available);
* ``"python"`` — the pure-Python branch-and-bound over the simplex engine;
* ``"auto"`` — HiGHS when importable, otherwise the Python backend.
"""

from __future__ import annotations

from repro.errors import InfeasibleError, SolverError, UnboundedError
from repro.ilp import highs
from repro.ilp.branch_and_bound import solve_branch_and_bound
from repro.ilp.model import Model, SolveResult, SolveStatus
from repro.trace import span_attr, trace_span


def available_backends() -> list[str]:
    """Names of the backends usable in this environment."""
    backends = ["python"]
    if highs.is_available():
        backends.insert(0, "highs")
    return backends


def solve(model: Model, backend: str = "auto", *, raise_on_failure: bool = False) -> SolveResult:
    """Solve ``model`` and return a :class:`SolveResult`.

    With ``raise_on_failure=True``, infeasible/unbounded outcomes raise
    :class:`InfeasibleError` / :class:`UnboundedError` instead of being
    returned as statuses.
    """
    if backend == "auto":
        backend = "highs" if highs.is_available() else "python"

    with trace_span("ilp", backend=backend):
        if backend == "highs":
            result = highs.solve_highs(model)
        elif backend == "python":
            result = solve_branch_and_bound(model)
        else:
            raise SolverError(f"Unknown ILP backend {backend!r}")
        span_attr(status=result.status.value, lp_iterations=result.iterations)

    if raise_on_failure:
        if result.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(f"Model {model.name!r} is infeasible ({result.message})")
        if result.status is SolveStatus.UNBOUNDED:
            raise UnboundedError(f"Model {model.name!r} is unbounded ({result.message})")
        if result.status is SolveStatus.ERROR:
            raise SolverError(f"Backend {backend!r} failed on model {model.name!r}: {result.message}")
    return result
