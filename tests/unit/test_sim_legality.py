"""Unit tests for the reserved-table legality checker (repro.sim.cycle).

The contract under test: ``check_schedule_legality`` must agree with the
cycle-accurate event walk (``simulate_schedule``) at the granularity of
``(rule, producer, consumer)`` violation keys — on legal schedules, on
hand-broken ones, and on the whole algorithm catalog.
"""

import pytest

from repro.algorithms import ALGORITHM_NAMES, build_algorithm
from repro.core.compiler import compile_pipeline
from repro.core.schedule import PipelineSchedule
from repro.memory.allocator import allocate_line_buffer
from repro.memory.spec import asic_dual_port, asic_single_port
from repro.sim.cycle import (
    LegalityViolation,
    check_schedule_legality,
    simulate_schedule,
)

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


def event_walk_keys(schedule, rows):
    report = simulate_schedule(schedule, max_rows=rows, max_violations=1_000_000)
    return report.violation_keys


def broken_schedule():
    """Starts far too early: violates causality and over-subscribes ports."""
    dag = build_chain(2, stencil=3)
    spec = asic_dual_port()
    starts = {"K0": 0, "K1": 1}
    buffers = {
        "K0": allocate_line_buffer("K0", W, 3, spec, reader_heights={"K1": 3}),
    }
    return PipelineSchedule(
        dag=dag,
        image_width=W,
        image_height=H,
        memory_spec=spec,
        start_cycles=starts,
        line_buffers=buffers,
        generator="broken",
    )


class TestLegalSchedules:
    def test_compiled_chain_is_legal(self):
        schedule = compile_pipeline(build_chain(3), image_width=W, image_height=H).schedule
        report = check_schedule_legality(schedule)
        assert report.ok
        assert not report.violations
        assert report.to_payload()["passed"] is True

    def test_paper_example_is_legal(self):
        schedule = compile_pipeline(
            build_paper_example(), image_width=W, image_height=H
        ).schedule
        assert check_schedule_legality(schedule).ok

    def test_single_port_spec_is_legal(self):
        schedule = compile_pipeline(
            build_chain(3),
            image_width=W,
            image_height=H,
            memory_spec=asic_single_port(),
        ).schedule
        assert check_schedule_legality(schedule).ok


class TestBrokenSchedules:
    def test_violations_match_event_walk(self):
        schedule = broken_schedule()
        report = check_schedule_legality(schedule, max_rows=H)
        assert not report.ok
        assert report.keys() == event_walk_keys(schedule, H)

    def test_rules_identified(self):
        report = check_schedule_legality(broken_schedule(), max_rows=H)
        rules = {violation.rule for violation in report.violations}
        assert "R1" in rules  # premature consumer start = causality

    def test_violation_is_hashable_and_typed(self):
        report = check_schedule_legality(broken_schedule(), max_rows=H)
        violation = report.violations[0]
        assert isinstance(violation, LegalityViolation)
        assert violation.key in report.keys()
        assert violation.message


class TestCatalogAgreement:
    """Acceptance: reserved-table == event-walk on the full algorithm catalog."""

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_catalog_algorithm_agrees_with_event_walk(self, name):
        schedule = compile_pipeline(
            build_algorithm(name), image_width=W, image_height=H
        ).schedule
        report = check_schedule_legality(schedule, max_rows=H)
        assert report.keys() == event_walk_keys(schedule, H)
        assert report.ok  # compiled schedules are stall-free by construction

    @pytest.mark.parametrize("name", ("unsharp-m", "harris-s"))
    def test_catalog_uses_reserved_table_at_full_resolution(self, name):
        """The fast path must actually engage for real design points."""
        schedule = compile_pipeline(
            build_algorithm(name), image_width=W, image_height=H
        ).schedule
        report = check_schedule_legality(schedule)
        assert report.method == "reserved-table"
        assert report.rows_analyzed == H


class TestFallback:
    def test_short_frames_fall_back_to_event_walk(self):
        """Frames shorter than a full-activity window get the exact walker."""
        schedule = compile_pipeline(build_chain(3), image_width=W, image_height=H).schedule
        report = check_schedule_legality(schedule, max_rows=2)
        assert report.method == "event-walk"
        assert report.keys() == event_walk_keys(schedule, 2)
