"""Property-based round-trip tests for the lossless wire/disk codecs.

The invariants that make process-pool execution and disk-persistable
baselines safe: an arbitrary physical line-buffer configuration survives
``to_payload``/``from_payload`` bit-identically, and any schedule a real
generator (ImaGen or a baseline) produces survives
:func:`repro.service.wire.schedule_to_wire` /
:func:`repro.service.wire.schedule_from_wire` with identical reports.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.api.target import CompileTarget
from repro.core.compiler import compile_target
from repro.dsl.builder import PipelineBuilder, temporal_average, window_sum
from repro.estimate.report import accelerator_report
from repro.memory.linebuffer import BlockAssignment, FrameBufferConfig, LineBufferConfig
from repro.memory.spec import MemorySpec
from repro.service.wire import (
    schedule_from_wire,
    schedule_to_wire,
    target_from_wire,
    target_to_wire,
)

W, H = 32, 24


# ---------------------------------------------------------------------------
# Arbitrary line-buffer configurations
# ---------------------------------------------------------------------------
@st.composite
def memory_specs(draw) -> MemorySpec:
    style = draw(st.sampled_from(["sram", "fifo"]))
    return MemorySpec(
        name=draw(st.sampled_from(["asic-dp", "asic-sp", "asic-fifo", "bram-x"])),
        block_bits=draw(st.integers(1024, 64 * 1024)),
        ports=draw(st.integers(1, 2)),
        pixel_bits=draw(st.sampled_from([8, 12, 16])),
        style=style,
        allow_coalescing=draw(st.booleans()) and style != "fifo",
    )


@st.composite
def block_assignments(draw) -> BlockAssignment:
    return BlockAssignment(
        index=draw(st.integers(0, 63)),
        line_slots=tuple(
            draw(st.lists(st.integers(0, 15), min_size=0, max_size=4, unique=True))
        ),
        segment=draw(st.integers(0, 3)),
        used_bits=draw(st.integers(0, 64 * 1024)),
    )


@st.composite
def line_buffer_configs(draw) -> LineBufferConfig:
    readers = draw(
        st.dictionaries(
            st.sampled_from(["K1", "K2", "K3", "out"]), st.integers(1, 7), max_size=3
        )
    )
    return LineBufferConfig(
        producer=draw(st.sampled_from(["K0", "K1", "blur", "gradient"])),
        image_width=draw(st.integers(8, 1920)),
        lines=draw(st.integers(0, 12)),
        spec=draw(memory_specs()),
        coalesce_factor=draw(st.integers(1, 4)),
        style=draw(st.sampled_from(["sram", "fifo", "registers"])),
        blocks=draw(st.lists(block_assignments(), max_size=6)),
        dff_pixels=draw(st.integers(0, 512)),
        fifo_chains=draw(st.integers(1, 4)),
        reader_heights=readers,
    )


class TestLineBufferPayloadRoundTrip:
    @given(config=line_buffer_configs())
    @settings(max_examples=120, deadline=None)
    def test_payload_round_trip_is_lossless(self, config):
        payload = json.loads(json.dumps(config.to_payload()))  # force JSON types
        restored = LineBufferConfig.from_payload(payload)
        assert restored == config
        assert restored.to_payload() == config.to_payload()
        # The derived physical quantities the estimators consume agree too.
        assert restored.allocated_bits == config.allocated_bits
        assert restored.data_bits == config.data_bits
        assert restored.num_blocks == config.num_blocks

    @given(config=line_buffer_configs())
    @settings(max_examples=40, deadline=None)
    def test_unknown_spec_fields_rejected(self, config):
        payload = config.to_payload()
        payload["spec"] = dict(payload["spec"], surprise=1)
        try:
            LineBufferConfig.from_payload(payload)
        except ValueError:
            return
        raise AssertionError("payload with unknown spec field must not decode")


# ---------------------------------------------------------------------------
# Real generator schedules
# ---------------------------------------------------------------------------
def _random_chain_dag(
    num_stages: int, stencil: int, fan_out: bool, temporal_depth: int = 0
):
    builder = PipelineBuilder(
        f"wire-{num_stages}-{stencil}-{int(fan_out)}-{temporal_depth}"
    )
    handle = builder.input("K0")
    first = handle
    for index in range(1, num_stages):
        handle = builder.stage(f"K{index}", window_sum(handle, stencil, stencil))
    if fan_out and num_stages >= 3:
        # A multi-consumer join exercises SODA's FIFO splitting on round-trip.
        handle = builder.stage(
            "join", window_sum(first, stencil, stencil) + window_sum(handle, 1, 1)
        )
    if temporal_depth:
        handle = builder.stage(
            "taccum", temporal_average(handle, temporal_depth + 1)
        )
    builder.dag.stage(handle.name).is_output = True
    return builder.dag.validated()


@st.composite
def generator_schedules(draw, temporal: bool = False):
    generator = draw(st.sampled_from(["imagen", "darkroom", "soda", "fixynn"]))
    num_stages = draw(st.integers(2, 5))
    stencil = draw(st.sampled_from([1, 3, 5]))
    fan_out = draw(st.booleans())
    temporal_depth = draw(st.integers(1, 3)) if temporal else 0
    dag = _random_chain_dag(num_stages, stencil, fan_out, temporal_depth)
    target = CompileTarget(
        dag, image_width=W, image_height=H, generator=generator
    )
    return compile_target(target).schedule, target


class TestGeneratorScheduleRoundTrip:
    @given(data=generator_schedules())
    @settings(max_examples=25, deadline=None)
    def test_schedule_round_trip_preserves_reports(self, data):
        schedule, target = data
        payload = json.loads(json.dumps(schedule_to_wire(schedule)))
        restored = schedule_from_wire(payload, target.dag)
        assert restored.generator == schedule.generator
        assert restored.start_cycles == schedule.start_cycles
        assert restored.coalesce_factors == schedule.coalesce_factors
        assert set(restored.line_buffers) == set(schedule.line_buffers)
        for name, config in schedule.line_buffers.items():
            assert restored.line_buffers[name].to_payload() == config.to_payload()
        assert accelerator_report(restored).row() == accelerator_report(schedule).row()

    @given(data=generator_schedules())
    @settings(max_examples=10, deadline=None)
    def test_wire_payload_is_json_serializable(self, data):
        schedule, _ = data
        payload = schedule_to_wire(schedule)
        assert json.loads(json.dumps(payload)) == payload


# ---------------------------------------------------------------------------
# Target payload v1 <-> v2 compatibility
# ---------------------------------------------------------------------------
class TestTargetPayloadVersions:
    @given(data=generator_schedules())
    @settings(max_examples=15, deadline=None)
    def test_spatial_targets_emit_v1_payloads(self, data):
        """A spatial target's payload is indistinguishable from a v1 build's:
        version 1, 4-element windows, no dt keys anywhere."""
        _, target = data
        wire = json.loads(json.dumps(target_to_wire(target)))
        assert wire["version"] == 1
        assert all(len(edge["window"]) == 4 for edge in wire["dag"]["edges"])
        assert '"dt"' not in json.dumps(wire)
        assert target_from_wire(wire).fingerprint == target.fingerprint

    @given(data=generator_schedules(temporal=True))
    @settings(max_examples=15, deadline=None)
    def test_temporal_targets_round_trip_as_v2(self, data):
        schedule, target = data
        wire = json.loads(json.dumps(target_to_wire(target)))
        assert wire["version"] == 2
        assert any(len(edge["window"]) == 6 for edge in wire["dag"]["edges"])
        restored = target_from_wire(wire)
        assert restored.fingerprint == target.fingerprint
        assert restored.dag.canonical_form() == target.dag.canonical_form()

    @given(data=generator_schedules(temporal=True))
    @settings(max_examples=10, deadline=None)
    def test_temporal_schedule_round_trip_preserves_frame_buffers(self, data):
        schedule, target = data
        payload = json.loads(json.dumps(schedule_to_wire(schedule)))
        restored = schedule_from_wire(payload, target.dag)
        assert restored.frame_buffers == schedule.frame_buffers
        assert all(
            isinstance(config, FrameBufferConfig)
            for config in restored.frame_buffers.values()
        )
        assert accelerator_report(restored).row() == accelerator_report(schedule).row()
