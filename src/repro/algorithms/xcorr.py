"""Normalised cross-correlation against a tall 1-D template
(Table 3: Xcorr-m, 3 stages, 1 multi-consumer stage).

The input is read both by a tall 18x1 local-statistics stage and by the
correlation stage itself; linearizing this pipeline replicates the 18-line
reader, which is why Darkroom's memory blow-up is largest here (Sec. 8.3).
"""

from __future__ import annotations

from repro.dsl import ast
from repro.dsl.builder import PipelineBuilder, window_sum
from repro.ir.dag import PipelineDAG

#: Height of the matching template (one column of 18 pixels).
TEMPLATE_HEIGHT = 18

#: A fixed 18-tap template (a smoothed step edge).
TEMPLATE = [1.0, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 16.0, 20.0, 20.0, 16.0, 12.0, 8.0, 5.0, 3.0, 2.0, 1.0, 1.0]


def build_xcorr_m() -> PipelineDAG:
    """Cross-correlation: correlate each column window with a fixed 18-tap template."""
    builder = PipelineBuilder("xcorr-m")
    source = builder.input("K0")

    local_sum = builder.stage(
        "local_sum", window_sum(source, 1, TEMPLATE_HEIGHT, centered=False)
    )

    correlation_terms = [source(0, dy) * TEMPLATE[dy] for dy in range(TEMPLATE_HEIGHT)]
    correlation: ast.Expr = correlation_terms[0]
    for term in correlation_terms[1:]:
        correlation = correlation + term
    mean = local_sum(0, 0) / float(TEMPLATE_HEIGHT)
    builder.output("xcorr", correlation - mean * float(sum(TEMPLATE)))
    return builder.build()
