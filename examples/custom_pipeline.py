#!/usr/bin/env python3
"""Author a custom pipeline with the Python builder API and explore memory specs.

This example builds a small high-dynamic-range-style fusion pipeline (weighted
blend of a detail image and a smoothed image) with the programmatic
:class:`PipelineBuilder`, registers it in the algorithm catalog alongside the
Table-3 suite, then compiles it against three different on-chip memory
specifications — generic dual-port SRAM, single-port SRAM, and FIFOs —
showing how the same algorithm maps to different hardware and what each costs.

Run:  python examples/custom_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import CompileTarget, PipelineBuilder, compile_pipeline
from repro.algorithms import algorithm_info, build_algorithm, register_algorithm
from repro.dsl import ast
from repro.dsl.builder import convolve, window_sum
from repro.estimate.report import accelerator_report
from repro.memory.spec import asic_dual_port, asic_single_port
from repro.sim.functional import run_functional

WIDTH, HEIGHT = 480, 320


def build_fusion_pipeline():
    builder = PipelineBuilder("exposure-fusion")
    source = builder.input("K0")
    smooth = builder.stage(
        "smooth", convolve(source, [[1, 2, 1], [2, 4, 2], [1, 2, 1]], normalize=True)
    )
    detail = builder.stage("detail", ast.Call("abs", (source(0, 0) - smooth(0, 0),)))
    weight = builder.stage("weight", window_sum(detail, 5, 5) / 25.0)
    builder.output(
        "fused",
        ast.Call(
            "clamp",
            (
                smooth(0, 0) + (source(0, 0) - smooth(0, 0)) * (weight(0, 0) / 32.0 + 0.5),
                ast.Const(0.0),
                ast.Const(255.0),
            ),
        ),
    )
    return builder.build()


def main() -> None:
    # Install the custom pipeline into the catalog: any code that accepts a
    # Table-3 algorithm name (benchmarks, sweeps, services) can now build it.
    register_algorithm(
        "exposure-fusion",
        "HDR-style weighted fusion of a smoothed and a detail image (custom)",
        build_fusion_pipeline,
    )
    info = algorithm_info("exposure-fusion")
    print(
        f"registered {info.name!r}: {info.expected_stages} stages, "
        f"{info.expected_multi_consumer_stages} multi-consumer\n"
    )

    dag = build_algorithm("exposure-fusion")
    print(dag.summary())
    print(f"multi-consumer stages: {dag.multi_consumer_stages()}\n")

    rng = np.random.default_rng(1)
    image = rng.integers(0, 256, size=(HEIGHT, WIDTH)).astype(np.float64)
    output = run_functional(dag, image).output()
    print(f"functional check: output range [{output.min():.1f}, {output.max():.1f}]\n")

    # One base target, four derivations: every design style — including the
    # SODA baseline — is just a differently-derived CompileTarget.
    base = CompileTarget(dag, image_width=WIDTH, image_height=HEIGHT)
    print(f"{'memory spec':<22}{'generator':>10}{'blocks':>8}{'KB':>8}{'mW':>8}")
    candidates = [
        ("dual-port SRAM", compile_pipeline(base).schedule),
        ("dual-port SRAM + LC", compile_pipeline(base.with_options(coalescing=True)).schedule),
        (
            "single-port SRAM",
            compile_pipeline(
                base.with_memory_spec(asic_single_port()).with_options(ports=1)
            ).schedule,
        ),
        ("FIFOs (SODA style)", compile_pipeline(base.with_generator("soda")).schedule),
    ]
    for label, schedule in candidates:
        report = accelerator_report(schedule)
        print(
            f"{label:<22}{schedule.generator:>10}{report.sram_blocks:>8}"
            f"{report.sram_kbytes:>8.0f}{report.memory_power_mw:>8.1f}"
        )

    print(
        "\nThe dual-port + line-coalescing design is what the ImaGen compiler "
        "would hand to the RTL generator; call .generate_verilog() on the "
        "compiled accelerator to emit it."
    )


if __name__ == "__main__":
    main()
