"""Line-buffer configuration records.

A :class:`LineBufferConfig` is the physical realisation of one producer
stage's intermediate buffer: how many line slots it stores, how those lines
are packed into memory blocks, and how it is accessed.  It is produced by the
allocator from a schedule, and consumed by the area/power estimators, the
cycle simulator and the RTL generator.

Both records (de)serialize through ``to_payload``/``from_payload``: plain
JSON-compatible dictionaries that capture *every* physical field — block
assignments, DFF pixels, FIFO chains, reader heights and the (possibly
generator-adapted) memory spec.  This is what lets baseline designs, whose
buffers cannot be re-derived by the ImaGen allocator, round-trip losslessly
through the disk cache and across process boundaries.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from repro.memory.spec import MemorySpec


@dataclass(frozen=True)
class BlockAssignment:
    """One physical memory block and the line slots (and segments) it holds."""

    index: int
    line_slots: tuple[int, ...]
    segment: int = 0  # when one line spans several blocks, its segment number
    used_bits: int = 0

    @property
    def num_lines(self) -> int:
        return len(self.line_slots)

    # --------------------------------------------------------------- payload
    def to_payload(self) -> dict:
        """Flatten into a JSON-compatible dictionary (see module docstring)."""
        return {
            "index": self.index,
            "line_slots": list(self.line_slots),
            "segment": self.segment,
            "used_bits": self.used_bits,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BlockAssignment":
        """Rebuild one block assignment from :meth:`to_payload` output."""
        return cls(
            index=int(payload["index"]),
            line_slots=tuple(int(slot) for slot in payload["line_slots"]),
            segment=int(payload.get("segment", 0)),
            used_bits=int(payload.get("used_bits", 0)),
        )


@dataclass(frozen=True)
class FrameBufferConfig:
    """Whole-frame history storage for one producer with temporal consumers.

    A consumer reading the producer at frame offset ``dt = -k`` needs the
    producer's last ``k`` complete frames retained; ``depth`` is the deepest
    such ``k`` over all consumers.  The retained history is
    ``depth x height x width`` pixels (``pixel_capacity`` / ``data_bits``);
    physically the buffer rotates through ``depth + 1`` frame slots, one bank
    per slot: the writer streams the current frame into the spare slot while
    readers draw the ``depth`` past frames from the others, so no bank ever
    serves more than one access per cycle and the buffer is legal on any port
    count — including FixyNN's single-port SRAM.  Unlike line buffers, the
    size is a pure function of the DAG and image geometry — independent of
    start cycles — so it can be re-derived anywhere a schedule is
    reconstructed (see :func:`repro.memory.allocator.derive_frame_buffers`).
    """

    producer: str
    image_width: int
    image_height: int
    depth: int
    spec: MemorySpec

    @property
    def slots(self) -> int:
        """Physical frame slots: ``depth`` past frames + the rotation slot."""
        return self.depth + 1

    @property
    def pixel_capacity(self) -> int:
        """Pixels of live history retained: ``depth`` whole frames."""
        return self.depth * self.image_width * self.image_height

    @property
    def data_bits(self) -> int:
        return self.pixel_capacity * self.spec.pixel_bits

    @property
    def num_blocks(self) -> int:
        """Blocks claimed: one bank per frame slot, each rounding up separately."""
        frame_bits = self.image_width * self.image_height * self.spec.pixel_bits
        blocks_per_frame = -(-frame_bits // self.spec.block_bits)
        return self.slots * blocks_per_frame

    @property
    def allocated_bits(self) -> int:
        return self.num_blocks * self.spec.block_bits

    @property
    def allocated_kbytes(self) -> float:
        return self.allocated_bits / 8192.0

    @property
    def data_kbytes(self) -> float:
        return self.data_bits / 8192.0

    def summary(self) -> str:
        return (
            f"FB[{self.producer}]: {self.depth} frame(s) x "
            f"{self.image_height}x{self.image_width}px, "
            f"{self.num_blocks} block(s) ({self.spec.name})"
        )

    # --------------------------------------------------------------- payload
    def to_payload(self) -> dict:
        """Flatten into a JSON-compatible dictionary (lossless round-trip)."""
        return {
            "producer": self.producer,
            "image_width": self.image_width,
            "image_height": self.image_height,
            "depth": self.depth,
            "spec": asdict(self.spec),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FrameBufferConfig":
        spec_payload = dict(payload["spec"])
        known = {f.name for f in fields(MemorySpec)}
        unknown = set(spec_payload) - known
        if unknown:
            raise ValueError(f"Unknown memory spec fields in payload: {sorted(unknown)}")
        return cls(
            producer=str(payload["producer"]),
            image_width=int(payload["image_width"]),
            image_height=int(payload["image_height"]),
            depth=int(payload["depth"]),
            spec=MemorySpec(**spec_payload),
        )


@dataclass
class LineBufferConfig:
    """Physical configuration of the line buffer after one producer stage."""

    producer: str
    image_width: int
    lines: int
    spec: MemorySpec
    coalesce_factor: int = 1
    #: "sram" (classic / ImaGen), "fifo" (SODA), or "registers" (sub-line DFF buffer).
    style: str = "sram"
    blocks: list[BlockAssignment] = field(default_factory=list)
    #: pixels kept in DFF shift registers rather than SRAM (SODA's last line).
    dff_pixels: int = 0
    #: number of parallel FIFO chains (SODA splits per extra consumer).
    fifo_chains: int = 1
    #: per-accessor stencil heights (writer excluded), for access accounting.
    reader_heights: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------- capacities
    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def pixel_capacity(self) -> int:
        """Pixels of storage actually required (line slots x width)."""
        return self.lines * self.image_width

    @property
    def data_bits(self) -> int:
        """Bits of payload stored in SRAM (excludes DFF pixels)."""
        return self.pixel_capacity * self.spec.pixel_bits

    @property
    def allocated_bits(self) -> int:
        """Bits of SRAM capacity claimed (block-granular allocation)."""
        return self.num_blocks * self.spec.block_bits

    @property
    def allocated_kbytes(self) -> float:
        return self.allocated_bits / 8192.0

    @property
    def data_kbytes(self) -> float:
        return self.data_bits / 8192.0

    def summary(self) -> str:
        return (
            f"LB[{self.producer}]: {self.lines} lines x {self.image_width}px, "
            f"{self.num_blocks} block(s) ({self.spec.name}), coalesce={self.coalesce_factor}, "
            f"style={self.style}"
        )

    # --------------------------------------------------------------- payload
    def to_payload(self) -> dict:
        """Flatten the full physical configuration into a JSON-compatible dict.

        Lossless: every field, including the per-buffer memory spec (baseline
        generators adapt the request spec, e.g. SODA rewrites it into FIFO
        form) and the block assignments, survives a
        :meth:`from_payload` round-trip bit-identically.
        """
        return {
            "producer": self.producer,
            "image_width": self.image_width,
            "lines": self.lines,
            "spec": asdict(self.spec),
            "coalesce_factor": self.coalesce_factor,
            "style": self.style,
            "blocks": [block.to_payload() for block in self.blocks],
            "dff_pixels": self.dff_pixels,
            "fifo_chains": self.fifo_chains,
            "reader_heights": dict(self.reader_heights),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LineBufferConfig":
        """Rebuild a configuration from :meth:`to_payload` output."""
        spec_payload = dict(payload["spec"])
        known = {f.name for f in fields(MemorySpec)}
        unknown = set(spec_payload) - known
        if unknown:
            raise ValueError(f"Unknown memory spec fields in payload: {sorted(unknown)}")
        return cls(
            producer=str(payload["producer"]),
            image_width=int(payload["image_width"]),
            lines=int(payload["lines"]),
            spec=MemorySpec(**spec_payload),
            coalesce_factor=int(payload.get("coalesce_factor", 1)),
            style=str(payload.get("style", "sram")),
            blocks=[BlockAssignment.from_payload(b) for b in payload.get("blocks", [])],
            dff_pixels=int(payload.get("dff_pixels", 0)),
            fifo_chains=int(payload.get("fifo_chains", 1)),
            reader_heights={
                str(name): int(height)
                for name, height in payload.get("reader_heights", {}).items()
            },
        )
