"""Unit tests for the vectorized frame-batch replay (repro.sim.batch)."""

import numpy as np
import pytest

from repro.algorithms import ALGORITHM_NAMES, build_algorithm
from repro.errors import SimulationError
from repro.sim.batch import golden_frames, output_digest, replay_frames, replay_frames_loop

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


class TestGoldenFrames:
    def test_deterministic_for_fixed_seed(self):
        dag = build_chain(2)
        first = golden_frames(dag, W, H, frames=3, seed=7)
        second = golden_frames(dag, W, H, frames=3, seed=7)
        for name in first:
            assert np.array_equal(first[name], second[name])

    def test_seed_changes_frames(self):
        dag = build_chain(2)
        a = golden_frames(dag, W, H, frames=2, seed=0)
        b = golden_frames(dag, W, H, frames=2, seed=1)
        assert any(not np.array_equal(a[name], b[name]) for name in a)

    def test_shape_is_frames_by_height_by_width(self):
        dag = build_chain(2)
        frames = golden_frames(dag, W, H, frames=4, seed=0)
        for stack in frames.values():
            assert stack.shape == (4, H, W)

    def test_rejects_zero_frames(self):
        with pytest.raises(SimulationError):
            golden_frames(build_chain(2), W, H, frames=0)

    def test_rejects_bad_resolution(self):
        with pytest.raises(SimulationError):
            golden_frames(build_chain(2), 0, H)


class TestBatchedReplayParity:
    """The whole-batch NumPy path must be bit-identical to a per-frame loop."""

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_catalog_algorithm_matches_loop(self, name):
        dag = build_algorithm(name)
        batched = replay_frames(dag, W, H, frames=3, seed=11)
        looped = replay_frames_loop(dag, W, H, frames=3, seed=11)
        assert batched.digest == looped.digest
        for output, stack in batched.outputs.items():
            assert np.array_equal(stack, looped.outputs[output])

    def test_paper_example_matches_loop(self):
        dag = build_paper_example()
        batched = replay_frames(dag, W, H, frames=2, seed=0)
        looped = replay_frames_loop(dag, W, H, frames=2, seed=0)
        assert batched.digest == looped.digest

    def test_single_frame_batch(self):
        dag = build_chain(3)
        batched = replay_frames(dag, W, H, frames=1, seed=0)
        assert batched.frames == 1
        assert batched.output().shape == (1, H, W)


class TestOutputDigest:
    def test_digest_is_stable_across_replays(self):
        dag = build_chain(2)
        a = replay_frames(dag, W, H, frames=2, seed=3)
        b = replay_frames(dag, W, H, frames=2, seed=3)
        assert a.digest == b.digest
        assert len(a.digest) == 64  # sha256 hex

    def test_digest_distinguishes_outputs(self):
        dag = build_chain(2)
        a = replay_frames(dag, W, H, frames=2, seed=3)
        b = replay_frames(dag, W, H, frames=2, seed=4)
        assert a.digest != b.digest

    def test_digest_covers_output_names(self):
        values = np.ones((1, 2, 2))
        assert output_digest({"a": values}) != output_digest({"b": values})
