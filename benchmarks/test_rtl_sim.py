"""RTL-simulation smoke benchmark: row vectorization and verdict caching.

Quantifies the two performance claims behind the RTL tier of the verify
service: streaming frames through the elaborated design with whole-row
NumPy evaluation must beat the per-pixel reference interpreter
(`simulate_design_loop`, the differential oracle) by a healthy margin, and
a warm `rtl` verify — a verdict-cache lookup — must be far cheaper than the
cold elaborate-and-simulate it memoises.
"""

from __future__ import annotations

import time

from repro import compile_pipeline
from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.rtl import elaborate_design, generate_verilog, simulate_design, simulate_design_loop
from repro.service import CompileEngine, VerifyEngine, VerifyRequest
from repro.sim.batch import golden_frames

#: Small frames: the per-pixel oracle pays Python dispatch per pixel x stage,
#: the vectorized simulator per row x stage — the gap is the whole point.
W, H = 32, 24


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_vectorized_rtl_sim_is_3x_faster_than_pixel_loop(benchmark):
    """Acceptance: row-vectorized RTL sim >= 3x the per-pixel reference loop."""
    target = CompileTarget(
        build_algorithm("canny-m"), image_width=W, image_height=H
    )
    schedule = compile_pipeline(target).schedule
    design = elaborate_design(generate_verilog(schedule), schedule.dag)
    inputs = golden_frames(schedule.dag, W, H, frames=1, seed=0)

    def both():
        # Warm both paths once so neither pays first-touch allocation cost.
        vec_result = simulate_design(design, schedule, inputs)
        loop_result = simulate_design_loop(design, schedule, inputs)
        assert vec_result.digest == loop_result.digest
        vectorized = min(
            _timed(lambda: simulate_design(design, schedule, inputs))
            for _ in range(3)
        )
        looped = min(
            _timed(lambda: simulate_design_loop(design, schedule, inputs))
            for _ in range(3)
        )
        return vectorized, looped

    vectorized, looped = benchmark.pedantic(both, rounds=1, iterations=1)
    speedup = looped / vectorized if vectorized > 0 else float("inf")
    print(
        f"\nRTL sim ({W}x{H}, canny-m): vectorized {vectorized * 1000:.1f} ms, "
        f"pixel loop {looped * 1000:.1f} ms ({speedup:.1f}x)"
    )
    assert vectorized * 3 <= looped, (
        f"vectorized RTL sim only {speedup:.1f}x faster than the pixel loop"
    )


def test_warm_rtl_verify_is_5x_faster_than_cold(benchmark):
    """Acceptance: a cached rtl verdict >= 5x faster than the cold run."""

    def cold_and_warm():
        engine = CompileEngine(workers=2, executor="thread")
        try:
            verify = VerifyEngine(engine)
            request = VerifyRequest(
                target=CompileTarget(
                    build_algorithm("unsharp-m"), image_width=W, image_height=H
                ),
                check="rtl",
            )
            cold = _timed(lambda: verify.submit(request))
            # Best of several warm calls: one lookup is microseconds, so a
            # badly-timed scheduler preemption must not decide the ratio.
            warm = min(_timed(lambda: verify.submit(request)) for _ in range(5))
            stats = verify.stats()
        finally:
            engine.shutdown()
        return cold, warm, stats

    cold, warm, stats = benchmark.pedantic(cold_and_warm, rounds=1, iterations=1)
    speedup = cold / warm if warm > 0 else float("inf")
    print(
        f"\nRTL verify cache: cold {cold * 1000:.1f} ms, warm {warm * 1000:.3f} ms "
        f"({speedup:.0f}x, memory hits={stats['served_from_memory']})"
    )
    assert stats["served_from_memory"] == 5 and stats["rtl_simulations"] == 1
    assert warm * 5 <= cold, f"warm rtl verify only {speedup:.1f}x faster than cold"
