"""Stress tests for concurrent writers on one shared disk-cache volume.

Regression for the shared-temp-path corruption bug: every writer of a
fingerprint used to stage its JSON at the *same* ``<fp>.tmp`` path, so two
processes (or threads — the file writes drop the GIL) could interleave their
writes and atomically rename corrupt JSON into place.  With per-writer
``mkstemp`` temp files, every rename publishes one writer's complete payload
and every concurrent load parses.
"""

import json
import multiprocessing
import threading

import pytest

from repro.service.cache import DiskCacheStore

#: One well-formed sharded fingerprint all writers fight over.
FINGERPRINT = "ab" + "0" * 62

#: Payloads are multi-kilobyte and writer-specific in size, so interleaved
#: writes from two writers produce either invalid JSON or a blob whose length
#: does not match its "writer" field — both detectable below.
def _payload(writer_id: int) -> dict:
    return {"writer": writer_id, "blob": "x" * (20_000 + writer_id * 1_009)}


def _write_many(directory: str, writer_id: int, iterations: int) -> None:
    store = DiskCacheStore(directory)
    payload = _payload(writer_id)
    for _ in range(iterations):
        store.save(FINGERPRINT, payload)


def _check(payload: dict) -> None:
    assert payload["blob"] == _payload(payload["writer"])["blob"]


class TestConcurrentSameFingerprintWrites:
    def test_threads_and_second_process_never_publish_corrupt_json(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method for an in-repo child process")
        iterations = 60
        store = DiskCacheStore(tmp_path)
        process = multiprocessing.get_context("fork").Process(
            target=_write_many, args=(str(tmp_path), 9, iterations)
        )
        threads = [
            threading.Thread(target=_write_many, args=(str(tmp_path), i, iterations))
            for i in range(3)
        ]
        process.start()
        for thread in threads:
            thread.start()

        # Read continuously while the writers race: every observed entry must
        # be one writer's complete payload.
        entry = store.path_for(FINGERPRINT)
        observed = 0
        try:
            while process.is_alive() or any(t.is_alive() for t in threads):
                try:
                    text = entry.read_text(encoding="utf-8")
                except FileNotFoundError:
                    continue
                _check(json.loads(text))  # raises on interleaved/corrupt writes
                observed += 1
        finally:
            for thread in threads:
                thread.join(timeout=30)
            process.join(timeout=30)
        assert observed > 0

        # The final state parses too, through the store's own reader.
        final = store.load(FINGERPRINT)
        assert final is not None
        _check(final)
        # No temp litter left behind by any of the 4 * iterations saves.
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_concurrent_writers_leave_exactly_one_entry(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        threads = [
            threading.Thread(target=_write_many, args=(str(tmp_path), i, 20))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(store) == 1


def _write_many_bounded(
    directory: str, writer_id: int, iterations: int, max_bytes: int
) -> None:
    store = DiskCacheStore(directory, max_bytes=max_bytes)
    payload = _payload(writer_id)
    for iteration in range(iterations):
        # Spread writes over many fingerprints so eviction has real work.
        fingerprint = f"{(writer_id * iterations + iteration) % 97:02x}" + "f" * 62
        store.save(fingerprint, payload)


class TestBoundedStoreUnderConcurrency:
    """Acceptance: a ``max_bytes`` bound holds under the multi-writer stress."""

    MAX_BYTES = 120_000  # a handful of the ~21 KB payloads

    def test_bound_never_exceeded_by_racing_writers(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method for an in-repo child process")
        iterations = 40
        store = DiskCacheStore(tmp_path, max_bytes=self.MAX_BYTES)
        process = multiprocessing.get_context("fork").Process(
            target=_write_many_bounded, args=(str(tmp_path), 9, iterations, self.MAX_BYTES)
        )
        threads = [
            threading.Thread(
                target=_write_many_bounded,
                args=(str(tmp_path), i, iterations, self.MAX_BYTES),
            )
            for i in range(3)
        ]
        process.start()
        for thread in threads:
            thread.start()
        try:
            # Sample the volume continuously while the writers race.  A save
            # is (write, then GC), so a probe may catch each writer's latest
            # entry before its own GC pass — never more than the bound plus
            # one in-flight entry per concurrent writer.
            slack = 4 * 25_000  # 4 writers x one ~21 KB payload, rounded up
            while process.is_alive() or any(t.is_alive() for t in threads):
                assert store.total_bytes() <= self.MAX_BYTES + slack
        finally:
            for thread in threads:
                thread.join(timeout=60)
            process.join(timeout=60)
        # Once the dust settles the bound holds exactly.
        assert store.total_bytes() <= self.MAX_BYTES
        assert len(store) > 0
        # Every surviving entry parses (eviction never corrupts neighbours).
        for path in tmp_path.rglob("*.json"):
            _check(json.loads(path.read_text(encoding="utf-8")))

    def test_age_bound_evicts_stale_entries(self, tmp_path):
        import time

        store = DiskCacheStore(tmp_path, max_age_seconds=0.2)
        store.save("aa" + "0" * 62, {"writer": 1})
        time.sleep(0.3)
        store.save("bb" + "0" * 62, {"writer": 2})
        assert store.load("aa" + "0" * 62) is None
        assert store.load("bb" + "0" * 62) is not None

    def test_lru_eviction_prefers_recently_loaded_entries(self, tmp_path):
        import os
        import time

        store = DiskCacheStore(tmp_path, max_bytes=3_000)
        old, hot, new = ("aa" + "0" * 62, "bb" + "0" * 62, "cc" + "0" * 62)
        payload = {"blob": "x" * 1_000}
        store.save(old, payload)
        store.save(hot, payload)
        # Backdate both, then touch `hot` via a load: mtime refresh must make
        # the unloaded `old` the eviction victim.
        past = time.time() - 3_600
        for fingerprint in (old, hot):
            os.utime(store.path_for(fingerprint), (past, past))
        assert store.load(hot) is not None
        store.save(new, payload)
        assert store.load(old) is None
        assert store.load(hot) is not None
        assert store.load(new) is not None

    def test_single_oversized_entry_is_evicted_rather_than_kept(self, tmp_path):
        store = DiskCacheStore(tmp_path, max_bytes=1_000)
        assert store.save("aa" + "0" * 62, {"blob": "x" * 5_000})
        assert store.total_bytes() <= 1_000  # the bound wins, entry and all

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCacheStore(tmp_path, max_bytes=0)
        with pytest.raises(ValueError):
            DiskCacheStore(tmp_path, max_age_seconds=-1)

    def test_unbounded_store_never_scans_on_save(self, tmp_path, monkeypatch):
        store = DiskCacheStore(tmp_path)
        monkeypatch.setattr(
            DiskCacheStore,
            "_collect_garbage",
            lambda self: (_ for _ in ()).throw(AssertionError("GC ran unbounded")),
        )
        assert store.save(FINGERPRINT, {"writer": 0})


class TestLegacyFlatTwins:
    """Regression: a fingerprint at both the flat and sharded path counted twice."""

    def _seed_twins(self, store: DiskCacheStore) -> None:
        store.save(FINGERPRINT, {"tier": "sharded"})
        store.legacy_path_for(FINGERPRINT).write_text(
            json.dumps({"tier": "flat"}), encoding="utf-8"
        )

    def test_len_counts_each_fingerprint_once(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        self._seed_twins(store)
        assert len(store) == 1

    def test_clear_removes_both_twins(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        self._seed_twins(store)
        store.clear()
        assert list(tmp_path.rglob("*.json")) == []
        assert len(store) == 0

    def test_save_unlinks_the_legacy_entry_it_shadows(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        legacy = store.legacy_path_for(FINGERPRINT)
        legacy.write_text(json.dumps({"tier": "flat"}), encoding="utf-8")
        assert store.save(FINGERPRINT, {"tier": "sharded"})
        assert not legacy.exists()
        assert store.load(FINGERPRINT) == {"tier": "sharded"}
        assert len(store) == 1

    def test_clear_sweeps_stale_temp_files(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.save(FINGERPRINT, {"tier": "sharded"})
        # A writer that died mid-save leaves its unique temp file behind.
        (store.path_for(FINGERPRINT).parent / f"{FINGERPRINT}.dead123.tmp").write_text(
            "{", encoding="utf-8"
        )
        store.clear()
        assert list(tmp_path.rglob("*")) == [store.path_for(FINGERPRINT).parent]
