"""Unit tests for the two-tier compile cache and schedule serialization."""

import pytest

from repro.core.compiler import compile_pipeline
from repro.core.scheduler import SchedulerOptions
from repro.memory.spec import asic_dual_port
from repro.service.cache import (
    CompileCache,
    DiskCacheStore,
    deserialize_schedule,
    serialize_schedule,
)

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT
SPEC = asic_dual_port()


def _compile(dag, cache=None, **kwargs):
    return compile_pipeline(dag, image_width=W, image_height=H, cache=cache, **kwargs)


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = CompileCache()
        dag = build_paper_example()
        first = _compile(dag, cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        second = _compile(build_paper_example(), cache)
        assert cache.stats.hits == 1
        # The same solved schedule object is served, no re-solve happened.
        assert second.schedule is first.schedule

    def test_repeated_compile_served_from_cache_without_second_solve(self):
        cache = CompileCache()
        dag = build_chain(3)
        _compile(dag, cache)
        solves_before = cache.stats.misses
        _compile(dag, cache)
        _compile(dag, cache)
        assert cache.stats.misses == solves_before  # no new ILP solves
        assert cache.stats.hits == 2

    def test_distinct_requests_do_not_collide(self):
        cache = CompileCache()
        dag = build_chain(3)
        a = _compile(dag, cache)
        b = _compile(dag, cache, options=SchedulerOptions(ports=1))
        assert cache.stats.misses == 2
        assert a.schedule is not b.schedule

    def test_lru_eviction_and_stats(self):
        cache = CompileCache(max_entries=2)
        dags = [build_chain(n) for n in (2, 3, 4)]
        for dag in dags:
            _compile(dag, cache)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.stats.stores == 3
        # The oldest entry (2-stage chain) was evicted: compiling it again misses.
        misses = cache.stats.misses
        _compile(dags[0], cache)
        assert cache.stats.misses == misses + 1
        # The newest entry is still resident.
        hits = cache.stats.hits
        _compile(dags[2], cache)
        assert cache.stats.hits == hits + 1

    def test_hit_rate(self):
        cache = CompileCache()
        dag = build_chain(3)
        _compile(dag, cache)
        _compile(dag, cache)
        assert cache.stats.requests == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_clear_resets_entries_and_stats(self):
        cache = CompileCache()
        _compile(build_chain(3), cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.requests == 0


class TestSerialization:
    def test_round_trip_schedule_equality(self):
        dag = build_paper_example()
        original = _compile(dag).schedule
        restored = deserialize_schedule(serialize_schedule(original), dag)
        assert restored.start_cycles == original.start_cycles
        assert restored.coalesce_factors == original.coalesce_factors
        assert restored.generator == original.generator
        assert restored.total_allocated_bits == original.total_allocated_bits
        assert restored.total_blocks == original.total_blocks
        assert set(restored.line_buffers) == set(original.line_buffers)
        for name, config in original.line_buffers.items():
            assert restored.line_buffers[name].lines == config.lines
            assert restored.line_buffers[name].num_blocks == config.num_blocks

    def test_payload_is_json_serializable(self):
        import json

        payload = serialize_schedule(_compile(build_chain(3)).schedule)
        assert json.loads(json.dumps(payload)) == payload

    def test_version_mismatch_rejected(self):
        dag = build_chain(3)
        payload = serialize_schedule(_compile(dag).schedule)
        payload["version"] = 999
        with pytest.raises(ValueError):
            deserialize_schedule(payload, dag)


class TestDiskTier:
    def test_round_trip_reports_identical(self, tmp_path):
        dag = build_paper_example()
        warm = CompileCache(store=DiskCacheStore(tmp_path))
        first = _compile(dag, warm)
        assert warm.stats.disk_stores == 1

        # A fresh cache with an empty memory tier must be served from disk.
        cold = CompileCache(store=DiskCacheStore(tmp_path))
        second = _compile(build_paper_example(), cold)
        assert cold.stats.hits == 1 and cold.stats.disk_hits == 1
        assert cold.stats.misses == 0

        area_a, area_b = first.area_report(), second.area_report()
        power_a, power_b = first.power_report(), second.power_report()
        assert area_a.memory_mm2 == area_b.memory_mm2
        assert area_a.total_mm2 == area_b.total_mm2
        assert area_a.sram_blocks == area_b.sram_blocks
        assert power_a.memory_mw == power_b.memory_mw
        assert power_a.total_mw == power_b.total_mw

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        dag = build_chain(3)
        _compile(dag, CompileCache(store=store))
        cache = CompileCache(store=store)
        _compile(dag, cache)
        assert cache.stats.disk_hits == 1
        _compile(dag, cache)
        assert cache.stats.hits == 2
        assert cache.stats.disk_hits == 1  # second hit came from memory

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        dag = build_chain(3)
        cache = CompileCache(store=store)
        _compile(dag, cache)
        for path in store.directory.rglob("*.json"):
            path.write_text("{not json", encoding="utf-8")
        cold = CompileCache(store=store)
        _compile(dag, cold)
        assert cold.stats.misses == 1
        assert cold.stats.hits == 0

    def test_stale_schema_disk_entry_degrades_to_miss(self, tmp_path):
        """Same format version but drifted payload fields must not crash."""
        import json

        store = DiskCacheStore(tmp_path)
        dag = build_chain(3)
        _compile(dag, CompileCache(store=store))
        for path in store.directory.rglob("*.json"):
            payload = json.loads(path.read_text(encoding="utf-8"))
            payload["memory_spec"]["surprise_field"] = 1  # e.g. newer library
            path.write_text(json.dumps(payload), encoding="utf-8")
        cold = CompileCache(store=store)
        result = _compile(dag, cold)
        assert cold.stats.misses == 1 and cold.stats.hits == 0
        assert result.schedule.total_blocks > 0

    def test_failed_disk_write_not_counted_as_store(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.directory = tmp_path / "missing"  # writes will fail with OSError
        cache = CompileCache(store=store)
        _compile(build_chain(3), cache)
        assert cache.stats.stores == 1
        assert cache.stats.disk_stores == 0

    def test_store_len_and_clear(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        cache = CompileCache(store=store)
        _compile(build_chain(2), cache)
        _compile(build_chain(3), cache)
        assert len(store) == 2
        store.clear()
        assert len(store) == 0


class TestShardedStore:
    def test_entries_land_in_prefix_subdirectories(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        cache = CompileCache(store=store)
        _compile(build_chain(3), cache)
        entries = list(store.directory.rglob("*.json"))
        assert len(entries) == 1
        (entry,) = entries
        # <dir>/<first two hex chars>/<fingerprint>.json
        assert entry.parent.parent == store.directory
        assert entry.parent.name == entry.stem[:2]
        assert len(entry.parent.name) == 2

    def test_legacy_flat_entries_are_read_transparently(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        dag = build_chain(3)
        _compile(dag, CompileCache(store=store))
        # Demote the sharded entry to the pre-sharding flat layout.
        (entry,) = list(store.directory.rglob("*.json"))
        flat = store.directory / entry.name
        entry.replace(flat)
        entry.parent.rmdir()
        assert len(store) == 1  # flat entries still counted
        cold = CompileCache(store=store)
        _compile(dag, cold)
        assert cold.stats.disk_hits == 1 and cold.stats.misses == 0

    def test_sharded_entry_wins_over_stale_flat_twin(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        dag = build_chain(3)
        _compile(dag, CompileCache(store=store))
        (entry,) = list(store.directory.rglob("*.json"))
        # A corrupt leftover at the legacy path must not shadow the shard.
        (store.directory / entry.name).write_text("{not json", encoding="utf-8")
        cold = CompileCache(store=store)
        _compile(dag, cold)
        assert cold.stats.disk_hits == 1

    def test_clear_removes_flat_and_sharded_entries(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        cache = CompileCache(store=store)
        _compile(build_chain(2), cache)
        (entry,) = list(store.directory.rglob("*.json"))
        (store.directory / ("0" * 64 + ".json")).write_text("{}", encoding="utf-8")
        assert len(store) == 2
        store.clear()
        assert len(store) == 0


class TestBaselineCaching:
    def test_baseline_schedule_persists_to_disk(self, tmp_path):
        """Baselines round-trip through the disk tier like optimized designs.

        Their payloads embed the full line-buffer configurations (FIFO
        chains, DFF pixels, adapted specs) because the ImaGen allocator
        cannot re-derive them from the solver decisions.
        """
        from repro.api import CompileTarget
        from repro.estimate.report import accelerator_report

        store = DiskCacheStore(tmp_path)
        cache = CompileCache(store=store)
        target = CompileTarget(
            build_paper_example(), image_width=W, image_height=H, generator="darkroom"
        )
        first = compile_pipeline(target, cache=cache)
        assert cache.stats.misses == 1
        assert len(store) == 1
        assert cache.stats.disk_stores == 1

        # A fresh cache (empty memory tier) on the same volume loads it warm.
        cold = CompileCache(store=DiskCacheStore(tmp_path))
        second = compile_pipeline(target, cache=cold)
        assert cold.stats.disk_hits == 1 and cold.stats.misses == 0
        assert second.schedule.generator == "darkroom"
        assert accelerator_report(second.schedule).row() == accelerator_report(
            first.schedule
        ).row()
        for name, config in first.schedule.line_buffers.items():
            assert second.schedule.line_buffers[name].to_payload() == config.to_payload()

    @pytest.mark.parametrize("generator", ["darkroom", "soda", "fixynn"])
    def test_every_baseline_generator_round_trips(self, tmp_path, generator):
        from repro.api import CompileTarget

        target = CompileTarget(
            build_paper_example(), image_width=W, image_height=H, generator=generator
        )
        warm = compile_pipeline(target, cache=CompileCache(store=DiskCacheStore(tmp_path)))
        cold_cache = CompileCache(store=DiskCacheStore(tmp_path))
        cold = compile_pipeline(target, cache=cold_cache)
        assert cold_cache.stats.disk_hits == 1
        assert cold.schedule.total_allocated_bits == warm.schedule.total_allocated_bits
        assert cold.schedule.total_blocks == warm.schedule.total_blocks
        assert cold.schedule.total_dff_pixels == warm.schedule.total_dff_pixels
        assert cold.schedule.start_cycles == warm.schedule.start_cycles

    def test_baseline_and_imagen_fingerprints_do_not_collide(self):
        from repro.api import CompileTarget

        cache = CompileCache()
        dag = build_paper_example()
        ours = compile_pipeline(CompileTarget(dag, image_width=W, image_height=H), cache=cache)
        fixynn = compile_pipeline(
            CompileTarget(dag, image_width=W, image_height=H, generator="fixynn"),
            cache=cache,
        )
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert ours.schedule.generator == "imagen"
        assert fixynn.schedule.generator == "fixynn"
