#!/usr/bin/env python3
"""Pluggable executor backends: one engine API, three execution strategies.

The same catalog batch is compiled three ways — ``inline`` (deterministic,
on the calling thread), ``thread`` (the default pool) and ``process``
(worker processes talking wire payloads) — and the results are shown to be
bit-identical: fingerprints and area/power report rows do not depend on
where a job ran.  The process backend is the one that keeps fan-out parallel
even when the HiGHS solver is unavailable and the pure-Python fallback would
serialize threads on the GIL.

The second half demonstrates what the process boundary is built on: a
baseline (Darkroom) design compiled by one process is persisted — full
line-buffer configuration and all — to a shared :class:`DiskCacheStore`
volume, and a second, cold engine on the same volume answers the identical
request from disk without running any generator.

Run:  python examples/executor_backends.py
"""

from __future__ import annotations

import tempfile
import time

from repro import CompileEngine, CompileTarget
from repro.algorithms import algorithm_names, build_algorithm
from repro.estimate.report import accelerator_report

W, H = 480, 320


def compile_catalog(executor: str) -> tuple[list, float]:
    targets = [
        CompileTarget(build_algorithm(name), image_width=W, image_height=H, label=name)
        for name in algorithm_names()
    ]
    with CompileEngine(workers=4, executor=executor) as engine:
        started = time.perf_counter()
        batch = engine.submit_batch(targets)
        seconds = time.perf_counter() - started
    batch.raise_on_error()
    rows = [
        (result.fingerprint, accelerator_report(result.accelerator).row())
        for result in batch.results
    ]
    return rows, seconds


def main() -> None:
    print(f"catalog: {', '.join(algorithm_names())} @ {W}x{H}\n")
    outcomes = {}
    for executor in ("inline", "thread", "process"):
        rows, seconds = compile_catalog(executor)
        outcomes[executor] = rows
        print(f"  executor={executor:<8} {len(rows)} designs in {seconds:.2f}s")
    assert outcomes["inline"] == outcomes["thread"] == outcomes["process"]
    print("\nall three backends produced identical fingerprints and reports\n")

    with tempfile.TemporaryDirectory(prefix="imagen-cache-") as volume:
        darkroom = CompileTarget(
            build_algorithm("unsharp-m"),
            image_width=W,
            image_height=H,
            generator="darkroom",
        )
        with CompileEngine(workers=2, executor="process", cache_dir=volume) as writer:
            first = writer.submit(darkroom)
            print(
                f"process A compiled darkroom design: source={first.source}, "
                f"{first.seconds * 1000:.1f} ms"
            )
        # A brand-new engine: empty memory tier, same shared volume.
        with CompileEngine(workers=2, executor="process", cache_dir=volume) as reader:
            second = reader.submit(darkroom)
            print(
                f"process B loaded it from the shared volume: source={second.source}, "
                f"{second.seconds * 1000:.1f} ms"
            )
            assert second.source == "disk"
            assert (
                accelerator_report(second.accelerator).row()
                == accelerator_report(first.accelerator).row()
            )
    print("\nbaseline round-tripped through DiskCacheStore with identical reports")


if __name__ == "__main__":
    main()
