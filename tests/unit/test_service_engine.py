"""Unit tests for the CompileEngine: caching, batching, dedup, DSE wiring."""

import threading
import time

import pytest

from repro.algorithms import build_algorithm
from repro.core.compiler import compile_pipeline
from repro.core.scheduler import SchedulerOptions
from repro.dse.sweep import sweep_memory_configurations
from repro.errors import ReproError
from repro.service import (
    CompileCache,
    CompileEngine,
    CompileRequest,
    CompileStatus,
)

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


@pytest.fixture
def engine():
    # Pinned to the thread backend: these tests assert in-process semantics
    # (schedule object identity across dedup twins, monkeypatched solvers,
    # parent-cache hit accounting) that the process backend intentionally
    # trades away.  Cross-backend behaviour lives in test_service_executor /
    # the integration parity suite.
    engine = CompileEngine(workers=2, executor="thread")
    yield engine
    engine.shutdown()


class TestSingleRequests:
    def test_compile_matches_direct_compile_pipeline(self, engine):
        dag = build_paper_example()
        via_engine = engine.compile(dag, image_width=W, image_height=H)
        direct = compile_pipeline(dag, image_width=W, image_height=H)
        assert via_engine.schedule.start_cycles == direct.schedule.start_cycles
        assert via_engine.schedule.total_allocated_bits == direct.schedule.total_allocated_bits

    def test_second_compile_is_a_cache_hit(self, engine):
        dag = build_paper_example()
        first = engine.compile(dag, image_width=W, image_height=H)
        second = engine.compile(build_paper_example(), image_width=W, image_height=H)
        assert engine.cache.stats.hits == 1
        assert engine.cache.stats.misses == 1
        assert second.schedule is first.schedule
        assert engine.metrics.served_from_cache == 1

    def test_submit_reports_latency_and_source(self, engine):
        result = engine.submit(
            CompileRequest(dag=build_chain(3), image_width=W, image_height=H, label="chain")
        )
        assert result.ok
        assert result.status is CompileStatus.OK
        assert result.source == "solver"
        assert result.seconds > 0
        assert result.fingerprint
        repeat = engine.submit(
            CompileRequest(dag=build_chain(3), image_width=W, image_height=H)
        )
        assert repeat.source == "memory"
        assert repeat.from_cache

    def test_error_captured_not_raised(self, engine):
        result = engine.submit(
            CompileRequest(dag=build_chain(3), image_width=1, image_height=H)
        )
        assert not result.ok
        assert result.status is CompileStatus.ERROR
        assert "SchedulingError" in result.error
        with pytest.raises(ReproError):
            result.unwrap()
        assert engine.metrics.errors == 1

    def test_caller_options_not_mutated(self, engine):
        options = SchedulerOptions()
        engine.compile(
            build_chain(3), image_width=W, image_height=H, options=options, coalescing=True
        )
        assert options.coalescing is False

    def test_compile_pipeline_does_not_mutate_caller_options(self):
        options = SchedulerOptions()
        compile_pipeline(
            build_chain(3), image_width=W, image_height=H, options=options, coalescing=True
        )
        assert options.coalescing is False

    def test_coalescing_fallback_reuses_plain_solve(self, engine):
        dag = build_paper_example()
        engine.compile(dag, image_width=W, image_height=H)
        assert engine.cache.stats.misses == 1
        # The auto-policy +LC compile solves the coalesced ILP but takes the
        # non-coalesced solve straight from the cache.
        engine.compile(build_paper_example(), image_width=W, image_height=H, coalescing=True)
        assert engine.cache.stats.hits == 1
        assert engine.cache.stats.misses == 2


class TestBatches:
    def test_batch_preserves_order_and_dedupes(self, engine):
        requests = [
            CompileRequest(dag=build_chain(3), image_width=W, image_height=H, label="a"),
            CompileRequest(dag=build_chain(4), image_width=W, image_height=H, label="b"),
            CompileRequest(dag=build_chain(3), image_width=W, image_height=H, label="c"),
        ]
        batch = engine.submit_batch(requests)
        assert [r.request.label for r in batch.results] == ["a", "b", "c"]
        assert all(r.ok for r in batch.results)
        sources = [r.source for r in batch.results]
        assert sources.count("deduplicated") == 1
        # Deduplicated twins share the identical accelerator.
        assert batch.results[2].accelerator.schedule is batch.results[0].accelerator.schedule
        assert engine.metrics.deduplicated == 1
        assert batch.seconds > 0
        assert batch.cache_stats is not None

    def test_one_bad_design_point_does_not_kill_the_batch(self, engine):
        requests = [
            CompileRequest(dag=build_chain(3), image_width=W, image_height=H, label="good"),
            CompileRequest(dag=build_chain(3), image_width=1, image_height=H, label="bad"),
            CompileRequest(dag=build_chain(4), image_width=W, image_height=H, label="good2"),
        ]
        batch = engine.submit_batch(requests)
        assert len(batch.ok_results) == 2
        assert len(batch.failures) == 1
        assert batch.failures[0].request.label == "bad"
        with pytest.raises(ReproError, match="1/3"):
            batch.raise_on_error()

    def test_accelerators_helper_skips_failures(self, engine):
        batch = engine.submit_batch(
            [
                CompileRequest(dag=build_chain(3), image_width=W, image_height=H),
                CompileRequest(dag=build_chain(3), image_width=1, image_height=H),
            ]
        )
        assert len(batch.accelerators) == 1


class TestRepeatedCompilePipeline:
    def test_compile_pipeline_with_cache_skips_second_solve(self):
        """Acceptance: a repeated compile_pipeline call is served from cache."""
        cache = CompileCache()
        dag = build_paper_example()
        first = compile_pipeline(dag, image_width=W, image_height=H, cache=cache)
        hits_before = cache.stats.hits
        second = compile_pipeline(dag, image_width=W, image_height=H, cache=cache)
        assert cache.stats.hits == hits_before + 1
        assert cache.stats.misses == 1  # only the first call solved the ILP
        assert second.schedule is first.schedule
        assert second.metadata["schedule_sources"] == ("memory",)


class TestSweepIntegration:
    def test_parallel_sweep_equals_serial_sweep(self, engine):
        serial = sweep_memory_configurations(
            build_algorithm("unsharp-m"), image_width=W, image_height=H
        )
        parallel = sweep_memory_configurations(
            build_algorithm("unsharp-m"), image_width=W, image_height=H, engine=engine
        )
        assert [p.label for p in serial] == [p.label for p in parallel]
        assert [p.area_mm2 for p in serial] == [p.area_mm2 for p in parallel]
        assert [p.power_mw for p in serial] == [p.power_mw for p in parallel]
        assert [p.configuration for p in serial] == [p.configuration for p in parallel]
        # The all-DP design point was served from the baseline's cache entry.
        assert engine.cache.stats.hits >= 1

    def test_parallel_convenience_flag(self):
        points = sweep_memory_configurations(
            build_chain(3), image_width=W, image_height=H, parallel=2
        )
        serial = sweep_memory_configurations(build_chain(3), image_width=W, image_height=H)
        assert [p.label for p in points] == [p.label for p in serial]
        assert [p.area_mm2 for p in points] == [p.area_mm2 for p in serial]

    def test_serial_sweep_reuses_baseline_compile(self):
        """The all-DP point is the baseline accelerator, not a recompile."""
        points = sweep_memory_configurations(
            build_chain(3, stencil=3), image_width=W, image_height=H
        )
        all_dp = next(p for p in points if p.label == "all-DP")
        # Baseline compiles with default options (auto policy), the sweep's
        # other points use the explicit per-stage policy.
        assert all_dp.accelerator.options.coalescing_policy == "auto"

    def test_warm_engine_resweep_is_all_hits(self, engine):
        dag = build_algorithm("unsharp-m")
        sweep_memory_configurations(dag, image_width=W, image_height=H, engine=engine)
        misses_before = engine.cache.stats.misses
        again = sweep_memory_configurations(dag, image_width=W, image_height=H, engine=engine)
        assert engine.cache.stats.misses == misses_before  # zero new ILP solves
        assert all(p.area_mm2 > 0 for p in again)

    def test_sweep_accepts_base_target(self, engine):
        from repro.api import CompileTarget

        target = CompileTarget(build_algorithm("unsharp-m"), image_width=W, image_height=H)
        via_target = sweep_memory_configurations(target, engine=engine)
        via_kwargs = sweep_memory_configurations(
            build_algorithm("unsharp-m"), image_width=W, image_height=H
        )
        assert [p.label for p in via_target] == [p.label for p in via_kwargs]
        assert [p.area_mm2 for p in via_target] == [p.area_mm2 for p in via_kwargs]

    def test_coalesced_base_target_does_not_leak_into_all_dp_point(self):
        """The baseline/all-DP compile must ignore the base's coalescing flag."""
        from repro.api import CompileTarget

        plain = CompileTarget(build_algorithm("unsharp-m"), image_width=W, image_height=H)
        coalesced = plain.with_options(coalescing=True)
        from_plain = sweep_memory_configurations(plain)
        from_coalesced = sweep_memory_configurations(coalesced)
        assert [p.label for p in from_coalesced] == [p.label for p in from_plain]
        assert [p.area_mm2 for p in from_coalesced] == [p.area_mm2 for p in from_plain]
        all_dp = next(p for p in from_coalesced if p.label == "all-DP")
        assert all_dp.accelerator.schedule.generator == "imagen"  # not "imagen+lc"


class TestInlineSubmitDedup:
    """Regression: inline ``submit`` must join the in-flight dedup table.

    It used to call ``_execute`` directly, so a sync submit racing an
    async/batch submit of the same fingerprint ran two solves — breaking the
    engine's "exactly one solve" guarantee.
    """

    @pytest.fixture
    def gated_solver(self, monkeypatch):
        """Make every solve block on a gate, counting entries."""
        import repro.service.engine as engine_mod

        real = engine_mod.compile_pipeline
        state = {
            "calls": 0,
            "entered": threading.Event(),
            "release": threading.Event(),
            "lock": threading.Lock(),
        }

        def gated(target, cache=None):
            with state["lock"]:
                state["calls"] += 1
            state["entered"].set()
            assert state["release"].wait(timeout=30)
            return real(target, cache=cache)

        monkeypatch.setattr(engine_mod, "compile_pipeline", gated)
        yield state
        state["release"].set()  # never leave blocked threads behind

    def _race(self, engine, first, second, gate):
        """Start ``first``, wait until it is solving, race ``second`` into it."""
        results = {}
        threads = [
            threading.Thread(target=lambda: results.update(first=first())),
        ]
        threads[0].start()
        assert gate["entered"].wait(timeout=30)
        threads.append(threading.Thread(target=lambda: results.update(second=second())))
        threads[1].start()
        # Give the second submitter time to (wrongly) start its own solve
        # before opening the gate; post-fix it is parked on the owner future.
        time.sleep(0.3)
        gate["release"].set()
        for thread in threads:
            thread.join(timeout=30)
        return results

    def test_sync_submit_joins_inflight_batch_solve(self, engine, gated_solver):
        """Acceptance: mixed submit paths record exactly one ``compiled``."""
        from repro.api import CompileTarget

        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        results = self._race(
            engine,
            first=lambda: engine.submit_batch([target]),
            second=lambda: engine.submit(target),
            gate=gated_solver,
        )
        assert gated_solver["calls"] == 1  # exactly one solve ran
        assert engine.metrics.compiled == 1
        assert engine.metrics.deduplicated == 1
        assert results["second"].source == "deduplicated"
        assert (
            results["second"].accelerator.schedule
            is results["first"].results[0].accelerator.schedule
        )

    def test_batch_joins_inflight_inline_submit(self, engine, gated_solver):
        """The reverse race: an inline submit owns the solve, a batch joins it."""
        from repro.api import CompileTarget

        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        results = self._race(
            engine,
            first=lambda: engine.submit(target),
            second=lambda: engine.submit_batch([target]),
            gate=gated_solver,
        )
        assert gated_solver["calls"] == 1
        assert engine.metrics.compiled == 1
        assert results["first"].source == "solver"
        assert results["second"].results[0].source == "deduplicated"

    def test_concurrent_inline_submits_share_one_solve(self, engine, gated_solver):
        from repro.api import CompileTarget

        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        results = self._race(
            engine,
            first=lambda: engine.submit(target),
            second=lambda: engine.submit(target),
            gate=gated_solver,
        )
        assert gated_solver["calls"] == 1
        sources = sorted((results["first"].source, results["second"].source))
        assert sources == ["deduplicated", "solver"]
        assert engine.metrics.requests == 2
        assert engine.metrics.compiled == 1

    def test_inline_owner_future_is_cancel_proof(self, engine, gated_solver):
        """A joiner cancelling the published future must not break the owner.

        The inline future is marked running before publication, so cancel()
        from e.g. a timed-out asyncio wrapper is a no-op instead of flipping
        the future into a state where the owner's set_result() raises.
        """
        from repro.api import CompileTarget

        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        results = {}
        owner = threading.Thread(target=lambda: results.update(r=engine.submit(target)))
        owner.start()
        assert gated_solver["entered"].wait(timeout=30)
        future = engine._inflight[target.fingerprint]
        assert future.cancel() is False  # joiner cancels are no-ops
        gated_solver["release"].set()
        owner.join(timeout=30)
        assert results["r"].ok and results["r"].source == "solver"
        assert future.result(timeout=30).fingerprint == target.fingerprint

    def test_sequential_submits_do_not_dedup(self, engine):
        """No in-flight twin: the second submit is a plain cache hit."""
        from repro.api import CompileTarget

        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        assert engine.submit(target).source == "solver"
        assert engine.submit(target).source == "memory"
        assert engine.metrics.deduplicated == 0
        assert not engine._inflight  # the inline future was unpublished


class TestBaselineRequests:
    """Baseline generators are served through the same engine and cache."""

    def test_repeated_baseline_served_from_cache(self, engine):
        """Acceptance: a repeated generate_baseline design point is a cache hit."""
        from repro.api import CompileTarget

        target = CompileTarget(
            build_paper_example(), image_width=W, image_height=H, generator="darkroom"
        )
        first = engine.submit(target)
        assert first.ok and first.source == "solver"
        assert engine.cache.stats.misses == 1
        second = engine.submit(target)
        assert second.source == "memory" and second.from_cache
        assert engine.cache.stats.hits == 1
        assert engine.metrics.served_from_cache == 1
        assert second.accelerator.schedule is first.accelerator.schedule
        assert second.accelerator.schedule.generator == "darkroom"

    def test_mixed_generator_batch(self, engine):
        from repro.api import CompileTarget

        base = CompileTarget(build_paper_example(), image_width=W, image_height=H)
        batch = engine.submit_batch(
            [base, base.with_generator("fixynn"), base.with_generator("soda")]
        )
        assert [r.accelerator.schedule.generator for r in batch.results] == [
            "imagen",
            "fixynn",
            "soda",
        ]
        assert len({r.fingerprint for r in batch.results}) == 3

    def test_unknown_generator_is_captured_as_error(self, engine):
        from repro.api import CompileTarget

        result = engine.submit(
            CompileTarget(build_chain(3), image_width=W, image_height=H, generator="halide")
        )
        assert not result.ok
        assert "BaselineError" in result.error

    def test_baseline_result_refuses_lossy_legacy_request_view(self, engine):
        from repro.api import CompileTarget

        result = engine.submit(
            CompileTarget(build_chain(3), image_width=W, image_height=H, generator="soda")
        )
        assert result.ok
        # CompileRequest cannot express a generator: converting would silently
        # re-describe the design as an ImaGen compile, so it must refuse.
        with pytest.raises(ValueError, match="soda"):
            result.request


class TestWorkerSizing:
    def test_env_override(self, monkeypatch):
        from repro.service import default_worker_count

        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_worker_count() == 3
        assert CompileEngine().workers == 3

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert CompileEngine(workers=5).workers == 5

    def test_invalid_env_rejected_with_value_error(self, monkeypatch):
        """Regression: 0/negative/garbage REPRO_WORKERS used to be silently
        ignored (mis-sizing production pools); they must fail loudly now."""
        from repro.service import default_worker_count

        for bad in ("zero", "0", "-2", "1.5", ""):
            monkeypatch.setenv("REPRO_WORKERS", bad)
            if not bad.strip():
                default_worker_count()  # unset/blank still means "auto"
                continue
            with pytest.raises(ValueError, match="REPRO_WORKERS"):
                default_worker_count()
            with pytest.raises(ValueError, match="REPRO_WORKERS"):
                CompileEngine()

    def test_invalid_explicit_workers_rejected(self):
        for bad in (0, -3, "four"):
            with pytest.raises(ValueError, match="workers"):
                CompileEngine(workers=bad)
