#!/usr/bin/env python3
"""RTL-level and performance verdicts over HTTP: verify the Verilog itself.

Boots the HTTP front on an ephemeral port and drives the two v2 check kinds
of `POST /v1/verify`: `rtl` streams seeded golden frames through a
pure-Python simulation of the *generated Verilog* and demands bit-exact
agreement with the functional replay; `perf` measures achieved cycles/frame
from the elaborated design and compares it against the schedule's ILP
bound. Both flow through the same verdict cache, dedup and tracing tiers as
every other check — the warm calls below are cache lookups.

The same checks double as the CI smoke for the RTL tier, so every assertion
here is a service-level guarantee.

Run:  python examples/verify_rtl.py
"""

from __future__ import annotations

import tempfile

from repro import CompileEngine, CompileTarget
from repro.algorithms import build_algorithm
from repro.rtl.sim import external_simulator
from repro.service import ServiceClient, start_server


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="imagen-rtl-") as cache_dir:
        engine = CompileEngine(workers=2, cache_dir=cache_dir)
        server = start_server(engine)  # port=0: ephemeral
        client = ServiceClient(port=server.port)
        try:
            print(f"service on http://127.0.0.1:{server.port}  {client.health()}")
            tool = external_simulator()
            print(f"external HDL tool: {tool or 'none (pure-Python path only)'}")

            target = CompileTarget(
                build_algorithm("unsharp-m"), image_width=128, image_height=96
            )

            # Cold rtl verify: compile, generate Verilog, elaborate it back
            # from the source text, stream golden frames through it, and
            # compare bit-for-bit with the vectorized functional replay.
            cold = client.verify(target, check="rtl", trace=True)
            warm = client.verify(target, check="rtl")
            for tag, verdict in (("cold", cold), ("warm", warm)):
                print(
                    f"  rtl {tag}: passed={verdict['passed']} "
                    f"source={verdict['source']:<8} "
                    f"{verdict['seconds'] * 1000:7.1f} ms  "
                    f"digest={verdict['rtl']['rtl_digest'][:12]}…"
                )
            assert cold["ok"] and cold["passed"]
            assert cold["rtl"]["rtl_digest"] == cold["rtl"]["digest"]
            assert cold["source"] == "verified"
            assert warm["source"] in ("memory", "disk"), warm["source"]
            spans = [child["name"] for child in cold["spans"][0]["children"]]
            assert "verify_rtl" in spans, spans
            print(f"  traced spans: verify > {', '.join(spans)}")

            # perf: achieved cycles/frame from the parsed design vs the
            # schedule's end-to-end latency bound.
            perf = client.verify(target, check="perf")
            report = perf["perf"]
            assert perf["passed"]
            assert report["cycles_per_frame"] <= report["bound_cycles_per_frame"]
            print(
                f"  perf: {report['cycles_per_frame']} cycles/frame "
                f"(bound {report['bound_cycles_per_frame']}, "
                f"II {report['initiation_interval']}, "
                f"startup {report['startup_cycles']})"
            )

            # Baseline generators emit different structures (FIFO chains,
            # relays) — their Verilog must still compute identical pixels.
            for generator in ("darkroom", "soda", "fixynn"):
                verdict = client.verify(target.with_generator(generator), check="rtl")
                assert verdict["passed"], (generator, verdict)
                assert verdict["rtl"]["rtl_digest"] == cold["rtl"]["rtl_digest"]
                print(f"  {generator:<9} rtl digest matches imagen's")

            metrics = client.metrics()
            print(
                f"  counters: rtl_simulations={metrics['verify_rtl_simulations']} "
                f"perf_measurements={metrics['verify_perf_measurements']} "
                f"memory_hits={metrics['verify_served_from_memory']}"
            )
            assert metrics["verify_rtl_simulations"] >= 4
            assert metrics["verify_perf_measurements"] >= 1
        finally:
            server.stop()
            engine.shutdown()
    print("OK")


if __name__ == "__main__":
    main()
