"""Compilation service layer: content-addressed caching and batch execution.

Stability: public.  (Every ``repro.service.*`` module carries its own
``Stability:`` marker; everything re-exported here is public API.)

This package turns :func:`repro.core.compile_pipeline` into a serving
subsystem (the ROADMAP's "heavy traffic" direction).  Its unit of work is the
unified :class:`repro.api.CompileTarget` request object:

* :mod:`repro.service.cache` — two-tier (LRU + sharded disk) schedule cache
  with optional size/age GC for shared volumes;
* :mod:`repro.service.jobs` — typed result/batch records, job execution
  (including the process-pool wire-payload task) and the legacy
  :class:`CompileRequest`, kept as a deprecated shim;
* :mod:`repro.service.executor` — pluggable execution backends
  (``inline``/``thread``/``process`` plus the autoscaling
  ``thread:auto``/``process:auto``), selected via
  ``CompileEngine(executor=...)`` or ``REPRO_EXECUTOR``;
* :mod:`repro.service.metrics` — per-request latency/hit-rate metrics and
  the per-stage span histograms;
* :mod:`repro.service.observability` — the span tracer (re-exported from
  :mod:`repro.trace`), the :class:`MetricSpec` registry declaring every
  exposed metric key, and the Prometheus text-exposition renderer behind
  ``GET /v1/metrics?format=prometheus``;
* :mod:`repro.service.admission` — admission control: bearer-token
  authentication, per-identity token-bucket rate limiting, and the bounded
  fair submission queue behind ``CompileEngine(max_pending=...)``;
* :mod:`repro.service.engine` — the :class:`CompileEngine` front door, with
  synchronous (``submit``/``submit_batch``) and asyncio
  (``submit_async``/``submit_batch_async``) serving fronts plus opt-in
  speculative pre-warming;
* :mod:`repro.service.verify` — verification-as-a-service: the
  :class:`VerifyEngine` answering golden-replay and cycle-legality checks
  with cached, deduplicated, admission-controlled verdicts
  (``POST /v1/verify``);
* :mod:`repro.service.events` — the structured JSON emitter for
  engine-internal events (autoscaler grow/shrink, queue sheds, disk-cache
  GC), keyed like the access log;
* :mod:`repro.service.wire` — the JSON codec that round-trips
  :class:`CompileTarget` requests (and, losslessly, full schedules and
  results — the process boundary's transport) and flattens results for the
  network boundary;
* :mod:`repro.service.http` — the stdlib HTTP/JSON serving front
  (``python -m repro.service.http``) plus the :class:`ServiceClient` helper.

Fingerprinting lives in :mod:`repro.api.fingerprint`;
``repro.service.fingerprint`` re-exports it for compatibility.

The prose documentation lives in ``docs/``: ``docs/architecture.md`` (layer
map), ``docs/serving.md`` (HTTP API + admission semantics),
``docs/wire-protocol.md`` (payload formats and versioning) and
``docs/tuning.md`` (executor/cache/autoscaler sizing).

Quickstart::

    from repro import CompileEngine, CompileTarget
    from repro.algorithms import build_algorithm

    target = CompileTarget(build_algorithm("unsharp-m"), image_width=480, image_height=320)
    engine = CompileEngine(workers=4, cache_dir=".imagen-cache")
    acc = engine.compile(target)
    acc = engine.compile(target)
    assert engine.cache.stats.hits >= 1  # second call never touched a solver
"""

from repro.api.fingerprint import (
    FINGERPRINT_VERSION,
    compile_fingerprint,
    dag_fingerprint,
)
from repro.api.target import CompileTarget
from repro.service.admission import (
    MAX_PENDING_ENV_VAR,
    AdmissionError,
    AdmissionQueue,
    AuthenticationError,
    QueueFullError,
    RateDecision,
    RateLimiter,
    TokenAuthenticator,
    TokenRecord,
    parse_rate_limit,
    parse_token_line,
    validate_max_pending,
)
from repro.service.cache import (
    CacheStats,
    CompileCache,
    DiskCacheStore,
    deserialize_schedule,
    serialize_schedule,
)
from repro.service.engine import (
    PREWARM_RESOLUTIONS,
    WORKERS_ENV_VAR,
    CompileEngine,
    default_worker_count,
)
from repro.service.events import (
    EVENT_LOG_ENV_VAR,
    EventLog,
    configure_event_log,
    emit_event,
    get_event_log,
)
from repro.service.executor import (
    EXECUTOR_ENV_VAR,
    EXECUTOR_NAMES,
    AutoscalingExecutor,
    ExecutorBackend,
    InlineExecutor,
    ProcessExecutor,
    ThreadExecutor,
    default_executor_name,
    validate_worker_count,
)
from repro.service.http import (
    CompileServiceServer,
    ServiceClient,
    ServiceError,
    start_server,
)
from repro.service.jobs import (
    BatchResult,
    CompileRequest,
    CompileResult,
    CompileStatus,
)
from repro.service.metrics import EngineMetrics, RequestTrace, StageHistogram
from repro.service.observability import (
    METRIC_SPECS,
    PROMETHEUS_CONTENT_TYPE,
    MetricSpec,
    Span,
    collect_spans,
    metric_spec,
    registered_keys,
    render_prometheus,
    span_attr,
    trace_span,
)
from repro.service.verify import (
    CHECK_KINDS,
    VERIFY_FORMAT_VERSION,
    VerifyEngine,
    VerifyRequest,
    VerifyResult,
    verify_fingerprint,
)
from repro.service.wire import (
    WIRE_FORMAT_VERSION,
    WireFormatError,
    accelerator_from_wire,
    accelerator_to_wire,
    batch_result_to_wire,
    full_result_from_wire,
    full_result_to_wire,
    result_to_wire,
    schedule_from_wire,
    schedule_to_wire,
    target_from_wire,
    target_to_wire,
    verify_request_from_wire,
    verify_request_to_wire,
    verify_result_to_wire,
)

__all__ = [
    "AdmissionError",
    "AdmissionQueue",
    "AuthenticationError",
    "AutoscalingExecutor",
    "BatchResult",
    "CHECK_KINDS",
    "CacheStats",
    "CompileCache",
    "CompileEngine",
    "CompileRequest",
    "CompileResult",
    "CompileServiceServer",
    "CompileStatus",
    "CompileTarget",
    "DiskCacheStore",
    "EVENT_LOG_ENV_VAR",
    "EXECUTOR_ENV_VAR",
    "EXECUTOR_NAMES",
    "EngineMetrics",
    "EventLog",
    "ExecutorBackend",
    "FINGERPRINT_VERSION",
    "InlineExecutor",
    "MAX_PENDING_ENV_VAR",
    "METRIC_SPECS",
    "MetricSpec",
    "PREWARM_RESOLUTIONS",
    "PROMETHEUS_CONTENT_TYPE",
    "ProcessExecutor",
    "QueueFullError",
    "RateDecision",
    "RateLimiter",
    "RequestTrace",
    "ServiceClient",
    "ServiceError",
    "Span",
    "StageHistogram",
    "ThreadExecutor",
    "TokenAuthenticator",
    "TokenRecord",
    "VERIFY_FORMAT_VERSION",
    "VerifyEngine",
    "VerifyRequest",
    "VerifyResult",
    "WIRE_FORMAT_VERSION",
    "WORKERS_ENV_VAR",
    "WireFormatError",
    "accelerator_from_wire",
    "accelerator_to_wire",
    "batch_result_to_wire",
    "collect_spans",
    "compile_fingerprint",
    "configure_event_log",
    "dag_fingerprint",
    "default_executor_name",
    "default_worker_count",
    "deserialize_schedule",
    "emit_event",
    "full_result_from_wire",
    "full_result_to_wire",
    "get_event_log",
    "metric_spec",
    "parse_rate_limit",
    "parse_token_line",
    "registered_keys",
    "render_prometheus",
    "result_to_wire",
    "span_attr",
    "schedule_from_wire",
    "schedule_to_wire",
    "serialize_schedule",
    "start_server",
    "target_from_wire",
    "target_to_wire",
    "trace_span",
    "validate_max_pending",
    "validate_worker_count",
    "verify_fingerprint",
    "verify_request_from_wire",
    "verify_request_to_wire",
    "verify_result_to_wire",
]
