"""Stdlib-only HTTP/JSON serving front over :class:`CompileEngine`.

Stability: public.

This is the network surface of the compilation service: a
:class:`http.server.ThreadingHTTPServer` whose handler threads submit
decoded :class:`repro.api.CompileTarget` requests to one shared engine, so
every HTTP client transparently gets the engine's content-addressed cache,
in-flight deduplication and metrics.  Several service processes may point
``--cache-dir`` at one shared volume: disk writes are atomic per writer and
fingerprint-addressed, so they cooperate instead of corrupting each other.

Endpoints
---------
* ``POST /v1/compile`` — body: one wire-format target
  (:func:`repro.service.wire.target_to_wire`).  Responds 200 with
  :func:`repro.service.wire.result_to_wire` output; compile *failures* are
  ``ok: false`` JSON (the request was served), while undecodable payloads are
  400s.
* ``POST /v1/batch`` — body: ``{"targets": [...]}``.  Responds 200 with
  ordered per-item results; an undecodable, failing or queue-shed item
  yields an error-carrying entry in its slot, never a 500 for the whole
  batch.
* ``POST /v1/verify`` — body: one wire-format verify request
  (:func:`repro.service.wire.verify_request_to_wire`): a target plus a check
  kind (``golden``/``cycle``/``both``) and input spec.  Responds 200 with
  :func:`repro.service.wire.verify_result_to_wire` output; a verification
  that *errored* in simulation (bad input spec, strict-mode failure) is a
  422 with ``reason: "verify-failed"``, never a 500.  See
  ``docs/verification.md``.
* ``GET /v1/metrics`` — engine request counters plus executor scaling and
  admission counters (``rejected_total``, ``queue_depth``, live worker
  count).  ``?format=prometheus`` returns the same metrics — plus the
  per-stage span histograms — as Prometheus text exposition 0.0.4
  (:func:`repro.service.observability.render_prometheus`).
* ``GET /v1/cache/stats`` — cache occupancy and hit/miss counters.
* ``GET /healthz`` — liveness probe (never authenticated).

``?trace=1`` on the compile endpoints adds a ``"spans"`` field to each
result: the nested per-stage span tree (cache lookup, ILP solve, line-buffer
allocation, RTL generation) recorded while that job ran — see
``docs/observability.md``.

Access logs default to the stdlib's plain lines; ``--access-log json``
switches to one JSON object per request (identity, method, path, status,
seconds, fingerprint) for log pipelines, and ``--access-log none`` (or the
legacy ``--quiet``) silences them.  ``--event-log json`` additionally
streams the service's *internal* events — autoscaler grow/shrink, queue
sheds, disk-cache GC — as JSON lines on the same stream
(:mod:`repro.service.events`).

Admission control
-----------------
``--auth-token-file`` turns on bearer-token authentication
(:class:`repro.service.admission.TokenAuthenticator`): every ``/v1/*``
request must carry ``Authorization: Bearer <token>`` or is answered 401;
without the flag the service stays anonymous (trusted-network mode) and the
client IP is the identity.  ``--rate-limit rps:burst`` adds a per-identity
token bucket — throttled requests get 429 with a precise ``Retry-After``.
``--max-pending``/``--overflow`` bound the engine's submission queue: a
saturated engine sheds cold submits with 429 (``reason: "queue-full"``)
while in-flight work completes.  See ``docs/serving.md`` for the full
semantics and curl examples.

Run a server::

    PYTHONPATH=src python -m repro.service.http --port 8080 \
        --cache-dir .imagen-cache --workers 4 --executor process:auto \
        --auth-token-file tokens.txt --rate-limit 10:20 --max-pending 64

or embed one (tests, examples) with :func:`start_server`, and talk to it with
the :class:`ServiceClient` helper (stdlib ``http.client``, no dependencies).
``--executor`` selects the engine's execution backend (default: the
``REPRO_EXECUTOR`` environment variable, falling back to ``thread``); the
``process`` backends keep compiles parallel even on the pure-Python solver
fallback, and the ``:auto`` variants autoscale the fleet with demand.
``--cache-max-bytes``/``--cache-max-age-seconds`` bound a shared disk cache
volume (LRU-by-mtime eviction on save).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import threading
import time
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.api.target import CompileTarget
from repro.errors import ReproError, SimulationError
from repro.service.admission import (
    QueueFullError,
    RateLimiter,
    TokenAuthenticator,
    parse_rate_limit,
    validate_max_pending,
)
from repro.service.cache import CompileCache, DiskCacheStore
from repro.service.engine import CompileEngine
from repro.service.events import configure_event_log
from repro.service.executor import EXECUTOR_NAMES, validate_worker_count
from repro.service.observability import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.service.verify import VerifyEngine, VerifyRequest
from repro.service.wire import (
    WireFormatError,
    batch_result_to_wire,
    result_to_wire,
    target_from_wire,
    target_to_wire,
    verify_request_from_wire,
    verify_request_to_wire,
    verify_result_to_wire,
)

#: Upper bound on accepted request bodies; a pipeline DAG is a few KB, so
#: anything near this is hostile or corrupt.
MAX_REQUEST_BYTES = 8 * 1024 * 1024

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8080

#: Access-log modes: the stdlib's plain lines, one JSON object per request,
#: or silence.
ACCESS_LOG_MODES = ("plain", "json", "none")


def _query_flag(value: str | None) -> bool:
    """Interpret a query-string toggle (``?trace=1``): absent/falsy = off."""
    if value is None:
        return False
    return value.strip().lower() not in ("", "0", "false", "off", "no")


class ServiceError(ReproError):
    """A non-2xx response (or transport failure) from the compile service.

    Typed so callers can branch without parsing message strings:

    ``status``
        The HTTP status code, or ``None`` for transport-level failures
        (connection refused, mid-response disconnect).
    ``body``
        The parsed JSON error body (``{}`` when none could be read).
    ``retry_after``
        Seconds from the ``Retry-After`` header on 429 responses, else
        ``None`` — a client seeing it should back off, not retry hot.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int | None = None,
        body: dict | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.body = body if body is not None else {}
        self.retry_after = retry_after


class CompileServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's shared :class:`CompileEngine`."""

    server_version = "ImaGenCompileService/1.0"
    # HTTP/1.1 keeps client connections alive between requests; every
    # response below carries an exact Content-Length, as 1.1 requires.
    protocol_version = "HTTP/1.1"

    @property
    def engine(self) -> CompileEngine:
        return self.server.engine

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if self.server.access_log == "plain":
            super().log_message(format, *args)

    def _begin_request(self) -> tuple[str, dict]:
        """Reset per-request state (the handler lives for a keep-alive
        connection, not one request) and split the URL into path + query."""
        self._started = time.perf_counter()
        self._identity = ""
        self._fingerprint = ""
        parts = urlsplit(self.path)
        query = {key: values[-1] for key, values in parse_qs(parts.query).items()}
        return parts.path, query

    # -------------------------------------------------------------- admission
    def _identify(self) -> str | None:
        """Authenticate the request; returns the client identity or ``None``
        after sending a 401.

        Anonymous mode (no authenticator configured) keys identity on the
        client address, so rate limits and queue fairness still distinguish
        hosts on a trusted network.
        """
        authenticator = self.server.authenticator
        if authenticator is None:
            self._identity = f"ip:{self.client_address[0]}"
            return self._identity
        identity = authenticator.authenticate_header(self.headers.get("Authorization"))
        if identity is None:
            self._send(
                401,
                {"error": "Missing, invalid or expired bearer token"},
                extra_headers={"WWW-Authenticate": 'Bearer realm="imagen-compile"'},
            )
            return None
        self._identity = identity
        return identity

    def _throttle(self, identity: str, cost: int) -> bool:
        """Charge the rate limiter; returns False after sending a 429."""
        limiter = self.server.rate_limiter
        if limiter is None:
            return True
        decision = limiter.admit(identity, cost=cost)
        if decision.allowed:
            return True
        self._send_retry(
            f"Rate limit exceeded for {identity!r} "
            f"({limiter.rate:g} rps, burst {limiter.burst:g})",
            reason="rate-limited",
            retry_after=decision.retry_after,
        )
        return False

    def _send_retry(self, message: str, *, reason: str, retry_after: float) -> None:
        retry_after = max(0.0, retry_after)
        self._send(
            429,
            {"error": message, "reason": reason, "retry_after": round(retry_after, 3)},
            extra_headers={"Retry-After": str(max(1, math.ceil(retry_after)))},
        )

    # ----------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path, query = self._begin_request()
        if path == "/healthz":
            self._send(200, {"status": "ok"})  # liveness stays unauthenticated
            return
        if self._identify() is None:
            return
        if path == "/v1/metrics":
            exposition = query.get("format", "json")
            if exposition == "prometheus":
                self._send_text(
                    200,
                    render_prometheus(
                        self._metrics(),
                        self.engine.metrics.stage_histograms(),
                        cache=self._cache_stats(),
                    ),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                )
            elif exposition == "json":
                self._send(200, self._metrics())
            else:
                self._send(
                    400,
                    {"error": f"Unknown metrics format {exposition!r} (json, prometheus)"},
                )
        elif path == "/v1/cache/stats":
            self._send(200, self._cache_stats())
        else:
            self._send(404, {"error": f"Unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        path, query = self._begin_request()
        if path == "/v1/compile":
            route = self._compile_one
        elif path == "/v1/batch":
            route = self._compile_batch
        elif path == "/v1/verify":
            route = self._verify_one
        else:
            self._send(404, {"error": f"Unknown path {path!r}"})
            return
        identity = self._identify()
        if identity is None:
            return
        payload = self._read_json()
        if payload is None:
            return  # error response already sent
        try:
            route(payload, identity, include_spans=_query_flag(query.get("trace")))
        except WireFormatError as exc:
            self._send(400, {"error": str(exc)})
        except QueueFullError as exc:
            # The engine's bounded queue shed this submit: degrade loudly and
            # cheaply, with the engine's own estimate of when to come back.
            self._send_retry(str(exc), reason="queue-full", retry_after=exc.retry_after)
        except SimulationError as exc:
            # A verification that could not produce a passing verdict (bad
            # input spec, strict-mode check failure) is a client-visible
            # outcome of *their* request, not a server fault: typed 422.
            self._send(422, {"error": str(exc), "reason": "verify-failed"})
        except Exception as exc:  # noqa: BLE001 - errors must be JSON, not resets
            # The service contract is "errors come back as JSON": an internal
            # failure becomes a 500 body instead of an opaque dropped socket.
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _compile_one(self, payload, identity: str, *, include_spans: bool = False) -> None:
        # Accept the bare wire target, or {"target": {...}} for symmetry with
        # the batch endpoint.
        if isinstance(payload, dict) and "target" in payload:
            payload = payload["target"]
        target = target_from_wire(payload)
        if not self._throttle(identity, cost=1):
            return
        result = self.engine.submit(target, client=identity)
        self._fingerprint = result.fingerprint
        self._send(200, result_to_wire(result, include_spans=include_spans))

    def _compile_batch(self, payload, identity: str, *, include_spans: bool = False) -> None:
        if not isinstance(payload, dict) or not isinstance(payload.get("targets"), list):
            raise WireFormatError('Batch body must be {"targets": [...]}')
        # Rate limiting charges one token per design point, not per HTTP
        # request — a 100-target batch costs what 100 single compiles would.
        if not self._throttle(identity, cost=max(1, len(payload["targets"]))):
            return
        decoded: list[CompileTarget | None] = []
        decode_errors: dict[int, str] = {}
        for index, item in enumerate(payload["targets"]):
            try:
                decoded.append(target_from_wire(item))
            except WireFormatError as exc:
                decoded.append(None)
                decode_errors[index] = str(exc)
        batch = self.engine.submit_batch(
            [t for t in decoded if t is not None], client=identity
        )
        body = batch_result_to_wire(batch, include_spans=include_spans)
        # Splice per-item decode failures back into request order: a bad
        # item degrades to an error entry in its slot, not a 500.
        compiled = iter(body["results"])
        body["results"] = [
            {"ok": False, "error": decode_errors[i], "fingerprint": "", "source": "error", "seconds": 0.0}
            if target is None
            else next(compiled)
            for i, target in enumerate(decoded)
        ]
        self._send(200, body)

    def _verify_one(self, payload, identity: str, *, include_spans: bool = False) -> None:
        request = verify_request_from_wire(payload)
        if not self._throttle(identity, cost=1):
            return
        result = self.server.verify_engine.submit(request, client=identity)
        self._fingerprint = result.fingerprint
        body = verify_result_to_wire(result, include_spans=include_spans)
        if result.error_kind == "SimulationError":
            # The checks themselves could not run against this input spec
            # (zero frames, bad resolution): the request is well-formed JSON
            # but un-verifiable — a client error, not a server fault.
            self._send(422, {**body, "reason": "verify-failed"})
            return
        self._send(200, body)

    # -------------------------------------------------------------- plumbing
    def _metrics(self) -> dict:
        """Engine counters + executor scaling + admission/throttle state.

        One flat JSON object: the acceptance keys are ``rejected_total``,
        ``queue_depth`` and ``workers`` (the *live* fleet; ``max_workers`` is
        the configured ceiling).
        """
        summary = self.engine.metrics.summary()
        summary.update(self.engine.executor_stats())
        summary.update(self.engine.admission_stats())
        for key, value in self.server.verify_engine.stats().items():
            summary[f"verify_{key}"] = value
        summary["auth"] = "token" if self.server.authenticator else "anonymous"
        limiter = self.server.rate_limiter
        if limiter is not None:
            summary["rate_limit"] = limiter.stats()
            summary["throttled_total"] = limiter.throttled_total
        else:
            summary["throttled_total"] = 0
        return summary

    def _cache_stats(self) -> dict:
        cache = self.engine.cache
        stats = {
            "entries": len(cache),
            "max_entries": cache.max_entries,
            **cache.stats.as_dict(),
        }
        if cache.store is not None:
            stats["disk_entries"] = len(cache.store)
            stats["disk_directory"] = str(cache.store.directory)
            if cache.store.bounded:
                stats["disk_bytes"] = cache.store.total_bytes()
                stats["disk_max_bytes"] = cache.store.max_bytes
                stats["disk_max_age_seconds"] = cache.store.max_age_seconds
        return stats

    def _read_json(self):
        """Parse the request body; on failure send the 4xx and return None."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = -1
        if length < 0:
            self._send(400, {"error": "Missing or invalid Content-Length"})
            return None
        if length > MAX_REQUEST_BYTES:
            self._send(413, {"error": f"Request body exceeds {MAX_REQUEST_BYTES} bytes"})
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._send(400, {"error": "Request body is not valid JSON"})
            return None

    def _send(self, status: int, payload: dict, *, extra_headers: dict | None = None) -> None:
        self._send_bytes(
            status,
            json.dumps(payload).encode("utf-8"),
            content_type="application/json",
            extra_headers=extra_headers,
        )

    def _send_text(self, status: int, text: str, *, content_type: str) -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type=content_type)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str,
        extra_headers: dict | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if status >= 400:
            # Error paths may not have drained the request body; carrying on
            # with keep-alive would let those bytes be parsed as the next
            # request line and desync the connection.  Close instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)
        if self.server.access_log == "json":
            self._log_json(status, len(body))

    def _log_json(self, status: int, body_bytes: int) -> None:
        """One JSON line per answered request, on the stdlib's log stream."""
        record = {
            "ts": round(time.time(), 3),
            "identity": getattr(self, "_identity", ""),
            "method": self.command,
            "path": self.path,
            "status": status,
            "seconds": round(
                time.perf_counter() - getattr(self, "_started", time.perf_counter()), 6
            ),
            "bytes": body_bytes,
        }
        if getattr(self, "_fingerprint", ""):
            record["fingerprint"] = self._fingerprint
        sys.stderr.write(json.dumps(record) + "\n")


class CompileServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one shared :class:`CompileEngine`.

    ``authenticator`` (a :class:`TokenAuthenticator`) turns on bearer-token
    auth for every ``/v1/*`` endpoint; ``rate_limiter`` (a
    :class:`RateLimiter`) throttles compile submissions per identity.  Both
    default to off, preserving the trusted-network behaviour.

    ``verify_engine`` serves ``POST /v1/verify``; when omitted, one is
    constructed over the shared engine with defaults (unbounded verify
    queue, verdicts persisted to the engine's disk-cache volume if any).

    ``access_log`` selects the per-request log style: ``"plain"`` (the
    stdlib's lines), ``"json"`` (one object per request) or ``"none"``.
    The legacy ``verbose`` flag maps to ``"plain"``/``"none"`` and loses to
    an explicit ``access_log``.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: CompileEngine,
        *,
        verbose: bool = False,
        access_log: str | None = None,
        authenticator: TokenAuthenticator | None = None,
        rate_limiter: RateLimiter | None = None,
        verify_engine: VerifyEngine | None = None,
    ) -> None:
        self.engine = engine
        self.verify_engine = verify_engine if verify_engine is not None else VerifyEngine(engine)
        if access_log is None:
            access_log = "plain" if verbose else "none"
        if access_log not in ACCESS_LOG_MODES:
            raise ValueError(
                f"access_log must be one of {ACCESS_LOG_MODES}, got {access_log!r}"
            )
        self.access_log = access_log
        self.authenticator = authenticator
        self.rate_limiter = rate_limiter
        self._serve_thread: threading.Thread | None = None
        super().__init__(address, CompileServiceHandler)

    @property
    def verbose(self) -> bool:
        """Back-compat view of ``access_log`` (True when plain logging)."""
        return self.access_log == "plain"

    @property
    def port(self) -> int:
        """The bound port (useful with the ephemeral ``port=0``)."""
        return self.server_address[1]

    def stop(self) -> None:
        """Stop serving and release the socket (the engine stays usable)."""
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)
            self._serve_thread = None


def start_server(
    engine: CompileEngine,
    *,
    host: str = DEFAULT_HOST,
    port: int = 0,
    verbose: bool = False,
    access_log: str | None = None,
    authenticator: TokenAuthenticator | None = None,
    rate_limiter: RateLimiter | None = None,
    verify_engine: VerifyEngine | None = None,
) -> CompileServiceServer:
    """Boot a service in a background thread; returns the bound server.

    ``port=0`` binds an ephemeral port (read it back from ``server.port``) —
    the shape tests and examples want.  Call :meth:`CompileServiceServer.stop`
    when done; the engine's lifecycle stays with the caller.
    ``authenticator``/``rate_limiter`` enable admission control exactly like
    the ``--auth-token-file``/``--rate-limit`` CLI flags, and ``access_log``
    selects the log style like ``--access-log``.
    """
    server = CompileServiceServer(
        (host, port),
        engine,
        verbose=verbose,
        access_log=access_log,
        authenticator=authenticator,
        rate_limiter=rate_limiter,
        verify_engine=verify_engine,
    )
    thread = threading.Thread(
        target=server.serve_forever, name="repro-http-serve", daemon=True
    )
    server._serve_thread = thread
    thread.start()
    return server


class ServiceClient:
    """Minimal stdlib client for the compile service.

    One fresh ``http.client.HTTPConnection`` per request keeps the client
    trivially thread-safe; responses are the parsed JSON bodies.  Non-2xx
    responses — including the admission layer's 401 and 429 — raise
    :class:`ServiceError` carrying ``status``, the parsed error ``body`` and
    (on 429) ``retry_after``; transport failures raise it with
    ``status=None``.  Compile *failures* are 200s with ``ok: false`` —
    inspect the returned dict.  ``token`` is sent as ``Authorization:
    Bearer <token>`` on every request.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 120.0,
        token: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.token = token

    def compile(self, target: CompileTarget, *, trace: bool = False) -> dict:
        """Compile one target remotely; returns the wire-format result.

        ``trace=True`` asks the service for the per-stage span tree
        (``?trace=1``); it comes back under the result's ``"spans"`` key.
        """
        path = "/v1/compile?trace=1" if trace else "/v1/compile"
        return self._request("POST", path, target_to_wire(target))

    def compile_batch(self, targets, *, trace: bool = False) -> dict:
        """Compile an ordered batch; per-item errors come back in their slots."""
        path = "/v1/batch?trace=1" if trace else "/v1/batch"
        return self._request(
            "POST", path, {"targets": [target_to_wire(t) for t in targets]}
        )

    def verify(
        self,
        target: CompileTarget,
        *,
        check: str = "both",
        frames: int = 2,
        seed: int = 0,
        tolerance: float = 0.0,
        expected_digest: str | None = None,
        strict: bool = False,
        trace: bool = False,
    ) -> dict:
        """Verify one target remotely; returns the wire-format verdict.

        Check *failures* come back as 200s with ``passed: false``; an
        un-runnable check (bad input spec, ``strict=True`` on a failing
        design) raises :class:`ServiceError` with ``status=422`` and
        ``body["reason"] == "verify-failed"``.  ``trace=True`` adds the
        ``verify``/``verify_golden``/``verify_cycle`` span tree.
        """
        request = VerifyRequest(
            target=target,
            check=check,
            frames=frames,
            seed=seed,
            tolerance=tolerance,
            expected_digest=expected_digest,
            strict=strict,
        )
        path = "/v1/verify?trace=1" if trace else "/v1/verify"
        return self._request("POST", path, verify_request_to_wire(request))

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition (``?format=prometheus``), verbatim."""
        return self._request("GET", "/v1/metrics?format=prometheus", raw=True)

    def cache_stats(self) -> dict:
        return self._request("GET", "/v1/cache/stats")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def _request(
        self, method: str, path: str, payload: dict | None = None, *, raw: bool = False
    ):
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {"Content-Type": "application/json"} if body is not None else {}
            if self.token is not None:
                headers["Authorization"] = f"Bearer {self.token}"
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                body_bytes = response.read()
            except (OSError, HTTPException) as exc:
                # Surface transport failures as the same typed error clients
                # already catch, instead of whatever http.client raises.
                raise ServiceError(
                    f"{method} {path} failed: {type(exc).__name__}: {exc}"
                ) from exc
        finally:
            connection.close()
        if raw and response.status < 400:
            return body_bytes.decode("utf-8", "replace")
        try:
            data = json.loads(body_bytes.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            data = {"error": body_bytes[:200].decode("utf-8", "replace")}
        if response.status >= 400:
            retry_after = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            raise ServiceError(
                f"{method} {path} -> HTTP {response.status}: {data.get('error', data)}",
                status=response.status,
                body=data if isinstance(data, dict) else {"error": data},
                retry_after=retry_after,
            )
        return data


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.service.http`` argument parser.

    Split out of :func:`main` so the generated CLI-flag table in
    ``docs/serving.md`` (``tools/gen_docs_tables.py``) and the tests render
    the real parser instead of a hand-maintained copy.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.http",
        description="Serve ImaGen compile requests over HTTP/JSON.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="bind port (default: %(default)s)")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the persistent disk cache tier (default: memory-only)",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="size bound for the disk cache volume; LRU entries are evicted on save",
    )
    parser.add_argument(
        "--cache-max-age-seconds",
        type=float,
        default=None,
        help="age bound for disk cache entries; stale entries are evicted on save",
    )
    parser.add_argument(
        "--workers", default=None, help="engine pool size (default: REPRO_WORKERS or auto)"
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help="execution backend for batch fan-out (default: REPRO_EXECUTOR or thread)",
    )
    parser.add_argument(
        "--max-cache-entries", type=int, default=512, help="in-memory LRU capacity (default: %(default)s)"
    )
    parser.add_argument(
        "--auth-token-file",
        default=None,
        help="enable bearer-token auth: a file of 'token', 'identity:token' or "
        "'identity:token:expires=<epoch>' lines (default: anonymous)",
    )
    parser.add_argument(
        "--rate-limit",
        default=None,
        metavar="RPS:BURST",
        help="per-identity token-bucket rate limit on compile submissions, "
        "e.g. 10:20 (default: unlimited)",
    )
    parser.add_argument(
        "--max-pending",
        default=None,
        help="bound on queued-but-undispatched compile jobs "
        "(default: REPRO_MAX_PENDING or unbounded)",
    )
    parser.add_argument(
        "--overflow",
        choices=("shed", "block"),
        default="shed",
        help="full-queue policy: shed (429 + Retry-After) or block "
        "(backpressure the handler thread) (default: %(default)s)",
    )
    parser.add_argument(
        "--access-log",
        choices=ACCESS_LOG_MODES,
        default="plain",
        help="per-request log style: plain (stdlib lines), json (one object "
        "per request: identity, path, status, seconds, fingerprint) or none "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--event-log",
        choices=("json", "none"),
        default=None,
        help="engine-internal event stream (autoscaler grow/shrink, queue "
        "sheds, cache GC) as JSON lines on stderr "
        "(default: REPRO_EVENT_LOG or none)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-request access logs (same as --access-log none)",
    )
    return parser


def main(argv=None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        workers = (
            None
            if args.workers is None
            else validate_worker_count(args.workers, source="--workers")
        )
        max_pending = (
            None
            if args.max_pending is None
            else validate_max_pending(args.max_pending, source="--max-pending")
        )
        authenticator = (
            TokenAuthenticator.from_file(args.auth_token_file)
            if args.auth_token_file is not None
            else None
        )
        rate_limiter = None
        if args.rate_limit is not None:
            rate, burst = parse_rate_limit(args.rate_limit)
            rate_limiter = RateLimiter(rate, burst)
        cache = None
        if args.cache_dir is not None:
            store = DiskCacheStore(
                args.cache_dir,
                max_bytes=args.cache_max_bytes,
                max_age_seconds=args.cache_max_age_seconds,
            )
            cache = CompileCache(max_entries=args.max_cache_entries, store=store)
        elif args.cache_max_bytes is not None or args.cache_max_age_seconds is not None:
            parser.error("--cache-max-bytes/--cache-max-age-seconds require --cache-dir")
        engine = CompileEngine(
            workers=workers,
            executor=args.executor,
            cache=cache,
            max_cache_entries=args.max_cache_entries,
            max_pending=max_pending,
            overflow=args.overflow,
        )
    except (OSError, ValueError) as exc:  # bad flags, env bounds, token file
        parser.error(str(exc))
    if args.event_log is not None:
        configure_event_log(enabled=args.event_log == "json")
    server = CompileServiceServer(
        (args.host, args.port),
        engine,
        access_log="none" if args.quiet else args.access_log,
        authenticator=authenticator,
        rate_limiter=rate_limiter,
    )
    cache_note = f", cache-dir={args.cache_dir}" if args.cache_dir else ""
    admission_note = (
        f", auth={'token' if authenticator else 'anonymous'}"
        + (f", rate-limit={args.rate_limit}" if rate_limiter else "")
        + (f", max-pending={max_pending}({args.overflow})" if max_pending else "")
    )
    print(
        f"imagen compile service on http://{args.host}:{server.port} "
        f"(executor={engine.executor_name}, workers={engine.workers}{cache_note}"
        f"{admission_note}) — Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        engine.shutdown()


if __name__ == "__main__":
    main()
