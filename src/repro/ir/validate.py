"""Structural validation of pipeline DAGs.

The optimizer, baselines, simulators and RTL generator all assume a
well-formed graph; validation centralises those assumptions so errors are
reported at the front-end boundary rather than as obscure failures later.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.ir.dag import PipelineDAG
from repro.ir.traversal import ancestors_of, topological_order

#: Deepest frame history an edge may request.  Frame buffers cost
#: ``depth x height x width`` pixels of SRAM each, so a typo'd ``prev(1000)``
#: would silently ask for gigabytes; real temporal kernels use single digits.
MAX_TEMPORAL_DEPTH = 16


def validate_dag(dag: PipelineDAG) -> None:
    """Raise :class:`GraphError` if the pipeline graph is not a usable pipeline.

    Checks performed:

    * the graph is non-empty and acyclic;
    * there is at least one input stage and at least one output stage;
    * input stages have no on-chip producers;
    * every non-input stage has at least one producer;
    * every stage can reach some output stage (no dead stages) unless it *is*
      an output stage;
    * every non-input stage is reachable from some input stage;
    * stencil windows are positive (guaranteed by construction, re-checked here);
    * temporal windows are causal: no edge may read *future* frames
      (``max_dt <= 0``), and the frame history any edge reaches back is
      bounded (a safety valve against runaway frame-buffer sizes).
    """
    if len(dag) == 0:
        raise GraphError("Pipeline has no stages")

    topological_order(dag)  # raises on cycles

    inputs = dag.input_stages()
    outputs = dag.output_stages()
    if not inputs:
        raise GraphError("Pipeline has no input stage")
    if not outputs:
        raise GraphError("Pipeline has no output stage")

    for stage in inputs:
        if dag.producers_of(stage.name):
            raise GraphError(f"Input stage {stage.name!r} must not have on-chip producers")

    for stage in dag.stages():
        if not stage.is_input and not dag.producers_of(stage.name):
            raise GraphError(
                f"Stage {stage.name!r} has no producers and is not marked as an input"
            )

    # Reachability: collect ancestors of all outputs and descendants of inputs.
    feeds_output: set[str] = set()
    for out in outputs:
        feeds_output.add(out.name)
        feeds_output |= ancestors_of(dag, out.name)
    for stage in dag.stages():
        if stage.name not in feeds_output:
            raise GraphError(f"Stage {stage.name!r} does not feed any output stage")

    fed_by_input: set[str] = set()
    for inp in inputs:
        fed_by_input.add(inp.name)
        from repro.ir.traversal import reachable_from

        fed_by_input |= reachable_from(dag, inp.name)
    for stage in dag.stages():
        if stage.name not in fed_by_input:
            raise GraphError(f"Stage {stage.name!r} is not reachable from any input stage")

    for edge in dag.edges():
        if edge.window.height < 1 or edge.window.width < 1:
            raise GraphError(
                f"Edge {edge.producer!r}->{edge.consumer!r} has a degenerate stencil window"
            )
        if edge.window.max_dt > 0:
            raise GraphError(
                f"Edge {edge.producer!r}->{edge.consumer!r} reads future frame "
                f"dt=+{edge.window.max_dt}; temporal windows must be causal (max_dt <= 0)"
            )
        if edge.temporal_depth > MAX_TEMPORAL_DEPTH:
            raise GraphError(
                f"Edge {edge.producer!r}->{edge.consumer!r} reaches back "
                f"{edge.temporal_depth} frames; the frame-buffer depth limit is "
                f"{MAX_TEMPORAL_DEPTH}"
            )
