"""Unit tests for the Darkroom, SODA and FixyNN baseline generators."""

import pytest

from repro.baselines import generate_baseline
from repro.baselines.base import BASELINE_NAMES, BaselineGenerator
from repro.baselines.darkroom import DarkroomGenerator, linearize_dag
from repro.baselines.fixynn import FixynnGenerator
from repro.baselines.soda import SodaGenerator
from repro.errors import BaselineError
from repro.memory.spec import asic_dual_port, asic_single_port

from tests.conftest import (
    TEST_HEIGHT,
    TEST_WIDTH,
    build_chain,
    build_paper_example,
    build_two_consumer,
)

W, H = TEST_WIDTH, TEST_HEIGHT


class TestDispatch:
    def test_known_names(self):
        for name in BASELINE_NAMES:
            schedule = generate_baseline(name, build_chain(3), W, H)
            assert schedule.generator == name

    def test_positional_form_keeps_per_generator_spec_defaults(self):
        """No-spec legacy calls keep each generator's historical default."""
        assert generate_baseline("soda", build_chain(3), W, H).memory_spec.name == "asic-fifo"
        assert generate_baseline("fixynn", build_chain(3), W, H).memory_spec.name == "asic-sp"
        assert generate_baseline("darkroom", build_chain(3), W, H).memory_spec.name == "asic-dp"

    def test_spec_adaptation_is_idempotent(self):
        """A spec already in the generator's form is used as-is, not renamed."""
        from repro.memory.spec import asic_fifo

        soda = SodaGenerator().generate(build_chain(3), W, H, asic_fifo())
        assert soda.memory_spec.name == "asic-fifo"
        fixynn = FixynnGenerator().generate(build_chain(3), W, H, asic_single_port())
        assert fixynn.memory_spec.name == "asic-sp"
        # ...while a generic dual-port spec is visibly adapted.
        adapted = SodaGenerator().generate(build_chain(3), W, H, asic_dual_port())
        assert adapted.memory_spec.name == "asic-dp-fifo"

    def test_unknown_name(self):
        with pytest.raises(BaselineError):
            generate_baseline("halide", build_chain(3), W, H)

    def test_asap_schedule_helper(self):
        starts = BaselineGenerator.asap_schedule(build_chain(3), W)
        assert starts["K0"] == 0
        assert starts["K1"] == 2 * W + 1
        assert starts["K2"] == 4 * W + 2


class TestLinearization:
    def test_single_consumer_graph_unchanged(self):
        dag = build_chain(3)
        linearized = linearize_dag(dag)
        assert len(linearized) == len(dag)
        assert not [s for s in linearized.stages() if s.metadata.get("dummy")]

    def test_multi_consumer_gets_relay(self):
        dag = build_paper_example()
        linearized = linearize_dag(dag)
        dummies = [s for s in linearized.stages() if s.metadata.get("dummy")]
        assert len(dummies) == 1
        relay = dummies[0]
        # The relay reads K0 with the retained consumer's (K1's) 3x3 pattern...
        assert linearized.edge("K0", relay.name).window.height == 3
        # ...and K2 now reads its original 2x2 window from the relay.
        assert linearized.edge(relay.name, "K2").window.height == 2
        # K2 no longer reads K0 directly.
        assert "K2" not in linearized.consumers_of("K0")

    def test_linearized_graph_is_single_consumer_effectively(self):
        dag = build_two_consumer()
        linearized = linearize_dag(dag)
        for producer in linearized.stage_names():
            consumers = linearized.consumers_of(producer)
            if len(consumers) > 1:
                # Multiple consumers must all read the same window (pattern-identical).
                windows = {linearized.edge(producer, c).window.normalized() for c in consumers}
                assert len(windows) == 1

    def test_relay_count_scales_with_extra_consumers(self):
        dag = build_two_consumer()
        linearized = linearize_dag(dag)
        dummies = [s for s in linearized.stages() if s.metadata.get("dummy")]
        assert len(dummies) == 1


class TestDarkroom:
    def test_rejects_single_port(self):
        with pytest.raises(BaselineError):
            DarkroomGenerator().generate(build_chain(3), W, H, asic_single_port())

    def test_matches_imagen_on_single_consumer(self):
        from repro.core.scheduler import schedule_pipeline

        dag = build_chain(4)
        darkroom = DarkroomGenerator().generate(dag, W, H)
        imagen = schedule_pipeline(dag, W, H, asic_dual_port())
        assert darkroom.total_blocks == imagen.total_blocks

    def test_multi_consumer_costs_more_than_imagen(self):
        from repro.core.scheduler import schedule_pipeline

        dag = build_paper_example()
        darkroom = DarkroomGenerator().generate(dag, W, H)
        imagen = schedule_pipeline(dag, W, H, asic_dual_port())
        assert darkroom.total_allocated_bits >= imagen.total_allocated_bits

    def test_stats_record_dummies(self):
        schedule = DarkroomGenerator().generate(build_paper_example(), W, H)
        assert len(schedule.solver_stats["dummy_stages"]) == 1


class TestSoda:
    def test_fifo_style_buffers(self):
        schedule = SodaGenerator().generate(build_chain(3), W, H)
        for config in schedule.line_buffers.values():
            assert config.style == "fifo"
            assert config.dff_pixels > 0

    def test_reuse_lines_are_stencil_minus_one(self):
        schedule = SodaGenerator().generate(build_chain(3, stencil=3), W, H)
        assert schedule.line_buffers["K0"].lines == 2

    def test_splitting_on_multi_consumer(self):
        single = SodaGenerator().generate(build_chain(3), W, H)
        multi = SodaGenerator().generate(build_two_consumer(), W, H)
        assert multi.line_buffers["K0"].fifo_chains == 2
        assert multi.line_buffers["K0"].num_blocks == 2 * single.line_buffers["K0"].num_blocks

    def test_rejects_single_port(self):
        with pytest.raises(BaselineError):
            SodaGenerator().generate(build_chain(3), W, H, asic_single_port())

    def test_smallest_sram_capacity(self):
        from repro.core.scheduler import schedule_pipeline

        dag = build_chain(4, stencil=3)
        soda = SodaGenerator().generate(dag, W, H)
        imagen = schedule_pipeline(dag, W, H, asic_dual_port())
        assert soda.total_data_bits < imagen.total_data_bits


class TestFixynn:
    def test_single_port_spec_forced(self):
        schedule = FixynnGenerator().generate(build_chain(3), W, H, asic_dual_port())
        assert schedule.memory_spec.ports == 1
        assert schedule.generator == "fixynn"

    def test_uses_more_memory_than_imagen(self):
        from repro.core.scheduler import schedule_pipeline

        dag = build_chain(4)
        fixynn = FixynnGenerator().generate(dag, W, H)
        imagen = schedule_pipeline(dag, W, H, asic_dual_port())
        assert fixynn.total_allocated_bits > imagen.total_allocated_bits

    def test_handles_multi_consumer(self):
        schedule = FixynnGenerator().generate(build_paper_example(), W, H)
        assert schedule.delay("K0", "K1") >= 3 * W
