"""Shared fixtures for the test suite.

Tests use deliberately small image sizes (width 32-64) so cycle-level
simulation stays fast; the scheduling math is width-generic, so nothing is
lost relative to 320p/1080p other than absolute KB numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsl import ast
from repro.dsl.builder import PipelineBuilder, window_sum
from repro.ir.dag import PipelineDAG
from repro.memory.spec import asic_dual_port, asic_fifo, asic_single_port

TEST_WIDTH = 64
TEST_HEIGHT = 48


@pytest.fixture
def image_size() -> tuple[int, int]:
    return TEST_WIDTH, TEST_HEIGHT


@pytest.fixture
def dual_port_spec():
    return asic_dual_port()

@pytest.fixture
def single_port_spec():
    return asic_single_port()


@pytest.fixture
def fifo_spec():
    return asic_fifo()


def build_chain(num_stages: int = 3, stencil: int = 3, name: str = "chain") -> PipelineDAG:
    """A single-consumer chain: K0 -> K1 -> ... with `stencil`x`stencil` windows."""
    builder = PipelineBuilder(name)
    handle = builder.input("K0")
    for index in range(1, num_stages):
        handle = builder.stage(f"K{index}", window_sum(handle, stencil, stencil))
    builder.dag.stage(handle.name).is_output = True
    return builder.dag.validated()


def build_paper_example() -> PipelineDAG:
    """The 3-stage example of the paper's Sec. 4 listing.

    K1 reads a 3x3 window of K0; K2 reads a 2x2 window of K0 and a 3x3 window
    of K1 (so K0 is a multi-consumer stage).
    """
    builder = PipelineBuilder("paper-example")
    k0 = builder.input("K0")
    k1 = builder.stage("K1", window_sum(k0, 3, 3))
    k2_expr = (
        k0(0, 0)
        + k0(1, 0)
        + k0(0, 1)
        + k0(1, 1)
        + window_sum(k1, 3, 3)
    )
    builder.output("K2", k2_expr)
    return builder.build()


def build_two_consumer(stencil_a: int = 3, stencil_b: int = 3) -> PipelineDAG:
    """A producer read by two independent consumers merged at the output."""
    builder = PipelineBuilder("two-consumer")
    k0 = builder.input("K0")
    a = builder.stage("A", window_sum(k0, stencil_a, stencil_a))
    b = builder.stage("B", window_sum(k0, stencil_b, stencil_b))
    builder.output("OUT", a(0, 0) + b(0, 0))
    return builder.build()


@pytest.fixture
def chain_dag() -> PipelineDAG:
    return build_chain()


@pytest.fixture
def paper_example_dag() -> PipelineDAG:
    return build_paper_example()


@pytest.fixture
def two_consumer_dag() -> PipelineDAG:
    return build_two_consumer()


@pytest.fixture
def small_image() -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(0, 256, size=(TEST_HEIGHT, TEST_WIDTH)).astype(np.float64)
