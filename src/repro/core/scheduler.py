"""The ILP scheduler (paper Sec. 5.2-5.5).

Given a pipeline DAG, the image width and an on-chip memory specification,
the scheduler assigns a start cycle to every stage such that

* data dependencies hold (R1, Eq. 1b),
* no line buffer block ever receives more accesses than it has ports
  (R3, Eq. 1c realised through pairwise separations, Eq. 12),
* the total line-buffer size (Eq. 1a / Eq. 2) is minimal.

The problem is an Integer Linear Program.  Disjunctive contention constraints
(Sec. 5.4) are handled either with big-M indicator variables (default) or by
enumerating sub-problems; constraint pruning removes dominated disjuncts in
both cases.

Two solve-acceleration paths sit in front of the ILP, both optimality
preserving:

* **Warm starts** — :func:`schedule_pipeline` accepts a
  :class:`~repro.core.warmstart.WarmHint` (a solved neighbor design).  The
  neighbor's binding constraint edges are re-imposed at the target
  width/options (:mod:`repro.core.warmstart`); when the transferred candidate
  is legal and its objective matches the longest-walk lower bound, the ILP is
  skipped entirely (the ``ilp`` span reports ``backend="warmstart"``).
  Otherwise a legal candidate still seeds the branch-and-bound incumbent.
* **Compound solves** — :func:`schedule_compound` folds several option
  variants of one pipeline (the Fig. 10 sweep) into a single block-diagonal
  model solved in one call (:mod:`repro.ilp.compound`), with the warm
  certificate peeling off variants before any model is built.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.core import access
from repro.core.constraints import (
    DependencyConstraint,
    Disjunction,
    PairSeparation,
    coalescing_safety_constraints,
    contention_disjunctions,
    data_dependency_constraints,
    schedule_horizon,
)
from repro.core.coalescing import coalescing_factors
from repro.core.pruning import count_subproblems, prune_disjunctions
from repro.core.schedule import PipelineSchedule
from repro.core.warmstart import (
    WarmHint,
    difference_system,
    disjunctive_lower_bound,
    schedule_objective,
    try_warm_transfer,
)
from repro.errors import SchedulingError
from repro.ilp.compound import merge_models, solve_compound
from repro.ilp.expr import linear_sum
from repro.ilp.model import Model, SolveStatus, WarmStart
from repro.ilp.solver import solve
from repro.ir.dag import PipelineDAG
from repro.ir.traversal import partial_order
from repro.memory.allocator import (
    allocate_line_buffer,
    allocate_register_buffer,
    dff_realization_threshold,
)
from repro.memory.spec import MemorySpec
from repro.trace import span_attr, trace_span


@dataclass
class SchedulerOptions:
    """Knobs of the scheduling ILP.

    Attributes
    ----------
    ports:
        Override the port count of the memory spec (``None`` = use the spec).
    coalescing:
        Enable the line-coalescing optimization (Sec. 6).
    coalescing_policy:
        ``"auto"`` (default) coalesces only buffers where it cannot hurt —
        single-consumer buffers, where no extra consumer separation is needed;
        ``"all"`` coalesces every buffer the block size allows (the Fig. 10
        DSE uses this together with ``per_stage_coalescing``).
    pruning:
        Enable constraint pruning (Sec. 5.4).
    disjunction_strategy:
        ``"bigm"`` (indicator variables, one solve) or ``"enumerate"``
        (Cartesian product of sub-problems, the paper's formulation).
    backend:
        ILP backend passed to :func:`repro.ilp.solver.solve` (``"race"``
        races the Python and HiGHS backends).
    max_subproblems:
        Safety valve for the enumeration strategy.
    """

    ports: int | None = None
    coalescing: bool = False
    coalescing_policy: str = "auto"
    pruning: bool = True
    disjunction_strategy: str = "bigm"
    backend: str = "auto"
    max_subproblems: int = 4096
    per_stage_coalescing: dict[str, bool] = field(default_factory=dict)


@dataclass
class _Prologue:
    """Everything the solve needs, computed once per (target, options)."""

    ports: int
    factors: dict[str, int]
    order: dict
    dependencies: list[DependencyConstraint]
    disjunctions: list[Disjunction]
    raw_candidates: int
    pruned_candidates: int
    horizon: int


def _validate_request(dag: PipelineDAG, image_width: int, image_height: int) -> None:
    if image_width < 2 or image_height < 1:
        raise SchedulingError(f"Unsupported image size {image_width}x{image_height}")
    dag.validated()


def _constraint_prologue(
    dag: PipelineDAG,
    image_width: int,
    memory_spec: MemorySpec,
    options: SchedulerOptions,
) -> _Prologue:
    ports = options.ports if options.ports is not None else memory_spec.ports
    if ports < 1:
        raise SchedulingError("Memory ports must be >= 1")

    factors = _effective_factors(dag, image_width, memory_spec, options)
    order = partial_order(dag)

    dependencies = data_dependency_constraints(dag, image_width)
    dependencies.extend(coalescing_safety_constraints(dag, image_width, factors))
    disjunctions = contention_disjunctions(
        dag, image_width, ports, coalesce_factors=factors, order=order
    )
    raw_candidate_count = sum(len(d.candidates) for d in disjunctions)
    if options.pruning:
        disjunctions = prune_disjunctions(disjunctions, dag, order)
    pruned_candidate_count = sum(len(d.candidates) for d in disjunctions)

    for disjunction in disjunctions:
        if disjunction.is_empty:
            raise SchedulingError(
                f"Line buffer of {disjunction.buffer!r} cannot satisfy the port limit "
                f"({ports} ports) for accessors {disjunction.combination}"
            )

    return _Prologue(
        ports=ports,
        factors=factors,
        order=order,
        dependencies=dependencies,
        disjunctions=disjunctions,
        raw_candidates=raw_candidate_count,
        pruned_candidates=pruned_candidate_count,
        horizon=schedule_horizon(dag, image_width),
    )


def _attempt_warm_start(
    dag: PipelineDAG,
    image_width: int,
    prologue: _Prologue,
    options: SchedulerOptions,
    warm_hint: WarmHint,
) -> tuple[dict[str, int] | None, int | None, str]:
    """Transfer + certify a warm hint: (cycles, certified objective, detail).

    The fast path is gated to the big-M strategy: enumeration breaks
    objective ties by sub-problem order, which the certificate cannot see.
    """
    if options.disjunction_strategy != "bigm":
        return None, None, "strategy"
    mandatory, multis = difference_system(prologue.dependencies, prologue.disjunctions)
    cycles, detail = try_warm_transfer(
        dag,
        warm_hint,
        image_width=image_width,
        mandatory=mandatory,
        multis=multis,
        pruning=options.pruning,
        order=prologue.order,
    )
    if cycles is None:
        return None, None, detail
    objective = schedule_objective(dag, cycles)
    if objective == disjunctive_lower_bound(dag, mandatory, multis):
        return cycles, objective, "certificate"
    return cycles, None, "seed"


def _certificate_stats() -> dict:
    # Mirror the _solve_big_m stats shape so downstream consumers (reports,
    # serialization) see a uniform schema; zero solves is the whole point.
    return {
        "backend": "warmstart",
        "ilp_variables": 0,
        "ilp_constraints": 0,
        "lp_iterations": 0,
        "solves": 0,
    }


def schedule_pipeline(
    dag: PipelineDAG,
    image_width: int,
    image_height: int,
    memory_spec: MemorySpec,
    options: SchedulerOptions | None = None,
    *,
    warm_hint: WarmHint | None = None,
) -> PipelineSchedule:
    """Solve the scheduling ILP and return the resulting accelerator design.

    ``warm_hint`` offers a solved neighbor design as a seed; it can only ever
    accelerate the solve — the returned schedule is a proven optimum either
    way, and a hint that fails transfer or certification degrades to a cold
    solve (or an incumbent-seeded branch-and-bound).
    """
    options = options or SchedulerOptions()
    _validate_request(dag, image_width, image_height)

    started = time.perf_counter()
    with trace_span(
        "solve",
        strategy=options.disjunction_strategy,
        coalescing=bool(options.coalescing),
    ):
        prologue = _constraint_prologue(dag, image_width, memory_spec, options)

        warm_cycles: dict[str, int] | None = None
        certified: int | None = None
        warm_detail = "none"
        if warm_hint is not None:
            warm_cycles, certified, warm_detail = _attempt_warm_start(
                dag, image_width, prologue, options, warm_hint
            )

        if certified is not None:
            assert warm_cycles is not None
            # Provably optimal without a model: record a zero-cost "ilp" span
            # so warm wins are measurable alongside real backend calls.
            with trace_span("ilp", backend="warmstart"):
                span_attr(status="optimal", lp_iterations=0, bnb_pruned=0, warm_start="certificate")
            start_cycles, objective = warm_cycles, float(certified)
            solver_stats = _certificate_stats()
        elif options.disjunction_strategy == "enumerate":
            start_cycles, objective, solver_stats = _solve_by_enumeration(
                dag, image_width, prologue.dependencies, prologue.disjunctions,
                prologue.horizon, options,
            )
        elif options.disjunction_strategy == "bigm":
            start_cycles, objective, solver_stats = _solve_big_m(
                dag, image_width, prologue.dependencies, prologue.disjunctions,
                prologue.horizon, options, warm_cycles=warm_cycles,
            )
        else:
            raise SchedulingError(f"Unknown disjunction strategy {options.disjunction_strategy!r}")

        if warm_hint is not None:
            disposition = solver_stats.pop("warm_seed", "none")
            if certified is not None:
                solver_stats["warm_start"] = "certificate"
            elif warm_cycles is not None:
                # The hint transferred but did not certify.  The Python
                # backend reports what it did with the seed
                # (seeded/incumbent/rejected); HiGHS ignores seeds, in which
                # case the transfer outcome itself ("seed") is recorded.
                solver_stats["warm_start"] = disposition if disposition != "none" else "seed"
            else:
                solver_stats["warm_start"] = warm_detail
            span_attr(warm=solver_stats["warm_start"])
        span_attr(
            objective=float(objective),
            solves=int(solver_stats.get("solves", 1)),
            disjunctions=len(prologue.disjunctions),
        )

    elapsed = time.perf_counter() - started
    return _finalize_schedule(
        dag, image_width, image_height, memory_spec, options, prologue,
        start_cycles, objective, solver_stats, elapsed,
    )


def schedule_compound(
    dag: PipelineDAG,
    image_width: int,
    image_height: int,
    memory_spec: MemorySpec,
    variant_options: list[SchedulerOptions],
    *,
    base_hint: WarmHint | None = None,
) -> list[PipelineSchedule]:
    """Schedule several option-variants of one pipeline as one compound solve.

    This is the DSE sweep path (Fig. 10): the ``2^k`` per-stage coalescing
    variants share a DAG and a resolution, so their ILPs are merged into one
    block-diagonal compound model (:mod:`repro.ilp.compound`) and solved in a
    single call.  Before any model is built, each variant is offered
    ``base_hint`` (typically the sweep's all-DP baseline schedule); variants
    whose transferred candidate certifies optimal skip the model entirely.
    The remaining blocks are solved cold — never incumbent-seeded — so every
    variant's schedule is byte-identical to what a standalone
    :func:`schedule_pipeline` cold solve returns.

    Returns one :class:`PipelineSchedule` per entry of ``variant_options``,
    in order.
    """
    if not variant_options:
        return []
    _validate_request(dag, image_width, image_height)
    for options in variant_options:
        if options.disjunction_strategy != "bigm":
            raise SchedulingError("Compound scheduling requires the big-M strategy")
    backend = variant_options[0].backend
    if any(options.backend != backend for options in variant_options):
        raise SchedulingError("Compound scheduling requires one shared backend")

    started = time.perf_counter()
    plans = []
    with trace_span("solve", strategy="compound", variants=len(variant_options)):
        for options in variant_options:
            prologue = _constraint_prologue(dag, image_width, memory_spec, options)
            warm_cycles: dict[str, int] | None = None
            certified: int | None = None
            detail = "none"
            if base_hint is not None:
                warm_cycles, certified, detail = _attempt_warm_start(
                    dag, image_width, prologue, options, base_hint
                )
            plans.append({
                "options": options,
                "prologue": prologue,
                "certified": certified,
                "warm_cycles": warm_cycles,
                "detail": detail,
            })

        pending = [plan for plan in plans if plan["certified"] is None]
        if pending:
            built = [
                _build_big_m(
                    dag, image_width, plan["prologue"].dependencies,
                    plan["prologue"].disjunctions, plan["prologue"].horizon,
                )
                for plan in pending
            ]
            compound, blocks = merge_models(
                [model for model, _, _, _ in built], name=f"{dag.name}-compound"
            )
            combined, results = solve_compound(compound, blocks, backend=backend)
            for plan, (model, start_vars, _, _), result in zip(pending, built, results):
                if result.status is not SolveStatus.OPTIMAL:
                    raise SchedulingError(
                        f"Compound scheduling block for {dag.name!r} is {result.status.value} "
                        f"(backend {result.backend}, {result.message})"
                    )
                plan["start_cycles"] = {
                    stage: int(round(result.value_by_name(var.name)))
                    for stage, var in start_vars.items()
                }
                plan["objective"] = float(result.objective or 0.0)
                plan["stats"] = {
                    "backend": result.backend,
                    "ilp_variables": model.num_variables,
                    "ilp_constraints": model.num_constraints,
                    "lp_iterations": result.iterations,
                    "solves": 1,
                }
        for plan in plans:
            if plan["certified"] is not None:
                with trace_span("ilp", backend="warmstart"):
                    span_attr(
                        status="optimal", lp_iterations=0, bnb_pruned=0,
                        warm_start="certificate",
                    )
                plan["start_cycles"] = plan["warm_cycles"]
                plan["objective"] = float(plan["certified"])
                plan["stats"] = _certificate_stats()
        span_attr(
            objective=sum(plan["objective"] for plan in plans),
            solves=len(pending),
            certified=len(plans) - len(pending),
        )

    elapsed = time.perf_counter() - started
    schedules = []
    for plan in plans:
        stats = plan["stats"]
        stats["compound_variants"] = len(plans)
        if base_hint is not None:
            stats["warm_start"] = "certificate" if plan["certified"] is not None else plan["detail"]
        schedules.append(
            _finalize_schedule(
                dag, image_width, image_height, memory_spec, plan["options"],
                plan["prologue"], plan["start_cycles"], plan["objective"], stats,
                elapsed / len(plans),
            )
        )
    return schedules


def _finalize_schedule(
    dag: PipelineDAG,
    image_width: int,
    image_height: int,
    memory_spec: MemorySpec,
    options: SchedulerOptions,
    prologue: _Prologue,
    start_cycles: dict[str, int],
    objective: float,
    solver_stats: dict,
    elapsed: float,
) -> PipelineSchedule:
    solver_stats.update(
        {
            "objective": objective,
            "compile_seconds": elapsed,
            "ports": prologue.ports,
            "raw_contention_candidates": prologue.raw_candidates,
            "pruned_contention_candidates": prologue.pruned_candidates,
            "num_disjunctions": len(prologue.disjunctions),
            "subproblems": count_subproblems(prologue.disjunctions),
            "pruning": options.pruning,
            "strategy": options.disjunction_strategy,
        }
    )

    line_buffers = realize_line_buffers(
        dag, image_width, memory_spec, start_cycles, prologue.factors, prologue.ports
    )
    if dag.is_temporal():
        # Frame-buffer SRAM is start-cycle independent, so it never enters the
        # ILP objective; record it in the stats so reports can show the split.
        depths = dag.frame_depths()
        solver_stats["frame_buffer_pixels"] = sum(
            access.frame_buffer_pixels(depth, image_width, image_height)
            for depth in depths.values()
        )
        solver_stats["frame_buffers"] = len(depths)
    generator = "imagen+lc" if options.coalescing else "imagen"
    return PipelineSchedule(
        dag=dag,
        image_width=image_width,
        image_height=image_height,
        memory_spec=memory_spec,
        start_cycles=start_cycles,
        line_buffers=line_buffers,
        generator=generator,
        coalesce_factors=prologue.factors,
        solver_stats=solver_stats,
    )


# ---------------------------------------------------------------------------
# ILP construction helpers
# ---------------------------------------------------------------------------
def _effective_factors(
    dag: PipelineDAG,
    image_width: int,
    memory_spec: MemorySpec,
    options: SchedulerOptions,
) -> dict[str, int]:
    if not options.coalescing:
        return {name: 1 for name in dag.stage_names()}
    factors = coalescing_factors(dag, image_width, memory_spec)
    # Producers with temporal consumers are never coalesced (any policy): their
    # history lives in a frame buffer behind the line-buffer fabric, and the
    # coalescing rewrite (virtual readers via from_extent) is frame-oblivious —
    # it would silently drop the dt extent from the split windows.
    for edge in dag.edges():
        if edge.is_temporal:
            factors[edge.producer] = 1
    if options.coalescing_policy == "auto":
        # Coalescing only pays off where packing lines actually removes blocks:
        # multi-consumer buffers need extra consumer separation (which inflates
        # downstream buffers), and buffers shorter than three lines either gain
        # nothing or lose their cheap DFF realisation.  Leave those at factor 1
        # unless explicitly requested (per_stage_coalescing / the DSE sweep).
        for producer in dag.stage_names():
            if options.per_stage_coalescing.get(producer, False):
                continue
            edges = dag.out_edges(producer)
            if not edges:
                continue
            tallest = max(edge.window.height for edge in edges)
            if len(edges) > 1 or tallest < 3:
                factors[producer] = 1
    if options.per_stage_coalescing:
        for stage, enabled in options.per_stage_coalescing.items():
            if not enabled and stage in factors:
                factors[stage] = 1
    return factors


def _base_model(
    dag: PipelineDAG,
    dependencies: list[DependencyConstraint],
    horizon: int,
    name: str,
):
    """The model shared by both disjunction strategies: variables, Eq. 1a/1b."""
    model = Model(name=name, sense="min")
    start_vars = {
        stage: model.add_integer_var(f"S[{stage}]", lb=0, ub=horizon)
        for stage in dag.stage_names()
    }
    for stage in dag.input_stages():
        model.add_constraint(
            (start_vars[stage.name] + 0.0).eq(0.0), name=f"anchor[{stage.name}]"
        )
    for dep in dependencies:
        model.add_constraint(
            start_vars[dep.consumer] - start_vars[dep.producer] >= dep.min_delay,
            name=f"dep[{dep.producer}->{dep.consumer}]",
        )

    # Objective: sum over producers of the maximum consumer delay (Eq. 1a with
    # the ceiling dropped, which the paper shows preserves optimality).
    delay_vars = {}
    for producer in dag.stage_names():
        consumers = dag.consumers_of(producer)
        if not consumers:
            continue
        delay = model.add_integer_var(f"D[{producer}]", lb=0, ub=horizon)
        delay_vars[producer] = delay
        for consumer in consumers:
            model.add_constraint(
                delay - (start_vars[consumer] - start_vars[producer]) >= 0,
                name=f"maxdelay[{producer}->{consumer}]",
            )
    model.set_objective(linear_sum(delay_vars.values()))
    return model, start_vars, delay_vars


def _separation_constraint(start_vars, separation: PairSeparation):
    gap = separation.min_gap
    return (
        start_vars[separation.trailing] - start_vars[separation.leading] >= gap
    )


def _build_big_m(
    dag: PipelineDAG,
    image_width: int,
    dependencies: list[DependencyConstraint],
    disjunctions: list[Disjunction],
    horizon: int,
):
    """Build the big-M model; returns (model, start vars, delay vars, indicators)."""
    model, start_vars, delay_vars = _base_model(dag, dependencies, horizon, f"{dag.name}-bigm")
    big_m = 2 * horizon + image_width

    indicator_specs: list[tuple] = []
    for index, disjunction in enumerate(disjunctions):
        if disjunction.is_singleton:
            model.add_constraint(
                _separation_constraint(start_vars, disjunction.candidates[0]),
                name=f"sep[{disjunction.buffer}:{index}]",
            )
            continue
        indicators = []
        for cand_index, candidate in enumerate(disjunction.candidates):
            indicator = model.add_binary_var(f"y[{disjunction.buffer}:{index}:{cand_index}]")
            indicators.append(indicator)
            indicator_specs.append((indicator, candidate))
            gap = candidate.min_gap
            # S_t - S_l >= gap - M*(1 - y): enforced when the indicator y is 1.
            model.add_constraint(
                start_vars[candidate.trailing]
                - start_vars[candidate.leading]
                - big_m * indicator
                >= gap - big_m,
                name=f"sepM[{disjunction.buffer}:{index}:{cand_index}]",
            )
        model.add_constraint(
            linear_sum(indicators) >= 1, name=f"cover[{disjunction.buffer}:{index}]"
        )
    return model, start_vars, delay_vars, indicator_specs


def _warm_values(dag, start_vars, delay_vars, indicator_specs, cycles):
    """Complete a start-cycle candidate into a full big-M model assignment."""
    values = {var: float(cycles[stage]) for stage, var in start_vars.items()}
    for producer, delay_var in delay_vars.items():
        values[delay_var] = float(
            max(cycles[consumer] - cycles[producer] for consumer in dag.consumers_of(producer))
        )
    for indicator, candidate in indicator_specs:
        satisfied = cycles[candidate.trailing] - cycles[candidate.leading] >= candidate.min_gap
        values[indicator] = 1.0 if satisfied else 0.0
    return values


def _solve_big_m(
    dag: PipelineDAG,
    image_width: int,
    dependencies: list[DependencyConstraint],
    disjunctions: list[Disjunction],
    horizon: int,
    options: SchedulerOptions,
    warm_cycles: dict[str, int] | None = None,
):
    model, start_vars, delay_vars, indicator_specs = _build_big_m(
        dag, image_width, dependencies, disjunctions, horizon
    )
    warm_start = None
    if warm_cycles is not None:
        warm_start = WarmStart(
            values=_warm_values(dag, start_vars, delay_vars, indicator_specs, warm_cycles)
        )

    result = solve(model, backend=options.backend, warm_start=warm_start, raise_on_failure=False)
    if result.status is not SolveStatus.OPTIMAL:
        raise SchedulingError(
            f"Scheduling ILP for {dag.name!r} is {result.status.value} "
            f"(backend {result.backend}, {result.message})"
        )
    start_cycles = {stage: int(round(result.value(var))) for stage, var in start_vars.items()}
    stats = {
        "backend": result.backend,
        "ilp_variables": model.num_variables,
        "ilp_constraints": model.num_constraints,
        "lp_iterations": result.iterations,
        "solves": 1,
    }
    if warm_start is not None:
        stats["warm_seed"] = result.warm_start
    return start_cycles, float(result.objective or 0.0), stats


def _solve_by_enumeration(
    dag: PipelineDAG,
    image_width: int,
    dependencies: list[DependencyConstraint],
    disjunctions: list[Disjunction],
    horizon: int,
    options: SchedulerOptions,
):
    singles = [d for d in disjunctions if d.is_singleton]
    multis = [d for d in disjunctions if not d.is_singleton]
    total = count_subproblems(multis)
    if total > options.max_subproblems:
        raise SchedulingError(
            f"Enumeration would require {total} sub-problems "
            f"(limit {options.max_subproblems}); use the big-M strategy"
        )

    best_cycles: dict[str, int] | None = None
    best_objective = float("inf")
    solves = 0
    variables = constraints = 0
    choice_lists = [d.candidates for d in multis]
    for combo in itertools.product(*choice_lists) if multis else [()]:
        model, start_vars, _ = _base_model(
            dag, dependencies, horizon, f"{dag.name}-enum-{solves}"
        )
        for index, disjunction in enumerate(singles):
            model.add_constraint(
                _separation_constraint(start_vars, disjunction.candidates[0]),
                name=f"sep[{disjunction.buffer}:{index}]",
            )
        for index, candidate in enumerate(combo):
            model.add_constraint(
                _separation_constraint(start_vars, candidate), name=f"sepE[{index}]"
            )
        solves += 1
        variables = model.num_variables
        constraints = model.num_constraints
        result = solve(model, backend=options.backend, raise_on_failure=False)
        if result.status is not SolveStatus.OPTIMAL:
            continue
        if result.objective is not None and result.objective < best_objective:
            best_objective = float(result.objective)
            best_cycles = {
                stage: int(round(result.value(var))) for stage, var in start_vars.items()
            }

    if best_cycles is None:
        raise SchedulingError(
            f"All {solves} enumeration sub-problems for {dag.name!r} were infeasible"
        )
    stats = {
        "backend": options.backend,
        "ilp_variables": variables,
        "ilp_constraints": constraints,
        "solves": solves,
    }
    return best_cycles, best_objective, stats


# ---------------------------------------------------------------------------
# Physical realisation
# ---------------------------------------------------------------------------
def realize_line_buffers(
    dag: PipelineDAG,
    image_width: int,
    memory_spec: MemorySpec,
    start_cycles: dict[str, int],
    factors: dict[str, int],
    ports: int,
):
    """Derive the physical line-buffer configurations from a solved schedule.

    This is a pure function of its arguments, which makes a schedule fully
    reconstructible from ``(dag, width, spec, start_cycles, factors, ports)``
    alone — the property the on-disk compile cache
    (:mod:`repro.service.cache`) relies on to round-trip designs.
    """
    line_buffers = {}
    with trace_span("allocate"):
        for producer in dag.stage_names():
            edges = dag.out_edges(producer)
            if not edges:
                continue
            delays = [
                (start_cycles[e.consumer] - start_cycles[producer], e.window.height) for e in edges
            ]
            if min(delay for delay, _ in delays) <= 0:
                raise SchedulingError(
                    f"Non-positive producer->consumer delay for {producer!r}; schedule is invalid"
                )
            reader_heights = {edge.consumer: edge.window.height for edge in edges}
            max_delay = max(delay for delay, _ in delays)
            if max_delay <= dff_realization_threshold(image_width):
                line_buffers[producer] = allocate_register_buffer(
                    producer, image_width, max_delay, memory_spec, reader_heights=reader_heights
                )
                continue
            factor = max(1, factors.get(producer, 1))
            lines = access.minimal_slot_count(
                image_width, ports, delays, coalesce_factor=factor
            )
            factor = min(factor, lines)
            if factor > 1 and lines % factor:
                # Keep the line->block grouping stable as the buffer wraps around.
                lines += factor - (lines % factor)
            line_buffers[producer] = allocate_line_buffer(
                producer,
                image_width,
                lines,
                memory_spec,
                coalesce_factor=factor,
                reader_heights=reader_heights,
            )
        span_attr(buffers=len(line_buffers))
    return line_buffers
