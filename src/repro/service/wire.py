"""JSON wire codec for the HTTP serving front.

Stability: public.  (The payload layouts themselves are specified, with
versioning and compatibility rules, in ``docs/wire-protocol.md``.)

The network boundary of the compilation service speaks plain JSON.  This
module defines the (de)serialization of the two objects that cross it:

* :func:`target_to_wire` / :func:`target_from_wire` round-trip a full
  :class:`repro.api.CompileTarget` — pipeline DAG (stages, edges, stencil
  windows *and* stage expressions), image resolution,
  :class:`repro.memory.spec.MemorySpec`,
  :class:`repro.core.scheduler.SchedulerOptions`, generator name, label and
  metadata.  A round-tripped target has the same content fingerprint
  (:func:`repro.api.compile_fingerprint`) as the original, so remote clients
  hit exactly the cache entries that in-process callers warm.
* :func:`result_to_wire` flattens a :class:`repro.service.jobs.CompileResult`
  into fingerprint + source + seconds plus the area/power summary of
  :func:`repro.estimate.report.accelerator_report` — the metrics the paper
  reports per design point, without shipping a whole schedule.
* :func:`schedule_to_wire` / :func:`schedule_from_wire`,
  :func:`accelerator_to_wire` / :func:`accelerator_from_wire` and
  :func:`full_result_to_wire` / :func:`full_result_from_wire` are the
  *lossless* tier: the complete solved design — start cycles, coalesce
  factors, solver stats, and every physical line-buffer configuration
  (block assignments, DFF pixels, FIFO chains, per-buffer memory specs) —
  round-trips bit-identically.  This is what the ``process`` executor backend
  ships back from worker processes instead of pickled objects, and what lets
  baseline (Darkroom/SODA/FixyNN) schedules, whose line buffers cannot be
  re-derived by the ImaGen allocator, persist through
  :class:`repro.service.cache.DiskCacheStore`.

The layout mirrors the canonical serialization used for fingerprinting
(:mod:`repro.api.fingerprint` / ``PipelineDAG.canonical_form``): memory specs
flatten through :func:`repro.api.fingerprint.normalize_memory_spec`, stencil
windows use the same ``[min_dx, max_dx, min_dy, max_dy]`` quadruple, and
free-form :attr:`Stage.metadata` is excluded just as it is from the
fingerprint.  Unlike the canonical form — which collapses expressions to
display strings because a hash only needs stability — the wire form keeps
expressions structural, so the receiving side rebuilds the identical AST and
produces bit-identical functional simulation, RTL and PE-area estimates.

Malformed payloads raise :class:`WireFormatError` (a ``ValueError``), which
the HTTP layer maps to a 400 response.
"""

from __future__ import annotations

from dataclasses import asdict, fields

from repro.api.fingerprint import normalize_memory_spec
from repro.api.target import CompileTarget
from repro.core.compiler import CompiledAccelerator
from repro.core.schedule import PipelineSchedule
from repro.core.scheduler import SchedulerOptions
from repro.dsl import ast
from repro.estimate.report import accelerator_report
from repro.ir.dag import PipelineDAG, Stage, window_to_list
from repro.ir.stencil import StencilWindow
from repro.memory.spec import MemorySpec
from repro.service.cache import deserialize_schedule, serialize_schedule
from repro.service.jobs import BatchResult, CompileResult
from repro.trace import spans_from_payload, spans_to_payload

#: Bump when the wire layout changes incompatibly; requests carrying another
#: version are rejected with a clear error instead of being misparsed.
#:
#: Version 2 (the temporal-IR release) adds two *optional* extensions to the
#: target payload: a ``dt`` field on ``ref`` expressions and a 6-element
#: ``[min_dx, max_dx, min_dy, max_dy, min_dt, max_dt]`` edge-window form.
#: Purely spatial targets never use either, so the encoder stamps them
#: ``version: 1`` — byte-identical to what a v1 build emits — and stamps
#: ``version: 2`` only when the pipeline actually reads past frames.  The
#: decoder accepts both versions (:data:`READABLE_WIRE_VERSIONS`).
WIRE_FORMAT_VERSION = 2

#: Target-payload versions this build decodes.
READABLE_WIRE_VERSIONS = (1, 2)


class WireFormatError(ValueError):
    """A wire payload that cannot be decoded into the requested object."""


def _require(payload: dict, key: str, context: str):
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise WireFormatError(f"{context} is missing required field {key!r}") from None


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
def expr_to_wire(expr: ast.Expr | None) -> dict | None:
    """Serialize one stage expression AST (``None`` for input stages)."""
    if expr is None:
        return None
    if isinstance(expr, ast.Const):
        return {"kind": "const", "value": expr.value}
    if isinstance(expr, ast.StageRef):
        ref = {"kind": "ref", "stage": expr.stage, "dx": expr.dx, "dy": expr.dy}
        # Spatial refs omit dt entirely, keeping v1 payloads byte-identical.
        if expr.dt:
            ref["dt"] = expr.dt
        return ref
    if isinstance(expr, ast.BinOp):
        return {
            "kind": "binop",
            "op": expr.op,
            "left": expr_to_wire(expr.left),
            "right": expr_to_wire(expr.right),
        }
    if isinstance(expr, ast.UnaryOp):
        return {"kind": "unary", "op": expr.op, "operand": expr_to_wire(expr.operand)}
    if isinstance(expr, ast.Call):
        return {"kind": "call", "fn": expr.fn, "args": [expr_to_wire(a) for a in expr.args]}
    raise WireFormatError(f"Cannot serialize expression node {type(expr).__name__}")


def expr_from_wire(payload: dict | None) -> ast.Expr | None:
    """Rebuild a stage expression from :func:`expr_to_wire` output."""
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise WireFormatError(f"Expression must be an object or null, got {type(payload).__name__}")
    kind = _require(payload, "kind", "expression")
    try:
        if kind == "const":
            return ast.Const(float(_require(payload, "value", "const expression")))
        if kind == "ref":
            return ast.StageRef(
                str(_require(payload, "stage", "ref expression")),
                int(payload.get("dx", 0)),
                int(payload.get("dy", 0)),
                int(payload.get("dt", 0)),
            )
        if kind == "binop":
            return ast.BinOp(
                str(_require(payload, "op", "binop expression")),
                expr_from_wire(_require(payload, "left", "binop expression")),
                expr_from_wire(_require(payload, "right", "binop expression")),
            )
        if kind == "unary":
            return ast.UnaryOp(
                str(_require(payload, "op", "unary expression")),
                expr_from_wire(_require(payload, "operand", "unary expression")),
            )
        if kind == "call":
            args = _require(payload, "args", "call expression")
            return ast.Call(
                str(_require(payload, "fn", "call expression")),
                tuple(expr_from_wire(a) for a in args),
            )
    except WireFormatError:
        raise
    except Exception as exc:  # bad operator, wrong arity, non-numeric offset, ...
        raise WireFormatError(f"Invalid {kind!r} expression: {exc}") from None
    raise WireFormatError(f"Unknown expression kind {kind!r}")


# ---------------------------------------------------------------------------
# DAG
# ---------------------------------------------------------------------------
def dag_to_wire(dag: PipelineDAG) -> dict:
    """Serialize the pipeline graph, preserving stage/edge insertion order."""
    return {
        "name": dag.name,
        "stages": [
            {
                "name": stage.name,
                "is_input": stage.is_input,
                "is_output": stage.is_output,
                "virtual_of": stage.virtual_of,
                "expression": expr_to_wire(stage.expression),
            }
            for stage in dag.stages()
        ],
        "edges": [
            {
                "producer": edge.producer,
                "consumer": edge.consumer,
                "window": window_to_list(edge.window),
            }
            for edge in dag.edges()
        ],
    }


def dag_from_wire(payload: dict) -> PipelineDAG:
    """Rebuild a validated :class:`PipelineDAG` from :func:`dag_to_wire` output."""
    if not isinstance(payload, dict):
        raise WireFormatError(f"DAG must be an object, got {type(payload).__name__}")
    dag = PipelineDAG(str(payload.get("name", "pipeline")))
    stages = _require(payload, "stages", "DAG")
    edges = _require(payload, "edges", "DAG")
    try:
        for stage in stages:
            dag.add_stage(
                Stage(
                    name=str(_require(stage, "name", "stage")),
                    is_input=bool(stage.get("is_input", False)),
                    is_output=bool(stage.get("is_output", False)),
                    virtual_of=stage.get("virtual_of"),
                    expression=expr_from_wire(stage.get("expression")),
                )
            )
        for edge in edges:
            window = _require(edge, "window", "edge")
            if not isinstance(window, (list, tuple)) or len(window) not in (4, 6):
                raise WireFormatError(
                    "Edge window must be [min_dx, max_dx, min_dy, max_dy] or "
                    "[min_dx, max_dx, min_dy, max_dy, min_dt, max_dt]"
                )
            dag.add_edge(
                str(_require(edge, "producer", "edge")),
                str(_require(edge, "consumer", "edge")),
                StencilWindow(*(int(v) for v in window)),
            )
        return dag.validated()
    except WireFormatError:
        raise
    except Exception as exc:  # duplicate stages, cycles, degenerate windows, ...
        raise WireFormatError(f"Invalid pipeline DAG: {exc}") from None


# ---------------------------------------------------------------------------
# Memory spec / scheduler options
# ---------------------------------------------------------------------------
def memory_spec_from_wire(payload: dict) -> MemorySpec:
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"memory_spec must be an object, got {type(payload).__name__}"
        )
    known = {f.name for f in fields(MemorySpec)}
    unknown = set(payload) - known
    if unknown:
        raise WireFormatError(f"Unknown memory_spec fields: {sorted(unknown)}")
    try:
        return MemorySpec(**payload)
    except Exception as exc:
        raise WireFormatError(f"Invalid memory_spec: {exc}") from None


def options_to_wire(options: SchedulerOptions) -> dict:
    """All scheduler knobs, verbatim (unlike the fingerprint normalization,
    which drops fields that cannot change the schedule)."""
    return asdict(options)


def options_from_wire(payload: dict) -> SchedulerOptions:
    if not isinstance(payload, dict):
        raise WireFormatError(f"options must be an object, got {type(payload).__name__}")
    known = {f.name for f in fields(SchedulerOptions)}
    unknown = set(payload) - known
    if unknown:
        raise WireFormatError(f"Unknown options fields: {sorted(unknown)}")
    try:
        return SchedulerOptions(**payload)
    except Exception as exc:
        raise WireFormatError(f"Invalid options: {exc}") from None


# ---------------------------------------------------------------------------
# Targets
# ---------------------------------------------------------------------------
def target_to_wire(target: CompileTarget) -> dict:
    """Flatten one :class:`CompileTarget` into a JSON-serializable request.

    ``metadata`` is carried verbatim, so it must itself be JSON-serializable
    (it is free-form caller data; the library never puts non-JSON values in
    it).
    """
    payload = {
        # Spatial targets stamp version 1 — byte-identical to a v1 build's
        # output — so their fingerprints and cache keys never move.
        "version": WIRE_FORMAT_VERSION if target.dag.is_temporal() else 1,
        "dag": dag_to_wire(target.dag),
        "resolution": [target.image_width, target.image_height],
        "memory_spec": normalize_memory_spec(target.memory_spec),
        "options": options_to_wire(target.options),
        "generator": target.generator,
    }
    if target.label:
        payload["label"] = target.label
    if target.metadata:
        payload["metadata"] = dict(target.metadata)
    return payload


def target_from_wire(payload: dict) -> CompileTarget:
    """Rebuild a :class:`CompileTarget` from :func:`target_to_wire` output.

    The round-tripped target carries the same content fingerprint as the
    original, so the serving layer's cache and in-flight dedup treat remote
    and in-process submissions of one design point identically.
    """
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"Compile target must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("version", WIRE_FORMAT_VERSION)
    if version not in READABLE_WIRE_VERSIONS:
        raise WireFormatError(
            f"Unsupported wire format version {version!r} (this build speaks "
            f"{', '.join(str(v) for v in READABLE_WIRE_VERSIONS)})"
        )
    resolution = _require(payload, "resolution", "compile target")
    if not isinstance(resolution, (list, tuple)) or len(resolution) != 2:
        raise WireFormatError("resolution must be [image_width, image_height]")
    try:
        width, height = (int(v) for v in resolution)
    except (TypeError, ValueError):
        raise WireFormatError(f"Non-integer resolution {resolution!r}") from None
    metadata = payload.get("metadata") or {}
    if not isinstance(metadata, dict):
        raise WireFormatError(f"metadata must be an object, got {type(metadata).__name__}")
    try:
        return CompileTarget(
            dag=dag_from_wire(_require(payload, "dag", "compile target")),
            image_width=width,
            image_height=height,
            memory_spec=memory_spec_from_wire(
                _require(payload, "memory_spec", "compile target")
            ),
            options=options_from_wire(_require(payload, "options", "compile target")),
            generator=str(payload.get("generator", "imagen")),
            label=str(payload.get("label", "")),
            metadata=dict(metadata),
        )
    except WireFormatError:
        raise
    except Exception as exc:  # e.g. empty generator name
        raise WireFormatError(f"Invalid compile target: {exc}") from None


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
def result_to_wire(result: CompileResult, *, include_spans: bool = False) -> dict:
    """Flatten one :class:`CompileResult` into the response body.

    Successful results carry the flat area/power summary of
    :func:`repro.estimate.report.accelerator_report` (the per-design-point
    metrics of the paper's tables) instead of the full schedule; failures
    carry the captured error string.  Both shapes share fingerprint, source
    and latency so clients can always account for a request the same way.

    ``include_spans=True`` (the HTTP front's ``?trace=1``) adds the nested
    stage-span tree recorded while the job ran; it is omitted by default so
    the steady-state response body stays small.
    """
    payload = {
        "ok": result.ok,
        "fingerprint": result.fingerprint,
        "label": result.target.display_label,
        "generator": result.target.generator,
        "source": result.source,
        "seconds": result.seconds,
    }
    if result.error is not None:
        payload["error"] = result.error
    if result.accelerator is not None:
        payload["report"] = accelerator_report(result.accelerator).row()
    if include_spans:
        payload["spans"] = spans_to_payload(result.spans)
    return payload


def batch_result_to_wire(batch: BatchResult, *, include_spans: bool = False) -> dict:
    """Flatten a :class:`BatchResult`: ordered per-item results + aggregates."""
    payload = {
        "results": [
            result_to_wire(result, include_spans=include_spans)
            for result in batch.results
        ],
        "seconds": batch.seconds,
    }
    if batch.cache_stats is not None:
        payload["cache_stats"] = batch.cache_stats.as_dict()
    return payload


# ---------------------------------------------------------------------------
# Lossless schedules / accelerators / results (the process-boundary tier)
# ---------------------------------------------------------------------------
def schedule_to_wire(schedule: PipelineSchedule) -> dict:
    """Serialize a full solved schedule, line buffers included.

    Unlike the disk-cache payload for ImaGen schedules — which stores only
    the solver decisions and re-derives the buffers on load — the wire form
    always embeds every physical :class:`LineBufferConfig`, so the receiving
    side reconstructs the design without running any allocator code.
    """
    return serialize_schedule(schedule, include_line_buffers=True)


def schedule_from_wire(payload: dict, dag: PipelineDAG) -> PipelineSchedule:
    """Rebuild a schedule from :func:`schedule_to_wire` output.

    The caller supplies the DAG (the wire result travels next to the target
    that produced it, and content fingerprints guarantee they match).
    """
    if not isinstance(payload, dict):
        raise WireFormatError(f"Schedule must be an object, got {type(payload).__name__}")
    try:
        return deserialize_schedule(payload, dag)
    except WireFormatError:
        raise
    except Exception as exc:  # bad spec fields, missing stages, version skew
        raise WireFormatError(f"Invalid schedule payload: {exc}") from None


#: Accelerator metadata keys the compiler records as tuples; JSON turns them
#: into lists, so decoding restores the tuple shape callers compare against.
_TUPLE_METADATA_KEYS = ("schedule_sources", "schedule_fingerprints")


def accelerator_to_wire(accelerator: CompiledAccelerator) -> dict:
    """Serialize a :class:`CompiledAccelerator` (schedule + compile metadata).

    The target and options are *not* shipped: a wire accelerator always
    travels as part of a result that answers a concrete target, and
    :func:`accelerator_from_wire` reattaches the receiver's own target
    object, which keeps labels and caller metadata by reference.
    """
    metadata = {}
    for key, value in accelerator.metadata.items():
        metadata[key] = list(value) if isinstance(value, tuple) else value
    return {
        "schedule": schedule_to_wire(accelerator.schedule),
        "metadata": metadata,
    }


def accelerator_from_wire(payload: dict, target: CompileTarget) -> CompiledAccelerator:
    """Rebuild an accelerator from :func:`accelerator_to_wire` output."""
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"Accelerator must be an object, got {type(payload).__name__}"
        )
    metadata = dict(payload.get("metadata") or {})
    for key in _TUPLE_METADATA_KEYS:
        if key in metadata and isinstance(metadata[key], list):
            metadata[key] = tuple(metadata[key])
    return CompiledAccelerator(
        schedule=schedule_from_wire(_require(payload, "schedule", "accelerator"), target.dag),
        options=target.options,
        metadata=metadata,
        target=target,
    )


def full_result_to_wire(result: CompileResult) -> dict:
    """Serialize one :class:`CompileResult` losslessly (process boundary).

    The flat :func:`result_to_wire` form is for network clients that only
    want the paper's metrics; this form carries the whole design so the
    parent engine can hand callers the same accelerator object graph a
    thread-backend compile would have produced.
    """
    payload = {
        "fingerprint": result.fingerprint,
        "source": result.source,
        "seconds": result.seconds,
    }
    if result.error is not None:
        payload["error"] = result.error
    if result.accelerator is not None:
        payload["accelerator"] = accelerator_to_wire(result.accelerator)
    if result.spans:
        payload["spans"] = spans_to_payload(result.spans)
    return payload


def full_result_from_wire(payload: dict, target: CompileTarget) -> CompileResult:
    """Rebuild a :class:`CompileResult` from :func:`full_result_to_wire` output.

    ``target`` becomes the result's target (the submitting side's object, so
    labels/metadata compare by identity exactly as with in-process backends).
    """
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"Compile result must be an object, got {type(payload).__name__}"
        )
    accelerator_payload = payload.get("accelerator")
    accelerator = (
        accelerator_from_wire(accelerator_payload, target)
        if accelerator_payload is not None
        else None
    )
    error = payload.get("error")
    try:
        spans = spans_from_payload(payload.get("spans"))
    except ValueError as exc:
        raise WireFormatError(f"Invalid spans payload: {exc}") from None
    return CompileResult(
        target=target,
        fingerprint=str(payload.get("fingerprint", "")) or target.fingerprint,
        accelerator=accelerator,
        error=None if error is None else str(error),
        source=str(payload.get("source", "solver")),
        seconds=float(payload.get("seconds", 0.0)),
        spans=spans,
    )


# ---------------------------------------------------------------------------
# Verify payloads (v1/v2) — see docs/verification.md and docs/wire-protocol.md
# ---------------------------------------------------------------------------
def verify_request_to_wire(request: "VerifyRequest") -> dict:
    """Encode one :class:`~repro.service.verify.VerifyRequest`.

    Defaults are omitted on the wire — a minimal request is just
    ``{"target": {...}}`` — and ``version`` follows the same
    lowest-sufficient-version rule as target payloads: the v1 check kinds
    (``golden``/``cycle``/``both``) stamp 1, so their wire bytes are stable
    across the v2 bump; ``rtl``/``perf`` stamp 2.
    """
    # Function-local: verify pulls in numpy and the sim stack, which process
    # workers (whose only wire users are compile jobs) must not pay to import.
    from repro.service.verify import CHECK_KIND_MIN_VERSION, VERIFY_FORMAT_VERSION

    payload = {
        "version": CHECK_KIND_MIN_VERSION.get(request.check, VERIFY_FORMAT_VERSION),
        "target": target_to_wire(request.target),
        "check": request.check,
    }
    if request.frames != 2:
        payload["frames"] = request.frames
    if request.seed != 0:
        payload["seed"] = request.seed
    if request.tolerance != 0.0:
        payload["tolerance"] = request.tolerance
    if request.expected_digest is not None:
        payload["expected_digest"] = request.expected_digest
    if request.strict:
        payload["strict"] = True
    return payload


def verify_request_from_wire(payload: dict) -> "VerifyRequest":
    """Decode a verify request; unknown fields and bad versions are rejected.

    Any version in ``READABLE_VERIFY_VERSIONS`` decodes (v1 payloads stay
    readable after the v2 bump); future versions are rejected, and a check
    kind stamped below its own floor (``rtl``/``perf`` in a v1 payload) is a
    format error — a v1-era peer could never have produced it.
    """
    from repro.service.verify import (
        CHECK_KIND_MIN_VERSION,
        READABLE_VERIFY_VERSIONS,
        VERIFY_FORMAT_VERSION,
        VERIFY_REQUEST_FIELDS,
        VerifyRequest,
    )

    if not isinstance(payload, dict):
        raise WireFormatError(
            f"Verify request must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("version", VERIFY_FORMAT_VERSION)
    if version not in READABLE_VERIFY_VERSIONS:
        raise WireFormatError(
            f"Unsupported verify payload version {version!r} (this build speaks "
            f"{', '.join(str(v) for v in READABLE_VERIFY_VERSIONS)})"
        )
    known = {"version", "target"} | {name for name, *_ in VERIFY_REQUEST_FIELDS}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise WireFormatError(f"Unknown verify request field(s): {', '.join(unknown)}")
    check = str(payload.get("check", "both"))
    floor = CHECK_KIND_MIN_VERSION.get(check)
    if floor is not None and version < floor:
        raise WireFormatError(
            f"Check kind {check!r} needs verify payload version >= {floor}, "
            f"got version {version}"
        )
    target = target_from_wire(_require(payload, "target", "verify request"))
    expected = payload.get("expected_digest")
    try:
        return VerifyRequest(
            target=target,
            check=str(payload.get("check", "both")),
            frames=int(payload.get("frames", 2)),
            seed=int(payload.get("seed", 0)),
            tolerance=float(payload.get("tolerance", 0.0)),
            expected_digest=None if expected is None else str(expected),
            strict=bool(payload.get("strict", False)),
        )
    except (TypeError, ValueError) as exc:
        raise WireFormatError(f"Invalid verify request: {exc}") from None


def verify_result_to_wire(result: "VerifyResult", *, include_spans: bool = False) -> dict:
    """Flatten one :class:`~repro.service.verify.VerifyResult` for HTTP clients.

    ``ok`` says the check *ran*; ``passed`` says the design survived it —
    a failed golden check is ``ok: true, passed: false``.  ``golden``,
    ``cycle``, ``rtl`` and ``perf`` appear only for the check kinds that
    ran; errors carry
    ``error``/``error_kind`` instead (``error_kind: "SimulationError"`` is
    what the HTTP front maps to 422 ``verify-failed``).
    """
    payload = {
        "ok": result.ok,
        "passed": result.passed,
        "check": result.request.check,
        "fingerprint": result.fingerprint,
        "compile_fingerprint": result.compile_fingerprint,
        "source": result.source,
        "seconds": result.seconds,
    }
    if result.compile_source is not None:
        payload["compile_source"] = result.compile_source
    if result.golden is not None:
        payload["golden"] = result.golden
    if result.cycle is not None:
        payload["cycle"] = result.cycle
    if result.rtl is not None:
        payload["rtl"] = result.rtl
    if result.perf is not None:
        payload["perf"] = result.perf
    if result.error is not None:
        payload["error"] = result.error
        payload["error_kind"] = result.error_kind
    if include_spans:
        payload["spans"] = spans_to_payload(result.spans)
    return payload
