"""Content-addressed fingerprints for compile targets.

The compile cache (:mod:`repro.service.cache`) is keyed by a stable hash of
everything a generator's output depends on: the pipeline graph, the image
resolution, the memory specification, the generator name, and — for the
ImaGen optimizer — the scheduler options.  Two targets with the same
fingerprint are guaranteed to produce the same design, so the second one can
be served from cache without running the generator again.

Normalization rules
-------------------
* The DAG is hashed through :meth:`repro.ir.dag.PipelineDAG.canonical_form`,
  which is invariant to stage/edge insertion order and to the pipeline's
  display name.  Edge windows serialize as 4-element spatial quads; an edge
  with temporal extent appends ``[min_dt, max_dt]`` for a 6-element form, so
  purely spatial DAGs hash exactly as they did before the time axis existed
  while any temporal read necessarily moves the digest.
* ``SchedulerOptions.coalescing_policy`` and ``per_stage_coalescing`` only
  influence the schedule when ``coalescing`` is enabled, so they are dropped
  from the fingerprint when it is off.  This is what lets the all-DP design
  point of a DSE sweep (``coalescing=False, policy="all"``) hit the cache
  entry written by a plain baseline compile (``policy="auto"``).
* The generator name is fingerprinted only when it is not ``"imagen"``, so
  digests of optimizer requests are stable across library versions that
  predate generator-aware fingerprints (existing disk caches stay valid).
* Baseline generators (Darkroom/SODA/FixyNN) ignore scheduler options, so
  options are dropped entirely from their fingerprints — a baseline design is
  cacheable regardless of what options the request happened to carry.
* Everything is serialized to JSON with sorted keys before hashing, so dict
  ordering never leaks into the digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.api.target import IMAGEN_GENERATOR, CompileTarget
from repro.core.scheduler import SchedulerOptions
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec

#: Bump when the canonical serialization or the scheduler semantics change in
#: a way that invalidates previously persisted cache entries.
FINGERPRINT_VERSION = 1


def normalize_options(options: SchedulerOptions) -> dict:
    """Reduce scheduler options to the fields that can change the schedule."""
    data = {
        "ports": options.ports,
        "coalescing": options.coalescing,
        "pruning": options.pruning,
        "disjunction_strategy": options.disjunction_strategy,
        "backend": options.backend,
        "max_subproblems": options.max_subproblems,
    }
    if options.coalescing:
        data["coalescing_policy"] = options.coalescing_policy
        data["per_stage_coalescing"] = sorted(options.per_stage_coalescing.items())
    return data


def normalize_memory_spec(spec: MemorySpec) -> dict:
    """Flatten a memory spec into plain JSON-serializable fields."""
    return asdict(spec)


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dag_fingerprint(dag: PipelineDAG) -> str:
    """Stable hash of the pipeline structure alone."""
    return _digest({"version": FINGERPRINT_VERSION, "dag": dag.canonical_form()})


def compile_fingerprint(
    target: CompileTarget | PipelineDAG,
    image_width: int | None = None,
    image_height: int | None = None,
    memory_spec: MemorySpec | None = None,
    options: SchedulerOptions | None = None,
    *,
    generator: str = IMAGEN_GENERATOR,
) -> str:
    """Stable hash of one complete compile target.

    The preferred form is ``compile_fingerprint(target)`` with a
    :class:`CompileTarget`; the loose positional form
    ``(dag, width, height, spec, options)`` is kept for callers that predate
    the unified request object.
    """
    if isinstance(target, CompileTarget):
        dag = target.dag
        image_width, image_height = target.image_width, target.image_height
        memory_spec, options, generator = target.memory_spec, target.options, target.generator
    else:
        dag = target
        if image_width is None or image_height is None or memory_spec is None or options is None:
            raise TypeError(
                "compile_fingerprint needs a CompileTarget or explicit "
                "(dag, image_width, image_height, memory_spec, options)"
            )
    payload = {
        "version": FINGERPRINT_VERSION,
        "dag": dag.canonical_form(),
        "resolution": [image_width, image_height],
        "memory_spec": normalize_memory_spec(memory_spec),
    }
    if generator == IMAGEN_GENERATOR:
        payload["options"] = normalize_options(options)
    else:
        # Baseline generators ignore scheduler options: fingerprinting the
        # generator name alone keeps their designs cacheable across requests
        # that differ only in optimizer knobs.
        payload["generator"] = generator
    return _digest(payload)
