"""Sec. 8.2: compilation speed, constraint-pruning speedup, and scalability.

The paper reports ~14.5 ms average compile time, a ~4x compile-time reduction
from constraint pruning on multi-consumer algorithms (measured there in terms
of the number of ILP sub-problems), ~37% faster compilation than Darkroom's
linearizing compiler, and scalability from 9-stage to 60-stage pipelines.
"""

from __future__ import annotations

import time

from repro.algorithms import ALGORITHM_NAMES, build_algorithm, build_synthetic_pipeline
from repro.api import CompileTarget
from repro.baselines.darkroom import DarkroomGenerator
from repro.core.pruning import count_subproblems, prune_disjunctions
from repro.core.constraints import contention_disjunctions
from repro.core.compiler import compile_pipeline
from repro.core.scheduler import SchedulerOptions, schedule_pipeline
from repro.memory.spec import asic_dual_port

W, H = 480, 320


def _target(dag) -> CompileTarget:
    return CompileTarget(dag, image_width=W, image_height=H)


def compile_all_algorithms():
    times = {}
    for algorithm in ALGORITHM_NAMES:
        accelerator = compile_pipeline(_target(build_algorithm(algorithm)))
        times[algorithm] = accelerator.compile_seconds * 1000.0
    return times


def test_sec82_compile_time_per_algorithm(benchmark):
    times = benchmark(compile_all_algorithms)
    print("\nSec 8.2: compilation time per algorithm (ms)")
    for algorithm, milliseconds in times.items():
        print(f"  {algorithm:<12}{milliseconds:>10.1f} ms")
    average = sum(times.values()) / len(times)
    print(f"  {'average':<12}{average:>10.1f} ms  (paper: 14.5 ms with OR-Tools)")
    assert average < 2000.0


def test_sec82_pruning_reduces_subproblems(benchmark):
    def pruning_factor():
        factors = {}
        for algorithm in ("canny-m", "harris-m", "unsharp-m", "xcorr-m", "denoise-m"):
            dag = build_algorithm(algorithm)
            raw = contention_disjunctions(dag, W, ports=2)
            pruned = prune_disjunctions(raw, dag)
            factors[algorithm] = (count_subproblems(raw), count_subproblems(pruned))
        return factors

    factors = benchmark(pruning_factor)
    print("\nSec 8.2: ILP sub-problems without / with constraint pruning")
    total_raw = total_pruned = 1
    for algorithm, (raw, pruned) in factors.items():
        print(f"  {algorithm:<12}{raw:>6} -> {pruned}")
        total_raw *= max(raw, 1)
        total_pruned *= max(pruned, 1)
    for raw, pruned in factors.values():
        assert pruned <= raw
    assert any(pruned < raw for raw, pruned in factors.values())


def test_sec82_faster_than_darkroom_linearizing_compiler(benchmark):
    def compare():
        ours_ms = 0.0
        darkroom_ms = 0.0
        for algorithm in ALGORITHM_NAMES:
            dag = build_algorithm(algorithm)
            start = time.perf_counter()
            compile_pipeline(_target(dag))
            ours_ms += (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            DarkroomGenerator().generate(dag, W, H)
            darkroom_ms += (time.perf_counter() - start) * 1000
        return ours_ms, darkroom_ms

    ours_ms, darkroom_ms = benchmark(compare)
    print(
        f"\nSec 8.2: total compile time ours {ours_ms:.1f} ms vs Darkroom-style "
        f"{darkroom_ms:.1f} ms (paper: ours 37.4% faster; our Darkroom baseline "
        "skips the ILP entirely, so this comparison is indicative only)"
    )
    assert ours_ms > 0 and darkroom_ms > 0


def test_sec82_scalability_sweep(benchmark):
    def sweep():
        timings = {}
        for stages in (9, 18, 30, 45, 60):
            dag = build_synthetic_pipeline(stages)
            start = time.perf_counter()
            schedule = schedule_pipeline(dag, W, H, asic_dual_port(), SchedulerOptions())
            timings[stages] = (time.perf_counter() - start) * 1000.0
            assert len(schedule.start_cycles) == stages
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nSec 8.2: scalability (synthetic pipelines, 1/3 multi-consumer stages)")
    for stages, milliseconds in timings.items():
        print(f"  {stages:>3} stages: {milliseconds:>9.1f} ms")
    assert timings[60] < 60_000.0
