"""Unit tests for the functional (pixel-accurate) simulator."""

import numpy as np
import pytest

from repro.baselines.darkroom import linearize_dag
from repro.dsl.builder import PipelineBuilder, window_sum
from repro.errors import SimulationError
from repro.sim.functional import run_functional

from tests.conftest import build_chain, build_paper_example


def box_filter(image: np.ndarray, size: int) -> np.ndarray:
    """Edge-clamped box filter reference built directly on NumPy."""
    half = (size - 1) // 2
    height, width = image.shape
    output = np.zeros_like(image)
    for dy in range(-half, size - half):
        for dx in range(-half, size - half):
            ys = np.clip(np.arange(height) + dy, 0, height - 1)
            xs = np.clip(np.arange(width) + dx, 0, width - 1)
            output += image[np.ix_(ys, xs)]
    return output


class TestFunctionalExecution:
    def test_single_stage_window_sum(self, small_image):
        dag = build_chain(2, stencil=3)
        result = run_functional(dag, small_image)
        np.testing.assert_allclose(result.image("K1"), box_filter(small_image, 3))

    def test_chain_composition(self, small_image):
        dag = build_chain(3, stencil=3)
        result = run_functional(dag, small_image)
        expected = box_filter(box_filter(small_image, 3), 3)
        np.testing.assert_allclose(result.output(), expected)

    def test_paper_example(self, small_image):
        dag = build_paper_example()
        result = run_functional(dag, small_image)
        assert result.output().shape == small_image.shape
        assert "K1" in result.images and "K2" in result.images

    def test_single_input_array_shortcut(self, small_image):
        dag = build_chain(2)
        by_name = run_functional(dag, {"K0": small_image})
        by_array = run_functional(dag, small_image)
        np.testing.assert_allclose(by_name.output(), by_array.output())

    def test_relay_stages_forward_data(self, small_image):
        dag = build_paper_example()
        linearized = linearize_dag(dag)
        original = run_functional(dag, small_image)
        rewritten = run_functional(linearized, small_image)
        np.testing.assert_allclose(original.output(), rewritten.output())

    def test_multiple_outputs(self, small_image):
        builder = PipelineBuilder("two-out")
        k0 = builder.input("K0")
        builder.output("A", window_sum(k0, 3, 3))
        builder.output("B", k0(0, 0) * 2.0)
        dag = builder.build()
        result = run_functional(dag, small_image)
        assert set(result.outputs()) == {"A", "B"}


class TestFunctionalErrors:
    def test_missing_input_image(self):
        dag = build_chain(2)
        with pytest.raises(SimulationError):
            run_functional(dag, {})

    def test_wrong_dimensionality(self):
        # 3-D is a legal (frames, height, width) batch now; 4-D is not.
        dag = build_chain(2)
        with pytest.raises(SimulationError):
            run_functional(dag, {"K0": np.zeros((2, 4, 4, 3))})

    def test_mismatched_shapes(self, small_image):
        builder = PipelineBuilder("two-in")
        a = builder.input("A")
        b = builder.input("B")
        builder.output("C", a(0, 0) + b(0, 0))
        dag = builder.build()
        with pytest.raises(SimulationError):
            run_functional(dag, {"A": small_image, "B": small_image[:-2, :]})

    def test_unknown_stage_image(self, small_image):
        dag = build_chain(2)
        result = run_functional(dag, small_image)
        with pytest.raises(SimulationError):
            result.image("missing")

    def test_array_shortcut_requires_single_input(self, small_image):
        builder = PipelineBuilder("two-in")
        a = builder.input("A")
        b = builder.input("B")
        builder.output("C", a(0, 0) + b(0, 0))
        dag = builder.build()
        with pytest.raises(SimulationError):
            run_functional(dag, small_image)
