"""Temporal extensions of the IR: stencil windows, DAG queries, validation."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.ir.dag import PipelineDAG, Stage, window_from_list, window_to_list
from repro.ir.stencil import StencilWindow
from repro.ir.validate import MAX_TEMPORAL_DEPTH


class TestTemporalStencilWindow:
    def test_defaults_are_spatial(self):
        window = StencilWindow(-1, 1, -1, 1)
        assert window.min_dt == 0 and window.max_dt == 0
        assert not window.is_temporal
        assert window.depth == 1
        assert window.temporal_depth == 0

    def test_temporal_constructor(self):
        window = StencilWindow.temporal(3, 3, 2)
        assert (window.min_dx, window.max_dx) == (-1, 1)
        assert (window.min_dy, window.max_dy) == (-1, 1)
        assert (window.min_dt, window.max_dt) == (-1, 0)
        assert window.is_temporal
        assert window.depth == 2
        assert window.temporal_depth == 1
        assert window.size == 3 * 3 * 2

    def test_union_covers_time(self):
        spatial = StencilWindow(-1, 1, -1, 1)
        temporal = StencilWindow(0, 0, 0, 0, -2, 0)
        union = spatial.union(temporal)
        assert (union.min_dt, union.max_dt) == (-2, 0)
        assert (union.min_dx, union.max_dx) == (-1, 1)

    def test_spatial_projection(self):
        window = StencilWindow(-1, 1, 0, 2, -3, 0)
        assert window.spatial() == StencilWindow(-1, 1, 0, 2)

    def test_str_omits_time_axis_when_spatial(self):
        assert "x" in str(StencilWindow(-1, 1, -1, 1))
        assert str(StencilWindow(-1, 1, -1, 1)).count("x") == 1
        assert str(StencilWindow(-1, 1, -1, 1, -1, 0)).count("x") == 2

    def test_offsets_are_current_frame_only(self):
        window = StencilWindow(0, 1, 0, 0, -1, 0)
        assert all(len(offset) == 2 for offset in window.offsets())
        assert any(offset[0] == -1 for offset in window.offsets3d())


class TestWindowListCodec:
    def test_spatial_round_trip_is_four_elements(self):
        window = StencilWindow(-2, 2, -1, 1)
        values = window_to_list(window)
        assert values == [-2, 2, -1, 1]
        assert window_from_list(values) == window

    def test_temporal_round_trip_is_six_elements(self):
        window = StencilWindow(-2, 2, -1, 1, -3, 0)
        values = window_to_list(window)
        assert values == [-2, 2, -1, 1, -3, 0]
        assert window_from_list(values) == window

    def test_bad_lengths_rejected(self):
        for bad in ([], [1, 2], [1, 2, 3, 4, 5], [1, 2, 3, 4, 5, 6, 7]):
            with pytest.raises(GraphError):
                window_from_list(bad)


def _temporal_chain(*depths: int) -> PipelineDAG:
    """K0 -> K1 -> ... where stage i reads its producer ``depths[i]`` frames back."""
    dag = PipelineDAG("tchain")
    dag.add_stage(Stage(name="K0", is_input=True))
    previous = "K0"
    for index, depth in enumerate(depths, start=1):
        name = f"K{index}"
        dag.add_stage(Stage(name=name, is_output=(index == len(depths))))
        dag.add_edge(previous, name, StencilWindow(0, 0, 0, 0, -depth, 0))
        previous = name
    return dag.validated()


class TestTemporalDagQueries:
    def test_spatial_dag_reports_no_time(self):
        dag = PipelineDAG("s")
        dag.add_stage(Stage(name="A", is_input=True))
        dag.add_stage(Stage(name="B", is_output=True))
        dag.add_edge("A", "B", StencilWindow(-1, 1, -1, 1))
        dag = dag.validated()
        assert not dag.is_temporal()
        assert dag.temporal_depth() == 0
        assert dag.history_depth() == 0
        assert dag.frame_depths() == {}

    def test_temporal_depth_is_deepest_single_edge(self):
        dag = _temporal_chain(1, 2)
        assert dag.is_temporal()
        assert dag.temporal_depth() == 2
        assert dag.frame_depths() == {"K0": 1, "K1": 2}

    def test_history_depth_accumulates_along_paths(self):
        # K1 reads K0 one frame back, K2 reads K1 two frames back: the output
        # depends on input frames up to 3 back, though no edge is deeper than 2.
        dag = _temporal_chain(1, 2)
        assert dag.history_depth() == 3

    def test_frame_depths_takes_max_over_consumers(self):
        dag = PipelineDAG("fan")
        dag.add_stage(Stage(name="A", is_input=True))
        dag.add_stage(Stage(name="B"))
        dag.add_stage(Stage(name="C", is_output=True))
        dag.add_edge("A", "B", StencilWindow(0, 0, 0, 0, -1, 0))
        dag.add_edge("A", "C", StencilWindow(0, 0, 0, 0, -3, 0))
        dag.add_edge("B", "C", StencilWindow(0, 0, 0, 0))
        dag = dag.validated()
        assert dag.frame_depths() == {"A": 3}


class TestTemporalValidation:
    def test_future_frame_reference_rejected(self):
        dag = PipelineDAG("future")
        dag.add_stage(Stage(name="A", is_input=True))
        dag.add_stage(Stage(name="B", is_output=True))
        dag.add_edge("A", "B", StencilWindow(0, 0, 0, 0, 0, 1))
        with pytest.raises(GraphError, match="future"):
            dag.validated()

    def test_excessive_temporal_depth_rejected(self):
        dag = PipelineDAG("deep")
        dag.add_stage(Stage(name="A", is_input=True))
        dag.add_stage(Stage(name="B", is_output=True))
        dag.add_edge(
            "A", "B", StencilWindow(0, 0, 0, 0, -(MAX_TEMPORAL_DEPTH + 1), 0)
        )
        with pytest.raises(GraphError):
            dag.validated()

    def test_max_temporal_depth_is_accepted(self):
        dag = _temporal_chain(MAX_TEMPORAL_DEPTH)
        assert dag.temporal_depth() == MAX_TEMPORAL_DEPTH


class TestCanonicalFormStability:
    def test_spatial_canonical_form_has_four_element_windows(self):
        dag = PipelineDAG("s")
        dag.add_stage(Stage(name="A", is_input=True))
        dag.add_stage(Stage(name="B", is_output=True))
        dag.add_edge("A", "B", StencilWindow(-1, 1, -1, 1))
        canonical = dag.validated().canonical_form()
        windows = [edge["window"] for edge in canonical["edges"]]
        assert all(len(window) == 4 for window in windows)

    def test_temporal_canonical_form_has_six_element_windows(self):
        canonical = _temporal_chain(1).canonical_form()
        windows = [edge["window"] for edge in canonical["edges"]]
        assert all(len(window) == 6 for window in windows)
