"""Structured JSON event log for engine-internal activity.

Stability: stable.

The HTTP front already emits one JSON object per answered request
(``--access-log json``); this module gives engine internals — autoscaler
scale decisions, admission-queue sheds, disk-cache GC passes — the same
treatment, so a log pipeline can join a request line to the engine activity
it caused.  Every record carries the access log's identity fields::

    {"ts": 1723111845.12, "event": "queue.shed",
     "identity": "alice", "fingerprint": "cc087d31…", "retry_after": 0.4}

``ts`` (epoch seconds), ``event`` (dotted ``subsystem.action`` name) and
``identity`` are always present; ``fingerprint`` appears whenever the event
concerns one design point.  Remaining keys are event-specific and always
JSON scalars.

Emission is process-wide through one default :class:`EventLog`: call
:func:`emit_event` from anywhere, enable the stderr stream with
``--event-log json``, ``configure_event_log(enabled=True)`` or the
``REPRO_EVENT_LOG=json`` environment variable.  Even when the stream is off,
the log keeps a bounded in-memory ring (:meth:`EventLog.recent`) so tests
and debuggers can inspect what the engine just did without parsing stderr.

Events emitted today:

========================  =====================================================
``autoscaler.grow``       worker spawned (``executor``, ``workers``)
``autoscaler.shrink``     idle worker reaped (``executor``, ``workers``)
``queue.shed``            admission queue full, request rejected
                          (``identity``, ``fingerprint``, ``retry_after``)
``cache.gc``              disk-cache GC pass (``evicted``, ``remaining_bytes``,
                          ``directory``)
========================  =====================================================
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from typing import IO

#: Environment switch: ``REPRO_EVENT_LOG=json`` turns the stderr stream on.
EVENT_LOG_ENV_VAR = "REPRO_EVENT_LOG"

_ENABLED_VALUES = {"1", "json", "true", "yes", "on"}


class EventLog:
    """Thread-safe JSON-lines event sink with a bounded in-memory ring."""

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        enabled: bool | None = None,
        ring_size: int = 256,
        clock=time.time,
    ) -> None:
        if enabled is None:
            enabled = os.environ.get(EVENT_LOG_ENV_VAR, "").strip().lower() in _ENABLED_VALUES
        self.enabled = enabled
        self._stream = stream
        self._ring: deque[dict] = deque(maxlen=max(1, ring_size))
        self._lock = threading.Lock()
        self._clock = clock
        self.emitted_total = 0

    def emit(self, event: str, *, identity: str = "", fingerprint: str = "", **fields) -> dict:
        """Record one event; write it as a JSON line when the stream is on.

        The ring records regardless of ``enabled`` — emission cost without a
        stream is one dict append under a lock.
        """
        record: dict = {"ts": round(self._clock(), 3), "event": event, "identity": identity}
        if fingerprint:
            record["fingerprint"] = fingerprint
        record.update(fields)
        with self._lock:
            self.emitted_total += 1
            self._ring.append(record)
            if self.enabled:
                stream = self._stream if self._stream is not None else sys.stderr
                stream.write(json.dumps(record, sort_keys=False) + "\n")
        return record

    def recent(self, event: str | None = None) -> list[dict]:
        """The ring's contents, oldest first, optionally filtered by event name."""
        with self._lock:
            records = list(self._ring)
        if event is None:
            return records
        return [record for record in records if record["event"] == event]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


_DEFAULT_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-wide default log that :func:`emit_event` feeds."""
    return _DEFAULT_LOG


def configure_event_log(
    *, enabled: bool | None = None, stream: IO[str] | None = None
) -> EventLog:
    """Reconfigure the default log in place (None leaves a setting unchanged)."""
    if enabled is not None:
        _DEFAULT_LOG.enabled = enabled
    if stream is not None:
        _DEFAULT_LOG._stream = stream
    return _DEFAULT_LOG


def emit_event(event: str, *, identity: str = "", fingerprint: str = "", **fields) -> dict:
    """Emit one engine-internal event through the default log."""
    return _DEFAULT_LOG.emit(event, identity=identity, fingerprint=fingerprint, **fields)
