"""Unit tests for the SRAM model and the area/power/FPGA estimators."""

import pytest

from repro.baselines import generate_baseline
from repro.core.compiler import compile_pipeline
from repro.estimate.area import area_report
from repro.estimate.fpga import fpga_report, multi_algorithm_fit
from repro.estimate.power import buffer_access_rates, power_report
from repro.estimate.report import accelerator_report
from repro.estimate.sram_model import DEFAULT_TECH, SramTechModel
from repro.errors import MemoryConfigError
from repro.memory.allocator import allocate_fifo_buffer, allocate_line_buffer
from repro.memory.spec import FpgaSpec, asic_dual_port, asic_fifo, asic_single_port, spartan7_bram, spartan7_fpga

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


class TestSramTechModel:
    def test_access_energy_grows_with_size(self):
        tech = DEFAULT_TECH
        small = tech.macro_access_energy_pj(8 * 1024, 2)
        large = tech.macro_access_energy_pj(64 * 1024, 2)
        assert large > small

    def test_access_energy_port_penalty_is_35_percent(self):
        tech = DEFAULT_TECH
        single = tech.macro_access_energy_pj(32 * 1024, 1)
        dual = tech.macro_access_energy_pj(32 * 1024, 2)
        assert dual / single == pytest.approx(1.35)

    def test_area_grows_steeply_with_ports(self):
        tech = DEFAULT_TECH
        assert tech.macro_area_mm2(32 * 1024, 2) > 1.5 * tech.macro_area_mm2(32 * 1024, 1)

    def test_leakage_scales_with_capacity(self):
        tech = DEFAULT_TECH
        assert tech.macro_leakage_mw(64 * 1024, 1) > tech.macro_leakage_mw(8 * 1024, 1)

    def test_spec_level_helpers_match_macro_helpers(self):
        tech = DEFAULT_TECH
        spec = asic_dual_port()
        assert tech.access_energy_pj(spec) == tech.macro_access_energy_pj(spec.block_bits, spec.ports)
        assert tech.block_area_mm2(spec) == tech.macro_area_mm2(spec.block_bits, spec.ports)

    def test_dynamic_power_conversion(self):
        tech = SramTechModel(clock_mhz=100.0)
        # 1 access/cycle at 1 pJ and 100 MHz = 0.1 mW.
        assert tech.dynamic_power_mw(1.0, 1.0) == pytest.approx(0.1)

    def test_pe_and_dff_costs_positive(self):
        tech = DEFAULT_TECH
        assert tech.pe_power_mw(10) > 0
        assert tech.pe_area_mm2(10) > 0
        assert tech.dff_power_mw(8, 16) > 0
        assert tech.dff_area_mm2(8, 16) > 0


class TestAccessRates:
    def test_classic_buffer_rate(self):
        config = allocate_line_buffer("p", W, 3, asic_dual_port(), reader_heights={"c": 3})
        assert buffer_access_rates(config) == 4.0  # 1 write + 3 reads

    def test_multi_consumer_rate(self):
        config = allocate_line_buffer(
            "p", W, 5, asic_dual_port(), reader_heights={"a": 3, "b": 2}
        )
        assert buffer_access_rates(config) == 6.0

    def test_fifo_rate_is_two_per_block(self):
        config = allocate_fifo_buffer("p", W, 2, asic_fifo(), num_consumers=1)
        assert buffer_access_rates(config) == 2.0 * config.num_blocks

    def test_register_buffer_has_no_sram_accesses(self):
        from repro.memory.allocator import allocate_register_buffer

        config = allocate_register_buffer("p", W, 3, asic_dual_port(), reader_heights={"c": 1})
        assert buffer_access_rates(config) == 0.0


class TestReports:
    def test_power_report_structure(self):
        schedule = compile_pipeline(build_paper_example(), image_width=W, image_height=H).schedule
        report = power_report(schedule)
        assert report.memory_mw > 0
        assert report.pe_mw > 0
        assert report.total_mw == pytest.approx(report.memory_mw + report.pe_mw)
        assert set(report.buffers) <= set(schedule.line_buffers)

    def test_area_report_structure(self):
        schedule = compile_pipeline(build_paper_example(), image_width=W, image_height=H).schedule
        report = area_report(schedule)
        assert report.memory_mm2 > 0
        assert 0 < report.memory_fraction < 1
        assert report.sram_blocks == schedule.total_blocks

    def test_memory_dominates_area(self):
        # The paper reports SRAM is ~80-93% of accelerator area.
        schedule = compile_pipeline(build_chain(5), image_width=480, image_height=320).schedule
        report = area_report(schedule)
        assert report.memory_fraction > 0.6

    def test_custom_sizing_reduces_area_and_raises_access_energy(self):
        schedule = compile_pipeline(
            build_chain(3, stencil=5), image_width=W, image_height=H, coalescing=True
        ).schedule
        fixed = accelerator_report(schedule, sizing="fixed")
        custom = accelerator_report(schedule, sizing="custom")
        assert custom.memory_area_mm2 < fixed.memory_area_mm2

    def test_accelerator_report_row(self):
        schedule = compile_pipeline(build_chain(3), image_width=W, image_height=H).schedule
        row = accelerator_report(schedule).row()
        assert row["generator"] == "imagen"
        assert row["sram_blocks"] == schedule.total_blocks

    def test_single_port_cheaper_per_access_but_not_overall(self):
        dag = build_chain(4)
        ours = accelerator_report(compile_pipeline(dag, image_width=W, image_height=H).schedule)
        fixynn = accelerator_report(generate_baseline("fixynn", dag, W, H))
        assert fixynn.sram_blocks > ours.sram_blocks
        assert fixynn.memory_power_mw > ours.memory_power_mw


class TestFpga:
    def test_bram_usage_counts_blocks(self):
        schedule = compile_pipeline(
            build_chain(3), image_width=W, image_height=H, memory_spec=spartan7_bram()
        ).schedule
        report = fpga_report(schedule)
        assert report.brams_used == schedule.total_blocks
        assert 0 < report.bram_utilisation < 1
        assert report.fits

    def test_power_includes_static_floor(self):
        schedule = compile_pipeline(
            build_chain(3), image_width=W, image_height=H, memory_spec=spartan7_bram()
        ).schedule
        report = fpga_report(schedule)
        assert report.total_mw > report.fpga.static_power_mw

    def test_require_fit_raises_when_over_budget(self):
        schedule = compile_pipeline(
            build_chain(6, stencil=5), image_width=W, image_height=H, memory_spec=spartan7_bram()
        ).schedule
        tiny_fpga = FpgaSpec(bram=spartan7_bram(), total_blocks=2)
        with pytest.raises(MemoryConfigError):
            fpga_report(schedule, tiny_fpga, require_fit=True)

    def test_multi_algorithm_fit(self):
        schedules = [
            compile_pipeline(build_chain(3), image_width=W, image_height=H, memory_spec=spartan7_bram()).schedule
            for _ in range(2)
        ]
        reports = [fpga_report(s) for s in schedules]
        total, fits = multi_algorithm_fit(reports, spartan7_fpga())
        assert total == sum(r.brams_used for r in reports)
        assert fits
