"""Compatibility shim: fingerprinting moved to :mod:`repro.api.fingerprint`.

Stability: internal (import :mod:`repro.api.fingerprint` instead; this module
exists only so pre-``CompileTarget`` import paths keep working).

The content-addressed fingerprint became part of the public request API when
:class:`repro.api.CompileTarget` was introduced (``compile_fingerprint`` is
generator-aware and accepts a target directly).  This module re-exports the
implementation so existing ``repro.service.fingerprint`` imports keep working.
"""

from repro.api.fingerprint import (
    FINGERPRINT_VERSION,
    _digest,
    compile_fingerprint,
    dag_fingerprint,
    normalize_memory_spec,
    normalize_options,
)

__all__ = [
    "FINGERPRINT_VERSION",
    "compile_fingerprint",
    "dag_fingerprint",
    "normalize_memory_spec",
    "normalize_options",
]
