"""Docs stay honest: links resolve, runnable snippets run, pydoc renders.

Wraps ``tools/check_docs.py`` (the CI docs job) so the tier-1 suite catches a
broken link or a stale snippet the moment the code drifts from the prose,
and pins that every ``repro.service`` module documents itself: a module
docstring, an explicit ``Stability:`` marker, and error-free ``pydoc``
rendering.
"""

from __future__ import annotations

import importlib
import pkgutil
import pydoc
import sys
from pathlib import Path

import pytest

import repro.service

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402 - path set up above


def _service_modules() -> list[str]:
    names = ["repro.service"]
    for info in pkgutil.iter_modules(repro.service.__path__):
        names.append(f"repro.service.{info.name}")
    return names


def test_docs_tree_exists_with_required_pages():
    for page in (
        "README.md",
        "architecture.md",
        "observability.md",
        "serving.md",
        "tuning.md",
        "verification.md",
        "wire-protocol.md",
    ):
        assert (REPO_ROOT / "docs" / page).exists(), f"docs/{page} is missing"


def test_internal_links_and_snippets_are_healthy():
    problems = check_docs.run_checks()
    assert not problems, "\n".join(problems)


def test_docs_define_runnable_snippets():
    """At least one snippet is actually executed — the marker isn't dead."""
    runnable = [
        (path.name, lineno)
        for path in check_docs.doc_files()
        for info, _, lineno in check_docs.code_blocks(path)
        if info.startswith("python") and "runnable" in info.split()
    ]
    assert runnable, "no `python runnable` snippets found in docs/"


@pytest.mark.parametrize("name", _service_modules())
def test_service_modules_carry_docstring_and_stability_marker(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} has no module docstring"
    assert "Stability:" in module.__doc__, f"{name} docstring lacks a Stability: marker"


@pytest.mark.parametrize("name", _service_modules())
def test_pydoc_renders_service_modules(name):
    """`python -m pydoc repro.service.X` must not raise or come back empty."""
    module = importlib.import_module(name)
    rendered = pydoc.plain(pydoc.render_doc(module))
    assert name.rsplit(".", 1)[-1] in rendered
    assert "Stability:" in rendered
