"""Warm-starting the scheduling ILP from a neighboring solved design.

The compile cache frequently holds the solution of a *near* neighbor of the
target being scheduled: the same DAG at another resolution, or with another
per-stage coalescing selection (the Fig. 10 sweep's ``2^k`` variants).  Every
mandatory constraint of the scheduling ILP is a difference constraint
``S_b - S_a >= rhs(W)`` whose right-hand side is affine in the image width
``W`` — dependencies need ``(h-1)W + 1``, coalescing safety ``hW``, pair
separations ``SH*W`` (plus ``(F-1)W`` on coalesced buffers).  That structure
makes the neighbor's solution transferable:

1. **Binding edges** — find every difference edge (mandatory constraint or
   disjunction candidate) the neighbor's schedule satisfies with *equality*.
   These are the edges that shaped its optimum.
2. **Propagation** — re-impose the same edges as equalities at the target's
   width/factors and propagate start cycles outward from the anchored input
   stages.  Any vanished edge, inconsistency or uncovered stage aborts the
   transfer (the caller falls back to a cold solve).
3. **Certificate** — the transferred candidate is only trusted when it is
   (a) legal for the *target's* full constraint system and (b) provably
   optimal: its objective equals the longest-walk lower bound over the
   target's difference graph, minimized over the disjunct choices
   (:func:`disjunctive_lower_bound`).  Only then may the scheduler skip the
   ILP entirely; otherwise the candidate merely seeds the branch-and-bound
   incumbent (:class:`repro.ilp.model.WarmStart`).

The longest-walk bound is valid for *any* choice of disjuncts: it uses only
constraints every feasible schedule must satisfy, and the objective
``sum_p max_c (S_c - S_p)`` is bounded below by summing, per producer, the
longest mandatory-edge walk to its furthest consumer.  Minimizing the bound
over the (few) true-disjunction choices keeps it valid while closing the
gap those disjunctions would otherwise leave.  Equality then certifies
global optimality of the candidate without touching an LP.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.constraints import (
    Disjunction,
    coalescing_safety_constraints,
    contention_disjunctions,
    data_dependency_constraints,
    schedule_horizon,
)
from repro.core.pruning import prune_disjunctions
from repro.ir.dag import PipelineDAG

__all__ = [
    "WarmHint",
    "hint_from_schedule",
    "difference_system",
    "schedule_is_legal",
    "schedule_objective",
    "dependency_lower_bound",
    "disjunctive_lower_bound",
    "try_warm_transfer",
]


@dataclass(frozen=True)
class WarmHint:
    """A solved neighbor design offered as a seed for a new solve.

    Carries exactly what the transfer needs to reconstruct the neighbor's
    constraint system: its start cycles, image width, per-stage coalescing
    factors and port count.  ``objective``/``fingerprint`` are provenance for
    stats and logs.
    """

    start_cycles: dict[str, int] = field(default_factory=dict)
    image_width: int = 0
    coalesce_factors: dict[str, int] = field(default_factory=dict)
    ports: int = 1
    objective: float | None = None
    fingerprint: str = ""


def hint_from_schedule(schedule) -> WarmHint:
    """Build a :class:`WarmHint` from a solved :class:`PipelineSchedule`."""
    stats = schedule.solver_stats or {}
    objective = stats.get("objective")
    return WarmHint(
        start_cycles=dict(schedule.start_cycles),
        image_width=schedule.image_width,
        coalesce_factors=dict(schedule.coalesce_factors),
        ports=int(stats.get("ports", schedule.memory_spec.ports)),
        objective=float(objective) if objective is not None else None,
    )


def difference_system(dependencies, disjunctions):
    """Collapse the scheduling constraints into (mandatory edges, multis).

    ``mandatory`` maps ``(producer, consumer)`` to the tightest separation
    every feasible schedule must honour — dependency/safety constraints plus
    the sole candidate of each singleton disjunction.  ``multis`` are the
    remaining true disjunctions (one candidate of each must hold).
    """
    mandatory: dict[tuple[str, str], int] = {}

    def tighten(a: str, b: str, rhs: int) -> None:
        key = (a, b)
        if rhs > mandatory.get(key, -(1 << 62)):
            mandatory[key] = rhs

    for dep in dependencies:
        tighten(dep.producer, dep.consumer, dep.min_delay)
    multis: list[Disjunction] = []
    for disjunction in disjunctions:
        if disjunction.is_singleton:
            candidate = disjunction.candidates[0]
            tighten(candidate.leading, candidate.trailing, candidate.min_gap)
        else:
            multis.append(disjunction)
    return mandatory, multis


def _pair_weights(mandatory, multis):
    """Max-merged separation per ordered stage pair, candidates included."""
    weights = dict(mandatory)
    for disjunction in multis:
        for candidate in disjunction.candidates:
            key = (candidate.leading, candidate.trailing)
            if candidate.min_gap > weights.get(key, -(1 << 62)):
                weights[key] = candidate.min_gap
    return weights


def schedule_is_legal(cycles, mandatory, multis) -> bool:
    """Does ``cycles`` satisfy every mandatory edge and cover every disjunction?"""
    for (a, b), rhs in mandatory.items():
        if cycles[b] - cycles[a] < rhs:
            return False
    for disjunction in multis:
        if not any(
            cycles[c.trailing] - cycles[c.leading] >= c.min_gap
            for c in disjunction.candidates
        ):
            return False
    return True


def schedule_objective(dag: PipelineDAG, cycles) -> int:
    """The ILP objective (Eq. 1a): per-producer maximum consumer delay."""
    total = 0
    for producer in dag.stage_names():
        consumers = dag.consumers_of(producer)
        if consumers:
            total += max(cycles[c] - cycles[producer] for c in consumers)
    return total


def dependency_lower_bound(dag: PipelineDAG, mandatory) -> int:
    """Longest-walk lower bound on the objective over the mandatory edges.

    For each producer, every consumer's start is at least the longest
    mandatory-edge walk from the producer (all edge weights are positive, so
    a feasible system has no directed cycles and the walk values are finite).
    Summing each producer's furthest consumer bounds the objective from
    below, for any disjunct selection.
    """
    stages = list(dag.stage_names())
    outgoing: dict[str, list[tuple[str, int]]] = {stage: [] for stage in stages}
    for (a, b), rhs in mandatory.items():
        outgoing[a].append((b, rhs))

    total = 0
    for producer in stages:
        consumers = dag.consumers_of(producer)
        if not consumers:
            continue
        # Bellman-Ford longest walk from this producer; graphs are tiny
        # (tens of stages), so the quadratic sweep is immaterial.
        dist = {producer: 0}
        for _ in range(len(stages)):
            changed = False
            for a, edges in outgoing.items():
                if a not in dist:
                    continue
                for b, rhs in edges:
                    candidate = dist[a] + rhs
                    if candidate > dist.get(b, -(1 << 62)):
                        dist[b] = candidate
                        changed = True
            if not changed:
                break
        total += max(dist.get(consumer, 0) for consumer in consumers)
    return total


def disjunctive_lower_bound(dag: PipelineDAG, mandatory, multis, max_combos: int = 256) -> int:
    """Walk lower bound strengthened by enumerating the disjunct choices.

    The mandatory-only bound of :func:`dependency_lower_bound` ignores the
    true disjunctions entirely, and on the multi-consumer pipelines (canny-m,
    harris-m) that leaves an integrality-style gap of exactly ``W - 1``: the
    disjunction *does* force one of its separations, the bound just does not
    know which.  Every feasible schedule satisfies at least one candidate per
    disjunction, so its objective is bounded by the walk bound over
    ``mandatory + its choices``, and hence by the *minimum* of that bound over
    all choice combinations.  The pruned systems have at most a handful of
    true disjunctions with two or three candidates each, so the product is
    tiny; past ``max_combos`` the function degrades to the mandatory-only
    bound (still valid, merely weaker).
    """
    combos = 1
    for disjunction in multis:
        combos *= len(disjunction.candidates)
    if not multis or combos > max_combos:
        return dependency_lower_bound(dag, mandatory)

    from itertools import product

    best: int | None = None
    for choice in product(*[disjunction.candidates for disjunction in multis]):
        edges = dict(mandatory)
        for candidate in choice:
            key = (candidate.leading, candidate.trailing)
            if candidate.min_gap > edges.get(key, -(1 << 62)):
                edges[key] = candidate.min_gap
        bound = dependency_lower_bound(dag, edges)
        if best is None or bound < best:
            best = bound
    return best if best is not None else dependency_lower_bound(dag, mandatory)


def _neighbor_system(dag: PipelineDAG, hint: WarmHint, pruning: bool, order):
    """Rebuild the mandatory/disjunctive system the neighbor was solved under."""
    factors = {stage: hint.coalesce_factors.get(stage, 1) for stage in dag.stage_names()}
    dependencies = data_dependency_constraints(dag, hint.image_width)
    dependencies.extend(coalescing_safety_constraints(dag, hint.image_width, factors))
    disjunctions = contention_disjunctions(
        dag, hint.image_width, hint.ports, coalesce_factors=factors, order=order
    )
    if pruning:
        disjunctions = prune_disjunctions(disjunctions, dag, order)
    return difference_system(dependencies, disjunctions)


def try_warm_transfer(
    dag: PipelineDAG,
    hint: WarmHint,
    *,
    image_width: int,
    mandatory,
    multis,
    pruning: bool,
    order,
) -> tuple[dict[str, int] | None, str]:
    """Transfer the neighbor's schedule to the target constraint system.

    Returns ``(cycles, detail)``: the transferred start cycles, or ``None``
    with a reason — ``"stale-hint"`` (the hint does not cover this DAG),
    ``"vanished-edge"`` (a binding edge has no counterpart at the target
    width), ``"inconsistent"`` / ``"underdetermined"`` (the binding equalities
    do not pin a unique schedule), ``"out-of-range"`` (propagated cycles
    escape the horizon).  Legality against the *target* system is checked
    here too (``"illegal"``), so a non-``None`` result is always feasible.
    """
    neighbor = hint.start_cycles
    stages = list(dag.stage_names())
    if hint.image_width < 2 or any(stage not in neighbor for stage in stages):
        return None, "stale-hint"

    old_mandatory, old_multis = _neighbor_system(dag, hint, pruning, order)

    binding: list[tuple[str, str]] = []
    for (a, b), rhs in old_mandatory.items():
        if neighbor[b] - neighbor[a] == rhs:
            binding.append((a, b))
    for disjunction in old_multis:
        for candidate in disjunction.candidates:
            if neighbor[candidate.trailing] - neighbor[candidate.leading] == candidate.min_gap:
                binding.append((candidate.leading, candidate.trailing))

    weights = _pair_weights(mandatory, multis)
    adjacency: dict[str, list[tuple[str, int]]] = {stage: [] for stage in stages}
    for a, b in binding:
        rhs = weights.get((a, b))
        if rhs is None:
            return None, "vanished-edge"
        adjacency[a].append((b, rhs))
        adjacency[b].append((a, -rhs))

    cycles: dict[str, int] = {stage.name: 0 for stage in dag.input_stages()}
    queue = deque(cycles)
    while queue:
        here = queue.popleft()
        for there, delta in adjacency[here]:
            value = cycles[here] + delta
            if there in cycles:
                if cycles[there] != value:
                    return None, "inconsistent"
            else:
                cycles[there] = value
                queue.append(there)
    if len(cycles) != len(stages):
        return None, "underdetermined"

    horizon = schedule_horizon(dag, image_width)
    if any(value < 0 or value > horizon for value in cycles.values()):
        return None, "out-of-range"
    if not schedule_is_legal(cycles, mandatory, multis):
        return None, "illegal"
    return cycles, "transferred"
