"""Unit tests for the textual DSL parser."""

import pytest

from repro.dsl.parser import parse_pipeline
from repro.errors import DSLSemanticError, DSLSyntaxError

PAPER_PROGRAM = """
input K0;
// K1 reads a 3x3 window from K0
K1 = im(x,y) K0(x-1,y-1) + K0(x,y-1) + K0(x+1,y-1) +
             K0(x-1,y)   + K0(x,y)   + K0(x+1,y)   +
             K0(x-1,y+1) + K0(x,y+1) + K0(x+1,y+1) end
// K2 reads a 2x2 window from K0 and a 3x3 window from K1
output K2 = im(x,y) K0(x,y) + K0(x+1,y) + K0(x,y+1) + K0(x+1,y+1) +
                    K1(x-1,y-1) + K1(x+1,y+1) end
"""


class TestParsePaperExample:
    def test_stage_roles(self):
        dag = parse_pipeline(PAPER_PROGRAM, name="paper")
        assert dag.stage("K0").is_input
        assert dag.stage("K2").is_output
        assert not dag.stage("K1").is_output

    def test_stencil_windows(self):
        dag = parse_pipeline(PAPER_PROGRAM)
        assert dag.edge("K0", "K1").window.height == 3
        assert dag.edge("K0", "K1").window.width == 3
        assert dag.edge("K0", "K2").window.height == 2
        assert dag.edge("K1", "K2").window.height == 3

    def test_multi_consumer_detected(self):
        dag = parse_pipeline(PAPER_PROGRAM)
        assert dag.multi_consumer_stages() == ["K0"]

    def test_expressions_attached(self):
        dag = parse_pipeline(PAPER_PROGRAM)
        assert dag.stage("K1").expression is not None
        assert dag.stage("K0").expression is None


class TestParserFeatures:
    def test_implicit_output_is_last_stage(self):
        dag = parse_pipeline("input A; B = im(x,y) A(x,y) end C = im(x,y) B(x,y)+1 end")
        assert [s.name for s in dag.output_stages()] == ["C"]

    def test_intrinsics_parse(self):
        source = "input A; output B = im(x,y) max(abs(A(x-1,y)), A(x+1,y)) end"
        dag = parse_pipeline(source)
        assert dag.edge("A", "B").window.width == 3

    def test_numeric_offsets(self):
        dag = parse_pipeline("input A; output B = im(x,y) A(x+2,y-3) end")
        window = dag.edge("A", "B").window
        assert window.max_dx == 2 and window.min_dy == -3

    def test_division_and_constants(self):
        dag = parse_pipeline("input A; output B = im(x,y) (A(x,y) + A(x+1,y)) / 2 end")
        assert dag.edge("A", "B").window.width == 2

    def test_comparison_expression(self):
        dag = parse_pipeline("input A; output B = im(x,y) (A(x,y) > 10) * 255 end")
        assert "B" in dag


class TestParserErrors:
    def test_undefined_stage_reference(self):
        with pytest.raises(DSLSemanticError):
            parse_pipeline("input A; output B = im(x,y) C(x,y) end")

    def test_forward_reference_rejected(self):
        source = "input A; B = im(x,y) C(x,y) end output C = im(x,y) A(x,y) end"
        with pytest.raises(DSLSemanticError):
            parse_pipeline(source)

    def test_duplicate_definition(self):
        with pytest.raises(DSLSemanticError):
            parse_pipeline("input A; input A;")

    def test_stage_without_reads(self):
        with pytest.raises(DSLSemanticError):
            parse_pipeline("input A; output B = im(x,y) 42 end")

    def test_missing_end_keyword(self):
        with pytest.raises(DSLSyntaxError):
            parse_pipeline("input A; output B = im(x,y) A(x,y)")

    def test_wrong_loop_variable(self):
        with pytest.raises(DSLSyntaxError):
            parse_pipeline("input A; output B = im(x,y) A(u,v) end")

    def test_empty_program(self):
        with pytest.raises(DSLSemanticError):
            parse_pipeline("")

    def test_only_inputs(self):
        with pytest.raises(DSLSemanticError):
            parse_pipeline("input A;")

    def test_malformed_offset(self):
        with pytest.raises(DSLSyntaxError):
            parse_pipeline("input A; output B = im(x,y) A(x*, y) end")
