"""On-chip memory resource specifications.

The framework's inputs are an algorithm description *and* a description of the
memory structures available (Sec. 4).  A :class:`MemorySpec` captures one kind
of block: its capacity, its number of ports, and the pixel width stored in it.

Two concrete families are provided:

* ASIC SRAM macros (OpenRAM-style, arbitrary count, parameterised size/ports);
* the Xilinx Spartan-7 BRAM used in the paper's FPGA evaluation
  (36 Kbit blocks, configurable as single or dual port, 120 blocks total).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import MemoryConfigError

#: Default pixel width in bits.  The evaluation pipelines carry intermediate
#: values wider than 8 bits (gradients, products), so 16 bits is the default.
DEFAULT_PIXEL_BITS = 16


@dataclass(frozen=True)
class MemorySpec:
    """Description of one kind of on-chip memory block.

    Attributes
    ----------
    name:
        Human-readable identifier used in reports.
    block_bits:
        Capacity of one physical block, in bits.
    ports:
        Number of independent access ports per block (1 or 2 in practice).
    pixel_bits:
        Width of one stored pixel, in bits.
    style:
        ``"sram"`` for addressable line-buffer blocks (Darkroom/FixyNN/ImaGen
        style) or ``"fifo"`` for FIFO-only usage (SODA style).
    allow_coalescing:
        Whether the optimizer may place multiple image lines in one block
        (Sec. 6).  FIFO and single-port styles cannot coalesce.
    """

    name: str
    block_bits: int
    ports: int
    pixel_bits: int = DEFAULT_PIXEL_BITS
    style: str = "sram"
    allow_coalescing: bool = True

    def __post_init__(self) -> None:
        if self.block_bits <= 0:
            raise MemoryConfigError(f"block_bits must be positive, got {self.block_bits}")
        if self.ports < 1:
            raise MemoryConfigError(f"A memory block needs at least one port, got {self.ports}")
        if self.pixel_bits <= 0:
            raise MemoryConfigError(f"pixel_bits must be positive, got {self.pixel_bits}")
        if self.style not in ("sram", "fifo"):
            raise MemoryConfigError(f"Unknown memory style {self.style!r}")

    # ------------------------------------------------------------- geometry
    @property
    def block_bytes(self) -> float:
        return self.block_bits / 8.0

    @property
    def block_kbytes(self) -> float:
        return self.block_bits / 8192.0

    def line_bits(self, image_width: int) -> int:
        """Bits needed to store one image line."""
        return image_width * self.pixel_bits

    def lines_per_block(self, image_width: int) -> int:
        """How many whole image lines fit in one block (may be zero)."""
        return self.block_bits // self.line_bits(image_width)

    def blocks_per_line(self, image_width: int) -> int:
        """How many blocks are needed to store one image line (>= 1)."""
        line_bits = self.line_bits(image_width)
        return max(1, -(-line_bits // self.block_bits))

    def coalescing_factor(self, image_width: int) -> int:
        """Maximum lines that may legally share one block (Sec. 6).

        Bounded by the block capacity and by the port count, and disabled for
        FIFO-style or single-port memories (the paper notes coalescing is
        fundamentally incompatible with both).
        """
        if not self.allow_coalescing or self.style == "fifo" or self.ports < 2:
            return 1
        return max(1, min(self.ports, self.lines_per_block(image_width)))

    def with_ports(self, ports: int) -> "MemorySpec":
        return replace(self, ports=ports, name=f"{self.name}-{ports}p")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.block_bits}b, {self.ports}p, {self.style})"


@dataclass(frozen=True)
class FpgaSpec:
    """An FPGA memory budget: a BRAM block spec plus the number of blocks."""

    bram: MemorySpec
    total_blocks: int
    static_power_mw: float = 35.0

    def __post_init__(self) -> None:
        if self.total_blocks <= 0:
            raise MemoryConfigError("FPGA must provide at least one BRAM block")


# ---------------------------------------------------------------------------
# Presets used throughout the evaluation
# ---------------------------------------------------------------------------
def asic_dual_port(block_kbits: int = 32, pixel_bits: int = DEFAULT_PIXEL_BITS) -> MemorySpec:
    """ASIC dual-port SRAM macros (the paper's default line-buffer memory).

    The default 32 Kbit block holds two or more 480-pixel (320p) lines but
    fewer than two 1920-pixel (1080p) lines at 16-bit pixels, reproducing the
    paper's "coalescing applies to 320p but not to 1080p" setup.
    """
    return MemorySpec(
        name="asic-dp",
        block_bits=block_kbits * 1024,
        ports=2,
        pixel_bits=pixel_bits,
        style="sram",
        allow_coalescing=True,
    )


def asic_single_port(block_kbits: int = 32, pixel_bits: int = DEFAULT_PIXEL_BITS) -> MemorySpec:
    """ASIC single-port SRAM macros (the FixyNN assumption)."""
    return MemorySpec(
        name="asic-sp",
        block_bits=block_kbits * 1024,
        ports=1,
        pixel_bits=pixel_bits,
        style="sram",
        allow_coalescing=False,
    )


def asic_fifo(block_kbits: int = 32, pixel_bits: int = DEFAULT_PIXEL_BITS) -> MemorySpec:
    """Dual-port SRAM used strictly as FIFOs (the SODA assumption)."""
    return MemorySpec(
        name="asic-fifo",
        block_bits=block_kbits * 1024,
        ports=2,
        pixel_bits=pixel_bits,
        style="fifo",
        allow_coalescing=False,
    )


def spartan7_bram(ports: int = 2, pixel_bits: int = DEFAULT_PIXEL_BITS) -> MemorySpec:
    """One Xilinx Spartan-7 BRAM block (36 Kbit, single- or dual-port)."""
    return MemorySpec(
        name="spartan7-bram",
        block_bits=36 * 1024,
        ports=ports,
        pixel_bits=pixel_bits,
        style="sram",
        allow_coalescing=ports >= 2,
    )


def spartan7_fpga(ports: int = 2, pixel_bits: int = DEFAULT_PIXEL_BITS) -> FpgaSpec:
    """The xa7s100 board used in the paper: 120 BRAM blocks of 36 Kbit."""
    return FpgaSpec(bram=spartan7_bram(ports, pixel_bits), total_blocks=120)
