"""Compilation service layer: content-addressed caching and batch execution.

This package turns :func:`repro.core.compile_pipeline` into a serving
subsystem (the ROADMAP's "heavy traffic" direction).  Its unit of work is the
unified :class:`repro.api.CompileTarget` request object:

* :mod:`repro.service.cache` — two-tier (LRU + sharded disk) schedule cache;
* :mod:`repro.service.jobs` — typed result/batch records (and the legacy
  :class:`CompileRequest`, kept as a deprecated shim);
* :mod:`repro.service.metrics` — per-request latency and hit-rate metrics;
* :mod:`repro.service.engine` — the :class:`CompileEngine` front door, with
  synchronous (``submit``/``submit_batch``) and asyncio
  (``submit_async``/``submit_batch_async``) serving fronts.

Fingerprinting lives in :mod:`repro.api.fingerprint`;
``repro.service.fingerprint`` re-exports it for compatibility.

Quickstart::

    from repro import CompileEngine, CompileTarget
    from repro.algorithms import build_algorithm

    target = CompileTarget(build_algorithm("unsharp-m"), image_width=480, image_height=320)
    engine = CompileEngine(workers=4, cache_dir=".imagen-cache")
    acc = engine.compile(target)
    acc = engine.compile(target)
    assert engine.cache.stats.hits >= 1  # second call never touched a solver
"""

from repro.api.fingerprint import (
    FINGERPRINT_VERSION,
    compile_fingerprint,
    dag_fingerprint,
)
from repro.api.target import CompileTarget
from repro.service.cache import (
    CacheStats,
    CompileCache,
    DiskCacheStore,
    deserialize_schedule,
    serialize_schedule,
)
from repro.service.engine import WORKERS_ENV_VAR, CompileEngine, default_worker_count
from repro.service.jobs import (
    BatchResult,
    CompileRequest,
    CompileResult,
    CompileStatus,
)
from repro.service.metrics import EngineMetrics, RequestTrace

__all__ = [
    "BatchResult",
    "CacheStats",
    "CompileCache",
    "CompileEngine",
    "CompileRequest",
    "CompileResult",
    "CompileStatus",
    "CompileTarget",
    "DiskCacheStore",
    "EngineMetrics",
    "FINGERPRINT_VERSION",
    "RequestTrace",
    "WORKERS_ENV_VAR",
    "compile_fingerprint",
    "dag_fingerprint",
    "default_worker_count",
    "deserialize_schedule",
    "serialize_schedule",
]
