"""Unsharp masking (Table 3: Unsharp-m, 5 stages, 1 multi-consumer stage).

The input image is both blurred (separable 5-tap Gaussian) and re-read by the
sharpening stage, making the input stage the multi-consumer stage — the
classic example used by Darkroom and the paper's Sec. 3.1.
"""

from __future__ import annotations

from repro.algorithms.kernels import GAUSS5, normalized
from repro.dsl import ast
from repro.dsl.builder import PipelineBuilder
from repro.ir.dag import PipelineDAG

_SHARPEN_GAIN = 1.5


def build_unsharp_m() -> PipelineDAG:
    """Unsharp masking: out = clamp(K0 + gain * (K0 - blur(K0)))."""
    builder = PipelineBuilder("unsharp-m")
    source = builder.input("K0")

    weights = normalized(GAUSS5)
    half = len(weights) // 2
    blur_v_terms = [source(0, i - half) * w for i, w in enumerate(weights)]
    blur_v_expr: ast.Expr = blur_v_terms[0]
    for term in blur_v_terms[1:]:
        blur_v_expr = blur_v_expr + term
    blur_v = builder.stage("blur_v", blur_v_expr)

    blur_h_terms = [blur_v(i - half, 0) * w for i, w in enumerate(weights)]
    blur_h_expr: ast.Expr = blur_h_terms[0]
    for term in blur_h_terms[1:]:
        blur_h_expr = blur_h_expr + term
    blur_h = builder.stage("blur_h", blur_h_expr)

    sharpen = builder.stage(
        "sharpen", source(0, 0) + (source(0, 0) - blur_h(0, 0)) * _SHARPEN_GAIN
    )
    builder.output("clamp", ast.Call("clamp", (sharpen(0, 0), ast.Const(0.0), ast.Const(255.0))))
    return builder.build()
