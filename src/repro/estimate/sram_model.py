"""Analytic SRAM macro model (substitute for OpenRAM + FreePDK45).

The paper estimates memory power by combining per-access SRAM energy from
OpenRAM (45 nm) with access counts from a cycle-level simulator, and reports
SRAM-dominated accelerator area.  Without the memory compiler we use a small
analytic model with CACTI-style scaling:

* per-access energy grows with the square root of the macro capacity and by
  ~35% per extra port (the paper's own FPGA measurement: a BRAM serving two
  accesses per cycle consumes ~35% more power);
* leakage is dominated by a per-macro peripheral constant plus a term linear
  in capacity, and is only weakly affected by the port count;
* area has a per-macro overhead plus a term linear in capacity, and grows
  steeply with the port count (SRAM area grows roughly quadratically with
  ports, Weste & Harris).

Absolute numbers are representative of a 45 nm node at 100 MHz and are *not*
calibrated against silicon; all evaluation conclusions rely on ratios between
designs that share the same model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.memory.spec import MemorySpec


@dataclass(frozen=True)
class SramTechModel:
    """Technology constants of the analytic SRAM model."""

    #: pJ per access: ``(base + slope * sqrt(KB)) * (1 + port_energy_penalty*(ports-1))``
    access_energy_base_pj: float = 0.30
    access_energy_slope_pj: float = 0.90
    port_energy_penalty: float = 0.35

    #: mW of leakage per macro: ``(base + slope * KB) * (1 + port_leak_penalty*(ports-1))``
    leakage_base_mw: float = 0.05
    leakage_slope_mw_per_kb: float = 0.10
    port_leak_penalty: float = 0.08

    #: mm^2 per macro: ``(base + slope * KB) * (1 + port_area_penalty*(ports-1))``
    area_base_mm2: float = 0.0045
    area_slope_mm2_per_kb: float = 0.0021
    port_area_penalty: float = 0.65

    #: DFF (shift register) costs, per pixel of the configured width.
    dff_energy_per_bit_pj: float = 0.004
    dff_area_per_bit_mm2: float = 1.2e-6
    dff_leakage_per_bit_mw: float = 2.0e-5

    #: Compute (MAC/ALU) costs per arithmetic operation.
    pe_energy_per_op_pj: float = 0.08
    pe_area_per_op_mm2: float = 0.0006
    pe_leakage_per_op_mw: float = 0.002

    clock_mhz: float = 100.0

    # ------------------------------------------------------------- per macro
    def block_kbytes(self, spec: MemorySpec) -> float:
        return spec.block_bits / 8192.0

    def macro_access_energy_pj(self, bits: int, ports: int) -> float:
        """Energy of one access to a macro of ``bits`` capacity with ``ports`` ports."""
        kbytes = max(bits, 1) / 8192.0
        size_term = self.access_energy_base_pj + self.access_energy_slope_pj * math.sqrt(kbytes)
        return size_term * (1.0 + self.port_energy_penalty * (ports - 1))

    def macro_leakage_mw(self, bits: int, ports: int) -> float:
        """Static power of a macro of ``bits`` capacity with ``ports`` ports."""
        kbytes = max(bits, 1) / 8192.0
        size_term = self.leakage_base_mw + self.leakage_slope_mw_per_kb * kbytes
        return size_term * (1.0 + self.port_leak_penalty * (ports - 1))

    def macro_area_mm2(self, bits: int, ports: int) -> float:
        """Silicon area of a macro of ``bits`` capacity with ``ports`` ports."""
        kbytes = max(bits, 1) / 8192.0
        size_term = self.area_base_mm2 + self.area_slope_mm2_per_kb * kbytes
        return size_term * (1.0 + self.port_area_penalty * (ports - 1))

    def access_energy_pj(self, spec: MemorySpec) -> float:
        """Energy of one read or write access to one full-size block of ``spec``."""
        return self.macro_access_energy_pj(spec.block_bits, spec.ports)

    def block_leakage_mw(self, spec: MemorySpec) -> float:
        """Static power of one full-size block of ``spec``."""
        return self.macro_leakage_mw(spec.block_bits, spec.ports)

    def block_area_mm2(self, spec: MemorySpec) -> float:
        """Silicon area of one full-size block of ``spec``."""
        return self.macro_area_mm2(spec.block_bits, spec.ports)

    # ----------------------------------------------------------- conversions
    def dynamic_power_mw(self, accesses_per_cycle: float, energy_per_access_pj: float) -> float:
        """Convert an access rate into mW at the model's clock frequency."""
        return accesses_per_cycle * energy_per_access_pj * self.clock_mhz * 1e-3

    def dff_power_mw(self, pixels: int, pixel_bits: int, toggles_per_cycle: float = 1.0) -> float:
        bits = pixels * pixel_bits
        dynamic = self.dynamic_power_mw(toggles_per_cycle * bits, self.dff_energy_per_bit_pj)
        return dynamic + bits * self.dff_leakage_per_bit_mw

    def dff_area_mm2(self, pixels: int, pixel_bits: int) -> float:
        return pixels * pixel_bits * self.dff_area_per_bit_mm2

    def pe_power_mw(self, ops_per_cycle: float) -> float:
        return self.dynamic_power_mw(ops_per_cycle, self.pe_energy_per_op_pj) + (
            ops_per_cycle * self.pe_leakage_per_op_mw
        )

    def pe_area_mm2(self, ops: int) -> float:
        return ops * self.pe_area_per_op_mm2


#: Shared default technology model used by the evaluation harness.
DEFAULT_TECH = SramTechModel()
