"""Two-tier compile cache: in-memory LRU backed by an optional disk store.

The cache's unit of storage is a solved :class:`PipelineSchedule`, keyed by
the content fingerprint of the :class:`repro.api.CompileTarget` that produced
it (:func:`repro.api.fingerprint.compile_fingerprint`).  Caching at schedule
granularity (rather than whole :class:`CompiledAccelerator` objects) means the
two ILP solves of ``compile_pipeline``'s auto-coalescing fallback each get
their own entry, so a later plain compile of the same pipeline reuses the
fallback's non-coalesced solve.

Fingerprints are generator-aware, so baseline designs (Darkroom/SODA/FixyNN)
are cached exactly like optimized ones — but only in the memory tier: disk
entries hold just the solver's decisions (start cycles and coalescing factors)
plus the request geometry, and the physical line-buffer configurations are
re-derived on load through
:func:`repro.core.scheduler.realize_line_buffers`, which is a pure function of
those decisions *for ImaGen-generated schedules only* (baselines use FIFO
chains, dummy relay stages and other structures that do not round-trip).  A
round-tripped ImaGen schedule produces bit-identical area and power reports.

The disk store shards entries into two-hex-char fingerprint-prefix
subdirectories (``ab/abcd....json``) so large shared cache volumes never hit
flat-directory limits; entries written by pre-sharding versions of the
library are still found at their legacy flat paths.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path

from repro.api.target import CompileTarget
from repro.core.schedule import PipelineSchedule
from repro.core.scheduler import realize_line_buffers
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec

#: Bump when the serialized payload layout changes; stale disk entries are
#: treated as misses rather than errors.
SCHEDULE_FORMAT_VERSION = 1

#: Result source markers shared with the engine's per-request accounting.
SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"
SOURCE_SOLVER = "solver"

#: Schedule generators whose disk payloads round-trip through
#: :func:`realize_line_buffers`; everything else stays memory-tier only.
_DISK_SAFE_GENERATORS = ("imagen", "imagen+lc")


# ---------------------------------------------------------------------------
# Schedule (de)serialization
# ---------------------------------------------------------------------------
def serialize_schedule(schedule: PipelineSchedule) -> dict:
    """Flatten a solved schedule into a JSON-serializable payload."""
    stats = {
        key: value
        for key, value in schedule.solver_stats.items()
        if isinstance(value, (str, int, float, bool)) or value is None
    }
    return {
        "version": SCHEDULE_FORMAT_VERSION,
        "image_width": schedule.image_width,
        "image_height": schedule.image_height,
        "memory_spec": {
            "name": schedule.memory_spec.name,
            "block_bits": schedule.memory_spec.block_bits,
            "ports": schedule.memory_spec.ports,
            "pixel_bits": schedule.memory_spec.pixel_bits,
            "style": schedule.memory_spec.style,
            "allow_coalescing": schedule.memory_spec.allow_coalescing,
        },
        "generator": schedule.generator,
        "start_cycles": dict(schedule.start_cycles),
        "coalesce_factors": dict(schedule.coalesce_factors),
        "ports": int(stats.get("ports", schedule.memory_spec.ports)),
        "solver_stats": stats,
    }


def deserialize_schedule(payload: dict, dag: PipelineDAG) -> PipelineSchedule:
    """Rebuild a schedule from :func:`serialize_schedule` output.

    The caller supplies the pipeline DAG (cache keys already guarantee it is
    structurally identical to the one that was compiled); line buffers are
    re-derived rather than stored, which keeps payloads small and guarantees
    they match what the allocator would produce today.
    """
    if payload.get("version") != SCHEDULE_FORMAT_VERSION:
        raise ValueError(f"Unsupported schedule payload version {payload.get('version')!r}")
    memory_spec = MemorySpec(**payload["memory_spec"])
    start_cycles = {name: int(cycle) for name, cycle in payload["start_cycles"].items()}
    factors = {name: int(f) for name, f in payload["coalesce_factors"].items()}
    line_buffers = realize_line_buffers(
        dag,
        int(payload["image_width"]),
        memory_spec,
        start_cycles,
        factors,
        int(payload["ports"]),
    )
    return PipelineSchedule(
        dag=dag,
        image_width=int(payload["image_width"]),
        image_height=int(payload["image_height"]),
        memory_spec=memory_spec,
        start_cycles=start_cycles,
        line_buffers=line_buffers,
        generator=payload.get("generator", "imagen"),
        coalesce_factors=factors,
        solver_stats=dict(payload.get("solver_stats", {})),
    )


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------
class DiskCacheStore:
    """Sharded directory of JSON files, one per fingerprint.

    Entries live under two-hex-char fingerprint-prefix subdirectories
    (``<dir>/ab/abcd....json``) so shared cache volumes with many thousands of
    entries never stress flat-directory lookups.  Entries written by older
    library versions at the flat ``<dir>/abcd....json`` path are still read.

    Writes go through a temp file + rename so concurrent readers never see a
    half-written entry; unreadable or stale entries degrade to cache misses.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / fingerprint[:2] / f"{fingerprint}.json"

    def legacy_path_for(self, fingerprint: str) -> Path:
        """Flat pre-sharding location, still consulted on reads."""
        return self.directory / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> dict | None:
        for path in (self.path_for(fingerprint), self.legacy_path_for(fingerprint)):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    return json.load(handle)
            except FileNotFoundError:
                continue
            except (OSError, ValueError):
                return None
        return None

    def save(self, fingerprint: str, payload: dict) -> bool:
        """Persist one entry; returns ``False`` when the write failed.

        The temp name is unique per writer (``mkstemp`` in the shard
        directory): several processes sharing one cache volume may save the
        same fingerprint concurrently, and a shared temp path would let their
        writes interleave and rename corrupt JSON into place.
        """
        path = self.path_for(fingerprint)
        tmp: Path | None = None
        try:
            # Non-recursive mkdir: if the store's base directory disappeared,
            # degrade to a failed write instead of silently recreating it.
            path.parent.mkdir(exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f"{fingerprint}.", suffix=".tmp", dir=path.parent
            )
            tmp = Path(tmp_name)
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            tmp.replace(path)
        except OSError:
            if tmp is not None:
                tmp.unlink(missing_ok=True)
            return False
        try:
            # The sharded entry now shadows any pre-sharding flat twin; drop
            # the flat file so __len__/clear see one entry per fingerprint.
            self.legacy_path_for(fingerprint).unlink(missing_ok=True)
        except OSError:
            pass  # the write itself succeeded; a stale twin is harmless
        return True

    def _entry_paths(self):
        """One path per fingerprint (a sharded entry shadows its flat twin)."""
        sharded = set()
        for path in self.directory.glob("??/*.json"):
            sharded.add(path.stem)
            yield path
        for path in self.directory.glob("*.json"):  # legacy flat entries
            if path.stem not in sharded:
                yield path

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> None:
        # Raw globs, not the deduplicated view: a fingerprint present at both
        # the sharded and the legacy flat path must lose both files.  Stray
        # temp files from writers that died mid-save are swept up too.
        for pattern in ("*.json", "??/*.json", "??/*.tmp"):
            for path in list(self.directory.glob(pattern)):
                path.unlink(missing_ok=True)


@dataclass
class CacheStats:
    """Counters describing cache behaviour since construction (or clear)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_hits: int = 0
    disk_stores: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> "CacheStats":
        return replace(self)

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "hit_rate": round(self.hit_rate, 4),
        }


class CompileCache:
    """Thread-safe LRU of solved schedules with an optional disk tier.

    ``hits`` counts both tiers (a disk hit is also counted in ``disk_hits``
    and promotes the entry into memory).  All methods are safe to call from
    the engine's worker threads.
    """

    def __init__(self, max_entries: int = 256, store: DiskCacheStore | None = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.store = store
        self.stats = CacheStats()
        self._entries: OrderedDict[str, PipelineSchedule] = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ reads
    def fetch(self, target: CompileTarget) -> tuple[PipelineSchedule | None, str, str]:
        """Look up one target; returns ``(schedule | None, source, fingerprint)``.

        ``source`` is :data:`SOURCE_MEMORY`, :data:`SOURCE_DISK`, or
        :data:`SOURCE_SOLVER` (meaning: not cached, the caller must solve).
        """
        fingerprint = target.fingerprint  # memoized on the target
        with self._lock:
            schedule = self._entries.get(fingerprint)
            if schedule is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                return schedule, SOURCE_MEMORY, fingerprint
        # Baseline designs are never persisted (their line buffers do not
        # round-trip through realize_line_buffers), so skip the disk probe.
        if self.store is not None and target.is_imagen:
            payload = self.store.load(fingerprint)
            if payload is not None:
                try:
                    schedule = deserialize_schedule(payload, target.dag)
                except Exception:
                    # Any malformed, stale, or version-skewed entry (bad spec
                    # fields, missing stages, ...) degrades to a cache miss.
                    schedule = None
                if schedule is not None:
                    with self._lock:
                        self._insert(fingerprint, schedule)
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                    return schedule, SOURCE_DISK, fingerprint
        with self._lock:
            self.stats.misses += 1
        return None, SOURCE_SOLVER, fingerprint

    # ----------------------------------------------------------------- writes
    def put(self, fingerprint: str, schedule: PipelineSchedule) -> None:
        """Record a freshly solved schedule under its fingerprint."""
        with self._lock:
            self._insert(fingerprint, schedule)
            self.stats.stores += 1
        if self.store is not None and schedule.generator in _DISK_SAFE_GENERATORS:
            if self.store.save(fingerprint, serialize_schedule(schedule)):
                with self._lock:
                    self.stats.disk_stores += 1

    def _insert(self, fingerprint: str, schedule: PipelineSchedule) -> None:
        self._entries[fingerprint] = schedule
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------ admin
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def clear(self, *, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()
        if disk and self.store is not None:
            self.store.clear()
