"""Edge-preserving denoise (Table 3: Denoise-m, 5 stages, 2 multi-consumer stages).

The structure follows the denoise2D example cited by the paper (SODA): the
input is read both by a smoothing stage and by a difference stage, and the
smoothed image is read both by the difference stage and by the final blend —
two multi-consumer stages.
"""

from __future__ import annotations

from repro.algorithms.kernels import gauss3_2d
from repro.dsl import ast
from repro.dsl.builder import PipelineBuilder, convolve, window_sum
from repro.ir.dag import PipelineDAG


def build_denoise_m() -> PipelineDAG:
    """Blend the blurred image with the original where local detail is low."""
    builder = PipelineBuilder("denoise-m")
    source = builder.input("K0")
    blur = builder.stage("blur", convolve(source, gauss3_2d()))
    detail = builder.stage("detail", ast.Call("abs", (source(0, 0) - blur(0, 0),)))
    activity = builder.stage("activity", window_sum(detail, 3, 3))
    builder.output(
        "blend",
        ast.Call("select", (activity(0, 0) > 60.0, source(0, 0), blur(0, 0))),
    )
    return builder.build()
