"""Pluggable execution backends for the compile engine.

Stability: public.

:class:`repro.service.engine.CompileEngine` fans batch and async submissions
out over an :class:`ExecutorBackend`.  The interchangeable backends are
selected with ``CompileEngine(executor=...)`` or the ``REPRO_EXECUTOR``
environment variable:

``inline``
    Runs every job synchronously on the submitting thread.  Deterministic
    ordering and zero concurrency — the backend for tests and debugging.
``thread``
    A lazily-created :class:`~concurrent.futures.ThreadPoolExecutor` (the
    historical behaviour, and the default).  Independent solves overlap on
    multi-core hosts when the HiGHS backend releases the GIL.
``process``
    A lazily-created :class:`~concurrent.futures.ProcessPoolExecutor`.  Jobs
    cross the process boundary as *wire payloads*
    (:func:`repro.service.jobs.execute_wire_job`): the target ships as
    :func:`repro.service.wire.target_to_wire` output and the full result
    returns as :func:`repro.service.wire.full_result_to_wire` output — plain
    dictionaries, never pickled closures.  This parallelizes the pure-Python
    branch-and-bound/simplex fallback too, which the thread backend cannot
    (it serializes on the GIL whenever HiGHS is unavailable).  Workers share
    the engine's disk cache volume when one is configured, so what one
    process solves every process loads warm.
``thread:auto`` / ``process:auto``
    An :class:`AutoscalingExecutor` over single-worker thread/process
    backends: the fleet starts empty, grows one worker at a time toward
    ``max_workers`` whenever a job arrives and no worker is idle, and
    retires workers that stay idle past ``idle_seconds`` (never below
    ``min_workers``).  Scaling decisions are counted and surfaced through
    :meth:`ExecutorBackend.stats` — the HTTP front republishes them on
    ``GET /v1/metrics`` — so a fleet sized for peak load sheds its idle
    processes between bursts instead of pinning memory forever.

All backends present one interface: ``submit(run_local, target, fingerprint)``
returning a :class:`concurrent.futures.Future` that resolves to a
:class:`repro.service.jobs.CompileResult`.  ``run_local`` is the engine's
in-process job body; the process backend ignores it and ships the wire
payload instead.  Futures from every backend work with
:func:`asyncio.wrap_future`, so the engine's asyncio front is backend-neutral.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable

from repro.api.target import CompileTarget
from repro.service.events import emit_event
from repro.service.jobs import CompileResult, execute_wire_job


def relay_future(source: Future, destination: Future) -> None:
    """Copy a settled future's outcome onto another (already-running) future.

    Cancellation arrives as a ``CancelledError`` *exception* on the
    destination — it was marked running at publication so joiners' ``cancel()``
    calls are no-ops, and ``asyncio.wrap_future`` surfaces the exception as a
    normal await-side ``CancelledError``.
    """
    if source.cancelled():
        destination.set_exception(CancelledError())
        return
    exc = source.exception()
    if exc is not None:
        destination.set_exception(exc)
        return
    destination.set_result(source.result())

#: Environment variable that selects the default backend for engines that are
#: constructed without an explicit ``executor=`` argument.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: Environment variable that overrides the default worker count (shared with
#: :func:`repro.service.engine.default_worker_count`).
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Valid backend names, in documentation order.  The ``:auto`` variants wrap
#: the base backend in an :class:`AutoscalingExecutor`.
EXECUTOR_NAMES = ("inline", "thread", "process", "thread:auto", "process:auto")

#: Base backends the autoscaler can manage.
AUTOSCALABLE_MODES = ("thread", "process")

#: Default idle time, in seconds, before the autoscaler retires a worker.
DEFAULT_IDLE_SECONDS = 30.0

#: Backend used when neither ``executor=`` nor ``REPRO_EXECUTOR`` is given.
DEFAULT_EXECUTOR = "thread"


def validate_worker_count(value, *, source: str = "workers") -> int:
    """Check a worker-count setting, rejecting garbage with a clear error.

    ``REPRO_WORKERS=0``, negative counts and non-integers used to slip
    through to the pool constructor (or be silently ignored); every entry
    point now funnels through this check and raises :class:`ValueError`
    naming the offending setting instead.
    """
    try:
        workers = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive integer, got {value!r}"
        ) from None
    if workers != value and not isinstance(value, str):
        # int() would silently truncate e.g. 2.5 workers; refuse instead.
        raise ValueError(f"{source} must be a positive integer, got {value!r}")
    if workers < 1:
        raise ValueError(f"{source} must be >= 1, got {workers}")
    return workers


def default_executor_name() -> str:
    """Backend name used when the caller does not specify one.

    ``REPRO_EXECUTOR``, when set, must name a known backend; anything else
    raises :class:`ValueError` (misspelling a deployment knob should fail
    loudly, not silently serialize a fleet onto the wrong backend).
    """
    override = os.environ.get(EXECUTOR_ENV_VAR, "").strip().lower()
    if not override:
        return DEFAULT_EXECUTOR
    if override not in EXECUTOR_NAMES:
        raise ValueError(
            f"Invalid {EXECUTOR_ENV_VAR}={override!r}; expected one of {EXECUTOR_NAMES}"
        )
    return override


class ExecutorBackend(abc.ABC):
    """How compile jobs run: inline, on a thread pool, or on a process pool.

    Backends are lazy (no pool exists until the first job) and reusable after
    :meth:`shutdown` (the next job recreates the pool), mirroring the
    engine's historical lifecycle.
    """

    #: Backend name as used by ``CompileEngine(executor=...)``.
    name: str = "?"

    #: Whether jobs run outside the engine's process (results arrive as
    #: decoded wire payloads and the engine adopts them into its own cache).
    remote: bool = False

    def __init__(self, workers: int = 1) -> None:
        self.workers = validate_worker_count(workers)

    @abc.abstractmethod
    def submit(
        self,
        run_local: Callable[[CompileTarget, str], CompileResult],
        target: CompileTarget,
        fingerprint: str,
    ) -> "Future[CompileResult]":
        """Queue one job; the future resolves to its :class:`CompileResult`."""

    def shutdown(self, wait: bool = True, *, cancel_pending: bool = False) -> None:
        """Release pool resources (a later submit transparently recreates them)."""

    def stats(self) -> dict:
        """Operational snapshot for metrics endpoints.

        Fixed-size backends report their configured fleet; the autoscaler
        overrides this with live worker counts and scaling counters.  Keys
        are stable across backends so ``/v1/metrics`` has one schema.
        """
        return {
            "executor": self.name,
            "workers": self.workers,
            "max_workers": self.workers,
            "executor_queue_depth": 0,
            "scale_ups": 0,
            "scale_downs": 0,
        }

    def describe(self) -> str:
        return f"{self.name}(workers={self.workers})"


class InlineExecutor(ExecutorBackend):
    """Run every job synchronously on the submitting thread.

    Batches execute strictly in submission order with no concurrency — the
    deterministic backend for tests, debugging and single-core deployments.
    """

    name = "inline"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)

    def submit(self, run_local, target, fingerprint):
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(run_local(target, fingerprint))
        except BaseException as exc:  # run_local captures compile errors;
            future.set_exception(exc)  # anything escaping is fatal — carry it
        return future


class ThreadExecutor(ExecutorBackend):
    """Fan jobs out over a lazily-created thread pool (the default)."""

    name = "thread"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-compile"
                )
            return self._pool

    def submit(self, run_local, target, fingerprint):
        return self._ensure_pool().submit(run_local, target, fingerprint)

    def shutdown(self, wait: bool = True, *, cancel_pending: bool = False) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=cancel_pending)


def _main_module_is_importable() -> bool:
    """Whether spawn-style child preparation can re-create ``__main__``.

    Fresh-interpreter start methods re-import the parent's main module; a
    REPL, ``python - <<EOF`` or ``python -c`` parent has no main module on
    disk, so their child workers would die with ``FileNotFoundError`` before
    running a single job.
    """
    import sys

    main = sys.modules.get("__main__")
    if main is None:
        return False
    if getattr(getattr(main, "__spec__", None), "name", None) is not None:
        return True  # started via -m; re-importable by module name
    main_path = getattr(main, "__file__", None)
    return main_path is not None and os.path.exists(main_path)


def _process_pool_context():
    """Start method for compile worker processes.

    Avoid bare ``fork`` from real programs: the pool is created lazily,
    typically in an already-multithreaded parent (HTTP handler threads,
    batch submitters), and forking a multithreaded process can deadlock the
    child on locks copied mid-acquisition (CPython deprecates exactly this).
    ``forkserver`` keeps near-fork startup cost by forking from a clean
    single-threaded server process (preloaded with the worker module);
    platforms without it fall back to ``spawn``.  Both require the parent's
    main module to be re-importable — interactive parents (REPL, piped
    stdin) have none, so those keep classic ``fork``, which is safe there:
    an interactive session is effectively single-threaded.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and not _main_module_is_importable():
        if threading.active_count() > 1:
            import warnings

            warnings.warn(
                "Creating a process-backend pool via fork from a parent that "
                "is both interactive (no importable __main__) and "
                "multithreaded; forked workers may deadlock on inherited "
                "locks. Run the program as a script or module (python file.py"
                " / python -m ...) to get the forkserver start method.",
                RuntimeWarning,
                stacklevel=4,
            )
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        context = multiprocessing.get_context("forkserver")
        context.set_forkserver_preload(["repro.service.jobs"])
        return context
    return multiprocessing.get_context("spawn")


class ProcessExecutor(ExecutorBackend):
    """Fan jobs out over worker processes, talking wire payloads.

    ``cache_dir`` (when the engine has a disk cache tier) is forwarded, with
    its GC bounds, to every job so workers persist their solves to the
    shared volume — and keep it within its ``max_bytes``/``max_age_seconds``
    budget; the parent additionally adopts returned schedules into its
    in-memory LRU.
    """

    name = "process"
    remote = True

    def __init__(
        self,
        workers: int,
        *,
        cache_dir: str | None = None,
        cache_max_bytes: int | None = None,
        cache_max_age_seconds: float | None = None,
    ) -> None:
        super().__init__(workers)
        self.cache_dir = cache_dir
        self.cache_max_bytes = cache_max_bytes
        self.cache_max_age_seconds = cache_max_age_seconds
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=_process_pool_context()
                )
            return self._pool

    def submit(self, run_local, target, fingerprint):
        # Encode on the submitting side: a target that cannot be expressed on
        # the wire must fail the submitter, not poison a worker.
        from repro.service.wire import target_to_wire

        payload = target_to_wire(target)
        worker_future = self._ensure_pool().submit(
            execute_wire_job,
            payload,
            self.cache_dir,
            self.cache_max_bytes,
            self.cache_max_age_seconds,
        )
        # The caller-visible future resolves to the *decoded* CompileResult,
        # re-attached to the submitter's own target object.  Marked running
        # up front so a joiner's cancel() cannot flip it into a state where
        # delivery raises InvalidStateError (same invariant as inline submit).
        delivered: Future = Future()
        delivered.set_running_or_notify_cancel()
        worker_future.add_done_callback(
            lambda done, target=target: self._deliver(done, delivered, target)
        )
        return delivered

    @staticmethod
    def _deliver(worker_future: Future, delivered: Future, target: CompileTarget) -> None:
        from repro.service.wire import full_result_from_wire

        if worker_future.cancelled():
            delivered.set_exception(CancelledError())
            return
        exc = worker_future.exception()
        if exc is not None:
            delivered.set_exception(exc)
            return
        try:
            delivered.set_result(full_result_from_wire(worker_future.result(), target))
        except BaseException as decode_error:  # undecodable worker payload
            delivered.set_exception(decode_error)

    def shutdown(self, wait: bool = True, *, cancel_pending: bool = False) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=cancel_pending)


class _AutoWorker:
    """One managed worker slot: a single-worker backend plus its idle stamp."""

    __slots__ = ("backend", "idle_since")

    def __init__(self, backend: ExecutorBackend) -> None:
        self.backend = backend
        self.idle_since = 0.0


class AutoscalingExecutor(ExecutorBackend):
    """Demand-driven worker fleet over single-worker thread/process backends.

    Jobs are dispatched to an idle worker when one exists; otherwise the
    fleet grows by one (up to ``max_workers``, each scale-up counted and
    logged to the event ring) and, at the ceiling, jobs queue internally.  A
    worker that finishes takes the oldest queued job or goes idle; workers
    idle longer than ``idle_seconds`` are retired down to ``min_workers`` —
    lazily on the next submission, and by a daemon timer when traffic stops
    entirely, so a quiet service really does shrink.

    ``mode="process"`` fleets are *remote* exactly like the fixed
    :class:`ProcessExecutor` (jobs cross as wire payloads, workers share the
    engine's disk-cache volume); ``mode="thread"`` fleets stay in-process.
    The ``clock`` parameter exists for deterministic idle-expiry tests.
    """

    def __init__(
        self,
        max_workers: int,
        *,
        mode: str = "process",
        min_workers: int = 0,
        idle_seconds: float = DEFAULT_IDLE_SECONDS,
        cache_dir: str | None = None,
        cache_max_bytes: int | None = None,
        cache_max_age_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(max_workers)
        if mode not in AUTOSCALABLE_MODES:
            raise ValueError(f"mode must be one of {AUTOSCALABLE_MODES}, got {mode!r}")
        if not 0 <= min_workers <= max_workers:
            raise ValueError(
                f"min_workers must be in [0, max_workers], got {min_workers}"
            )
        if idle_seconds <= 0:
            raise ValueError(f"idle_seconds must be > 0, got {idle_seconds}")
        self.mode = mode
        self.name = f"{mode}:auto"
        self.remote = mode == "process"
        self.min_workers = int(min_workers)
        self.idle_seconds = float(idle_seconds)
        self.cache_dir = cache_dir
        self.cache_max_bytes = cache_max_bytes
        self.cache_max_age_seconds = cache_max_age_seconds
        self._clock = clock
        self._cond = threading.Condition()
        self._idle: list[_AutoWorker] = []
        self._busy: set[_AutoWorker] = set()
        self._backlog: deque[tuple] = deque()
        self._scale_ups = 0
        self._scale_downs = 0
        self._events: deque[dict] = deque(maxlen=32)
        self._reap_timer: threading.Timer | None = None

    # ------------------------------------------------------------- lifecycle
    def _spawn_locked(self) -> _AutoWorker:
        if self.mode == "thread":
            backend: ExecutorBackend = ThreadExecutor(1)
        else:
            backend = ProcessExecutor(
                1,
                cache_dir=self.cache_dir,
                cache_max_bytes=self.cache_max_bytes,
                cache_max_age_seconds=self.cache_max_age_seconds,
            )
        worker = _AutoWorker(backend)
        self._scale_ups += 1
        workers = len(self._idle) + len(self._busy) + 1
        self._events.append({"action": "grow", "workers": workers, "at": self._clock()})
        emit_event("autoscaler.grow", executor=self.name, workers=workers)
        return worker

    @property
    def current_workers(self) -> int:
        with self._cond:
            return len(self._idle) + len(self._busy)

    # ----------------------------------------------------------------- submit
    def submit(self, run_local, target, fingerprint):
        placeholder: Future = Future()
        placeholder.set_running_or_notify_cancel()
        worker: _AutoWorker | None = None
        with self._cond:
            retired = self._reap_locked()
            if self._idle:
                # Reuse the *newest* idle worker (LIFO): the hot worker keeps
                # absorbing a light trickle while the oldest — at the front,
                # where the reaper scans — ages toward retirement.  FIFO reuse
                # would refresh every idle stamp round-robin and a fleet sized
                # for a burst would never scale down.
                worker = self._idle.pop()
                self._busy.add(worker)
            elif len(self._idle) + len(self._busy) < self.workers:
                worker = self._spawn_locked()
                self._busy.add(worker)
            else:
                self._backlog.append((run_local, target, fingerprint, placeholder))
        for expired in retired:
            expired.backend.shutdown(wait=False)
        if worker is not None:
            self._dispatch(worker, run_local, target, fingerprint, placeholder)
        return placeholder

    def _dispatch(self, worker, run_local, target, fingerprint, placeholder) -> None:
        try:
            inner = worker.backend.submit(run_local, target, fingerprint)
        except BaseException as exc:
            placeholder.set_exception(exc)
            self._release(worker)
            return
        inner.add_done_callback(
            lambda done, w=worker, out=placeholder: self._finish(w, done, out)
        )

    def _finish(self, worker: _AutoWorker, inner: Future, placeholder: Future) -> None:
        relay_future(inner, placeholder)
        self._release(worker)

    def _release(self, worker: _AutoWorker) -> None:
        job = None
        with self._cond:
            if worker not in self._busy:
                return  # shutdown already removed it
            if self._backlog:
                job = self._backlog.popleft()
            else:
                self._busy.discard(worker)
                worker.idle_since = self._clock()
                # Append: the list stays ordered oldest-idle first, so the
                # reaper scans from the front and submit pops the newest from
                # the back.
                self._idle.append(worker)
                self._schedule_reap_locked()
            self._cond.notify_all()
        if job is not None:
            self._dispatch(worker, *job)

    # ---------------------------------------------------------------- reaping
    def _reap_locked(self) -> list[_AutoWorker]:
        now = self._clock()
        retired: list[_AutoWorker] = []
        total = len(self._idle) + len(self._busy)
        keep: list[_AutoWorker] = []
        for worker in self._idle:  # oldest idle first
            if total > self.min_workers and now - worker.idle_since >= self.idle_seconds:
                retired.append(worker)
                total -= 1
            else:
                keep.append(worker)
        if retired:
            self._idle = keep
            for _ in retired:
                self._scale_downs += 1
            self._events.append({"action": "shrink", "workers": total, "at": now})
            emit_event("autoscaler.shrink", executor=self.name, workers=total)
        return retired

    def _schedule_reap_locked(self) -> None:
        if self._reap_timer is not None and self._reap_timer.is_alive():
            return
        timer = threading.Timer(self.idle_seconds + 0.05, self.reap)
        timer.daemon = True
        self._reap_timer = timer
        timer.start()

    def reap(self) -> int:
        """Retire workers idle past ``idle_seconds``; returns how many.

        Called lazily on every submission and by the idle timer; tests with
        an injected ``clock`` call it directly after advancing time.
        """
        with self._cond:
            retired = self._reap_locked()
            if self._idle:  # still-idle workers may expire later
                self._schedule_reap_locked()
        for worker in retired:
            worker.backend.shutdown(wait=False)
        return len(retired)

    # ------------------------------------------------------------- inspection
    def stats(self) -> dict:
        with self._cond:
            return {
                "executor": self.name,
                "workers": len(self._idle) + len(self._busy),
                "max_workers": self.workers,
                "min_workers": self.min_workers,
                "busy_workers": len(self._busy),
                "executor_queue_depth": len(self._backlog),
                "scale_ups": self._scale_ups,
                "scale_downs": self._scale_downs,
                "scaling_events": list(self._events),
            }

    def describe(self) -> str:
        stats = self.stats()
        return (
            f"{self.name}(workers={stats['workers']}/{self.workers}, "
            f"scale_ups={stats['scale_ups']}, scale_downs={stats['scale_downs']})"
        )

    # --------------------------------------------------------------- shutdown
    def shutdown(self, wait: bool = True, *, cancel_pending: bool = False) -> None:
        with self._cond:
            if self._reap_timer is not None:
                self._reap_timer.cancel()
                self._reap_timer = None
            if cancel_pending or not wait:
                dropped = list(self._backlog)
                self._backlog.clear()
            else:
                dropped = []
                while self._backlog or self._busy:
                    self._cond.wait()
            workers = self._idle + list(self._busy)
            self._idle = []
            self._busy = set()
        for _, _, _, placeholder in dropped:
            placeholder.set_exception(CancelledError())
        for worker in workers:
            worker.backend.shutdown(wait=wait, cancel_pending=cancel_pending)


def resolve_executor(
    executor: str | ExecutorBackend | None,
    *,
    workers: int,
    cache_dir: str | None = None,
    cache_max_bytes: int | None = None,
    cache_max_age_seconds: float | None = None,
) -> ExecutorBackend:
    """Turn an ``executor=`` argument into a live backend.

    ``None`` consults ``REPRO_EXECUTOR`` and falls back to ``"thread"``; a
    string must be one of :data:`EXECUTOR_NAMES` (``"thread:auto"`` /
    ``"process:auto"`` build an :class:`AutoscalingExecutor` whose fleet
    grows toward ``workers``); a ready-made :class:`ExecutorBackend`
    instance is used as-is (its own worker count and cache configuration
    win — sharing one backend between engines is allowed, and constructing
    an ``AutoscalingExecutor`` directly exposes the ``min_workers`` /
    ``idle_seconds`` knobs the string form defaults).
    """
    if isinstance(executor, ExecutorBackend):
        return executor
    name = executor if executor is not None else default_executor_name()
    if name == "inline":
        return InlineExecutor()
    if name == "thread":
        return ThreadExecutor(workers)
    if name == "process":
        return ProcessExecutor(
            workers,
            cache_dir=cache_dir,
            cache_max_bytes=cache_max_bytes,
            cache_max_age_seconds=cache_max_age_seconds,
        )
    if name in ("thread:auto", "process:auto"):
        return AutoscalingExecutor(
            workers,
            mode=name.split(":", 1)[0],
            cache_dir=cache_dir,
            cache_max_bytes=cache_max_bytes,
            cache_max_age_seconds=cache_max_age_seconds,
        )
    raise ValueError(f"Unknown executor {executor!r}; expected one of {EXECUTOR_NAMES}")
