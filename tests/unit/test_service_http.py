"""Unit tests for the stdlib HTTP serving front and ServiceClient."""

import json
import http.client
import threading
import time

import pytest

import repro.service.engine as engine_module
from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.estimate.report import accelerator_report
from repro.service import (
    CompileEngine,
    RateLimiter,
    ServiceClient,
    ServiceError,
    TokenAuthenticator,
    start_server,
    target_to_wire,
)
from repro.service.admission import TokenRecord

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain

W, H = TEST_WIDTH, TEST_HEIGHT


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port + its engine + a client."""
    # Thread backend pinned: the endpoint tests assert parent-cache hit
    # accounting that worker-process caches would intentionally change.
    engine = CompileEngine(workers=2, executor="thread", cache_dir=tmp_path / "cache")
    server = start_server(engine)
    yield ServiceClient(port=server.port), engine, server
    server.stop()
    engine.shutdown()


def _raw_request(port, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


class TestCompileEndpoint:
    def test_round_trip_matches_in_process_submit(self, service):
        """Acceptance: HTTP compile == in-process engine.submit of the target."""
        client, engine, _ = service
        target = CompileTarget(
            build_algorithm("unsharp-m"), image_width=W, image_height=H
        )
        remote = client.compile(target)
        in_process = engine.submit(target)
        assert remote["ok"] is True
        assert remote["fingerprint"] == in_process.fingerprint
        row = accelerator_report(in_process.accelerator).row()
        assert remote["report"]["total_area_mm2"] == row["total_area_mm2"]
        assert remote["report"]["total_power_mw"] == row["total_power_mw"]
        assert remote["report"]["sram_kb"] == row["sram_kb"]

    def test_repeat_request_is_a_cache_hit(self, service):
        """Acceptance: the second identical request reports a cache-tier source."""
        client, _, _ = service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        first = client.compile(target)
        second = client.compile(target)
        assert first["source"] == "solver"
        assert second["source"] in ("memory", "disk")
        assert second["fingerprint"] == first["fingerprint"]

    def test_fresh_engine_serves_from_shared_disk_cache(self, service, tmp_path):
        """A second service process on the same cache volume gets disk hits."""
        client, _, _ = service
        target = CompileTarget(build_chain(4), image_width=W, image_height=H)
        client.compile(target)
        second_engine = CompileEngine(workers=1, cache_dir=tmp_path / "cache")
        second_server = start_server(second_engine)
        try:
            repeat = ServiceClient(port=second_server.port).compile(target)
            assert repeat["source"] == "disk"
        finally:
            second_server.stop()
            second_engine.shutdown()

    def test_compile_failure_is_ok_false_not_500(self, service):
        client, _, _ = service
        result = client.compile(
            CompileTarget(build_chain(3), image_width=1, image_height=H)
        )
        assert result["ok"] is False
        assert "SchedulingError" in result["error"]
        assert "report" not in result

    def test_wrapped_target_body_accepted(self, service):
        client, _, server = service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/compile",
            body=json.dumps({"target": target_to_wire(target)}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 200 and body["ok"] is True


class TestBatchEndpoint:
    def test_ordered_batch_with_per_item_errors(self, service):
        client, _, _ = service
        targets = [
            CompileTarget(build_chain(3), image_width=W, image_height=H, label="a"),
            CompileTarget(build_chain(3), image_width=1, image_height=H, label="bad"),
            CompileTarget(build_chain(3), image_width=W, image_height=H, label="dup"),
        ]
        body = client.compile_batch(targets)
        assert [r["ok"] for r in body["results"]] == [True, False, True]
        assert [r.get("label") for r in body["results"]] == ["a", "bad", "dup"]
        assert body["results"][2]["source"] in ("deduplicated", "memory", "disk")
        assert body["seconds"] >= 0
        assert body["cache_stats"]["misses"] >= 1

    def test_undecodable_item_degrades_to_error_slot(self, service):
        client, _, server = service
        good = target_to_wire(
            CompileTarget(build_chain(3), image_width=W, image_height=H)
        )
        bad = dict(good)
        bad["resolution"] = "nonsense"
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/batch",
            body=json.dumps({"targets": [good, bad, good]}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 200  # per-item errors are JSON, not 500s
        assert [r["ok"] for r in body["results"]] == [True, False, True]
        assert "resolution" in body["results"][1]["error"]
        assert body["results"][0]["fingerprint"] == body["results"][2]["fingerprint"]

    def test_malformed_batch_body_is_400(self, service):
        client, _, server = service
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/batch",
            body=json.dumps({"jobs": []}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert "targets" in body["error"]


class TestOperationalEndpoints:
    def test_healthz(self, service):
        client, _, _ = service
        assert client.health() == {"status": "ok"}

    def test_metrics_reflect_served_requests(self, service):
        client, _, _ = service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        client.compile(target)
        client.compile(target)
        metrics = client.metrics()
        assert metrics["requests"] == 2
        assert metrics["compiled"] == 1
        assert metrics["served_from_cache"] == 1

    def test_cache_stats_include_occupancy_and_disk_tier(self, service):
        client, _, _ = service
        client.compile(CompileTarget(build_chain(3), image_width=W, image_height=H))
        stats = client.cache_stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["disk_entries"] == 1
        assert stats["disk_stores"] == 1

    def test_unknown_path_is_404(self, service):
        client, _, server = service
        for method, path in (("GET", "/v1/nope"), ("POST", "/v2/compile")):
            status, body = _raw_request(
                server.port, method, path, body="{}" if method == "POST" else None
            )
            assert status == 404
            assert path in body["error"]
        with pytest.raises(ServiceError, match="404"):
            ServiceClient(port=server.port)._request("GET", "/v1/nope")

    def test_invalid_json_body_is_400(self, service):
        client, _, server = service
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/compile",
            body="{not json",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert "JSON" in body["error"]

    def test_keep_alive_connection_serves_multiple_requests(self, service):
        _, _, server = service
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            for _ in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()  # drain so the connection can be reused
        finally:
            connection.close()

    def test_error_responses_close_the_connection(self, service):
        """Error paths may not drain the request body; keeping the HTTP/1.1
        connection alive would desync it (body bytes parsed as the next
        request line), so 4xx responses must carry Connection: close."""
        _, _, server = service
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/nope",
                body=json.dumps({"payload": "never drained"}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_metrics_expose_admission_and_executor_schema(self, service):
        """Acceptance: /v1/metrics always carries rejected_total, queue_depth
        and the live worker count, even with admission control off."""
        client, engine, _ = service
        metrics = client.metrics()
        assert metrics["rejected_total"] == 0
        assert metrics["queue_depth"] == 0
        assert metrics["throttled_total"] == 0
        assert metrics["workers"] == engine.workers
        assert metrics["max_workers"] == engine.workers
        assert metrics["auth"] == "anonymous"
        assert metrics["max_pending"] is None

    def test_internal_errors_become_500_json(self, service, monkeypatch):
        """An unexpected exception in a route is a JSON 500, not a reset."""
        _, engine, server = service

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(engine, "submit", boom)
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/compile",
            body=json.dumps(target_to_wire(target)),
            headers={"Content-Type": "application/json"},
        )
        assert status == 500
        assert "RuntimeError" in body["error"]

    def test_undecodable_target_is_400(self, service):
        client, _, server = service
        status, body = _raw_request(
            server.port,
            "POST",
            "/v1/compile",
            body=json.dumps({"dag": {"stages": [], "edges": []}}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert "error" in body


# ---------------------------------------------------------------------------
# Admission control over HTTP: auth, rate limits, queue-full semantics
# ---------------------------------------------------------------------------
class _Clock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def secured_service():
    """A server with token auth and a fake-clock rate limiter (2 rps, burst 2)."""
    clock = _Clock()
    authenticator = TokenAuthenticator(
        [
            TokenRecord("alice", "alice-secret"),
            TokenRecord("bob", "bob-secret"),
            TokenRecord("carol", "carol-secret", expires_epoch=500.0),
        ],
        clock=clock,
    )
    limiter = RateLimiter(rate=2.0, burst=2.0, clock=clock)
    engine = CompileEngine(workers=1, executor="thread", max_pending=2)
    server = start_server(engine, authenticator=authenticator, rate_limiter=limiter)
    yield server, engine, clock
    server.stop()
    engine.shutdown()


def _client(server, token):
    return ServiceClient(port=server.port, token=token)


class TestAuthOverHTTP:
    def test_valid_token_compiles(self, secured_service):
        server, engine, _ = secured_service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        result = _client(server, "alice-secret").compile(target)
        assert result["ok"] is True
        assert engine.metrics.summary()["requests"] == 1

    def test_missing_garbage_and_expired_tokens_are_401(self, secured_service):
        server, _, _ = secured_service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        for token in (None, "garbage", "carol-secret"):
            with pytest.raises(ServiceError) as info:
                _client(server, token).compile(target)
            assert info.value.status == 401
            assert "token" in info.value.body["error"]

    def test_401_carries_www_authenticate(self, secured_service):
        server, _, _ = secured_service
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            assert response.status == 401
            assert "Bearer" in response.getheader("WWW-Authenticate", "")
        finally:
            connection.close()

    def test_healthz_stays_unauthenticated(self, secured_service):
        server, _, _ = secured_service
        assert ServiceClient(port=server.port).health() == {"status": "ok"}

    def test_metrics_require_auth_and_report_token_mode(self, secured_service):
        server, _, _ = secured_service
        metrics = _client(server, "bob-secret").metrics()
        assert metrics["auth"] == "token"
        assert metrics["rate_limit"]["burst"] == 2.0


class TestRateLimitOverHTTP:
    def test_burst_then_429_then_refill(self, secured_service):
        server, _, clock = secured_service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        client = _client(server, "alice-secret")
        client.compile(target)
        client.compile(target)  # burst of 2 exhausted
        with pytest.raises(ServiceError) as info:
            client.compile(target)
        error = info.value
        assert error.status == 429
        assert error.body["reason"] == "rate-limited"
        assert error.retry_after is not None and error.retry_after >= 1
        clock.advance(1.0)  # 2 rps -> 2 tokens back
        assert client.compile(target)["ok"] is True

    def test_429_is_never_charged_to_other_identity(self, secured_service):
        server, _, _ = secured_service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        alice = _client(server, "alice-secret")
        alice.compile(target)
        alice.compile(target)
        with pytest.raises(ServiceError):
            alice.compile(target)
        # bob's bucket is untouched by alice's throttling.
        assert _client(server, "bob-secret").compile(target)["ok"] is True

    def test_batch_charges_one_token_per_target(self, secured_service):
        server, _, _ = secured_service
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        client = _client(server, "alice-secret")
        # burst 2, batch of 3: admitted on the full bucket (overdraft) ...
        first = client.compile_batch([target, target, target])
        assert [r["ok"] for r in first["results"]] == [True, True, True]
        # ... and the overdraft throttles what follows.
        with pytest.raises(ServiceError) as info:
            client.compile(target)
        assert info.value.status == 429
        assert info.value.body["reason"] == "rate-limited"


class TestQueueFullOverHTTP:
    def test_saturated_engine_returns_429_while_inflight_completes(
        self, monkeypatch
    ):
        """Acceptance: a saturated engine (max_pending=2, slow solves) sheds
        excess submits with 429/queue-full + Retry-After; admitted work
        completes once the solver unblocks, and /v1/metrics shows the shed.

        No rate limiter here: this test saturates the *queue*, and a token
        bucket in front would throttle the flood before it ever got there.
        """
        authenticator = TokenAuthenticator(
            [TokenRecord("alice", "alice-secret"), TokenRecord("bob", "bob-secret")]
        )
        engine = CompileEngine(workers=1, executor="thread", max_pending=2)
        server = start_server(engine, authenticator=authenticator)
        gate = threading.Event()
        real = engine_module.compile_pipeline

        def gated(target, cache=None):
            if not gate.wait(timeout=30):
                raise TimeoutError("gate never opened")
            return real(target, cache=cache)

        monkeypatch.setattr(engine_module, "compile_pipeline", gated)
        targets = [
            CompileTarget(build_chain(3), image_width=W + 2 * i, image_height=H)
            for i in range(4)
        ]
        outcomes = []

        def post(token, target):
            try:
                outcomes.append(ServiceClient(port=server.port, token=token, timeout=60).compile(target))
            except ServiceError as exc:
                outcomes.append(exc)

        threads = [
            threading.Thread(target=post, args=("alice-secret", target))
            for target in targets[:3]  # 1 in flight + 2 queued
        ]
        for thread in threads:
            thread.start()
        try:
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if engine.admission_stats()["queue_depth"] == 2:
                    break
                time.sleep(0.01)
            assert engine.admission_stats()["queue_depth"] == 2
            with pytest.raises(ServiceError) as info:
                _client(server, "bob-secret").compile(targets[3])
            error = info.value
            assert error.status == 429
            assert error.body["reason"] == "queue-full"
            assert error.retry_after is not None and error.retry_after >= 1
            metrics = _client(server, "bob-secret").metrics()
            assert metrics["rejected_total"] == 1
            assert metrics["queue_depth"] == 2
            gate.set()
            for thread in threads:
                thread.join(timeout=60)
            assert all(isinstance(o, dict) and o["ok"] for o in outcomes)
            assert _client(server, "bob-secret").metrics()["queue_depth"] == 0
        finally:
            gate.set()
            server.stop()
            engine.shutdown()


class TestServiceClientTypedErrors:
    def test_non_2xx_carries_status_and_body(self, service):
        client, _, server = service
        with pytest.raises(ServiceError) as info:
            ServiceClient(port=server.port)._request("GET", "/v1/nope")
        error = info.value
        assert error.status == 404
        assert "Unknown path" in error.body["error"]
        assert error.retry_after is None

    def test_transport_failures_are_typed_too(self, service):
        client, _, server = service
        port = server.port
        server.stop()  # connection refused from here on
        with pytest.raises(ServiceError) as info:
            ServiceClient(port=port, timeout=2).health()
        assert info.value.status is None
        assert info.value.body == {}
