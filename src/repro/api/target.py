"""The unified compile request object: :class:`CompileTarget`.

A :class:`CompileTarget` is one fully-specified design point — pipeline graph,
image resolution, on-chip memory structure, scheduler options, and the design
generator ("imagen" for the ILP optimizer, or a baseline name such as
"darkroom"/"soda"/"fixynn").  Every layer of the library consumes and produces
targets: :func:`repro.core.compile_pipeline` compiles one,
:meth:`repro.service.CompileEngine.submit` serves one (sync or async),
:func:`repro.baselines.generate_baseline` compiles a baseline-flavoured one,
and the DSE sweep enumerates :meth:`with_options` derivations of one.

Targets are immutable: every ``with_*`` method returns a new target, so a base
target can be shared and derived freely (the per-stage DSE sweep derives all
``2^k`` configurations from one base).  Construction resolves the library
defaults — dual-port ASIC SRAM, default :class:`SchedulerOptions` — and takes
a private copy of the options, so the caller's objects are never mutated and
never leak mutations into the target.

The ``label`` is carried for tracing/metrics only; it does not participate in
the content fingerprint, so differently-labelled but otherwise identical
targets share cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dc_field
from dataclasses import replace as dc_replace
from typing import Any

from repro.core.scheduler import SchedulerOptions
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec, asic_dual_port

#: Generator name of the ImaGen ILP optimizer (the library's own compiler).
IMAGEN_GENERATOR = "imagen"


@dataclass(frozen=True, eq=False)
class CompileTarget:
    """One immutable design point: what to compile, at what size, onto what.

    ``==`` and ``hash`` are object identity (targets hold a DAG and an
    options dict, neither of which compares by value); the *content* identity
    of a target is its :attr:`fingerprint` — two targets describing the same
    design point always share one, however they were constructed.

    The target snapshots the pipeline by reference: treat a DAG as frozen
    once it is wrapped in a target.  Mutating it afterwards (``add_stage`` /
    ``add_edge``) is unsupported — the memoized fingerprint, and any cache
    entries keyed on it, would describe the pre-mutation pipeline.  Build a
    new DAG (or a new target from it) instead.

    Attributes
    ----------
    dag:
        The pipeline, from :func:`repro.dsl.parse_pipeline`,
        :class:`repro.dsl.PipelineBuilder`, or
        :func:`repro.algorithms.build_algorithm`.
    image_width, image_height:
        Input image resolution (e.g. 480x320 or 1920x1080).
    memory_spec:
        The on-chip memory structure available; ``None`` resolves to dual-port
        ASIC SRAM macros (:func:`repro.memory.spec.asic_dual_port`).
    options:
        Scheduler knobs; ``None`` resolves to default
        :class:`SchedulerOptions`.  The target stores a private copy.
    generator:
        ``"imagen"`` (default) runs the ILP optimizer; a baseline name
        (``"darkroom"``, ``"soda"``, ``"fixynn"``) runs that comparison
        generator instead.  Baselines ignore ``options``.
    label:
        Free-form tag used in traces and error messages; not fingerprinted.
    metadata:
        Free-form caller annotations carried alongside the target (e.g. sweep
        ids for correlating batch results); not fingerprinted.
    """

    dag: PipelineDAG
    image_width: int
    image_height: int
    memory_spec: MemorySpec | None = None
    options: SchedulerOptions | None = None
    generator: str = IMAGEN_GENERATOR
    label: str = ""
    metadata: dict[str, Any] = dc_field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.generator, str) or not self.generator:
            raise TypeError(f"generator must be a non-empty string, got {self.generator!r}")
        # Resolve defaults and isolate mutable state on construction; frozen
        # dataclasses require object.__setattr__ for this one-time fixup.
        if self.memory_spec is None:
            object.__setattr__(self, "memory_spec", asic_dual_port())
        options = self.options or SchedulerOptions()
        options = dc_replace(
            options, per_stage_coalescing=dict(options.per_stage_coalescing)
        )
        object.__setattr__(self, "options", options)
        object.__setattr__(self, "metadata", dict(self.metadata))

    @classmethod
    def from_kwargs(
        cls,
        dag: PipelineDAG,
        *,
        image_width: int,
        image_height: int,
        memory_spec: MemorySpec | None = None,
        options: SchedulerOptions | None = None,
        coalescing: bool = False,
        generator: str = IMAGEN_GENERATOR,
        label: str = "",
        metadata: dict[str, Any] | None = None,
    ) -> "CompileTarget":
        """Build a target from the historical loose-kwarg vocabulary.

        The single conversion point behind every deprecated entry point
        (``compile_pipeline(dag, ...)``, ``engine.compile(dag, ...)``,
        ``CompileRequest.to_target``): the ``coalescing`` convenience flag is
        folded onto a copy of the options.
        """
        options = options or SchedulerOptions()
        if coalescing and not options.coalescing:
            options = dc_replace(options, coalescing=True)
        return cls(
            dag=dag,
            image_width=image_width,
            image_height=image_height,
            memory_spec=memory_spec,
            options=options,
            generator=generator,
            label=label,
            metadata=metadata or {},
        )

    # ------------------------------------------------------------ derivations
    def with_options(self, **changes: Any) -> "CompileTarget":
        """A new target with the given :class:`SchedulerOptions` fields replaced.

        ``target.with_options(coalescing=True)`` is the canonical way to ask
        for the +LC design; the DSE sweep derives every per-stage
        configuration this way.  Unknown field names raise ``TypeError``.
        """
        return dc_replace(self, options=dc_replace(self.options, **changes))

    def with_resolution(self, image_width: int, image_height: int) -> "CompileTarget":
        """The same design point at a different image resolution."""
        return dc_replace(self, image_width=image_width, image_height=image_height)

    def with_memory_spec(self, memory_spec: MemorySpec) -> "CompileTarget":
        """The same design point on a different on-chip memory structure."""
        return dc_replace(self, memory_spec=memory_spec)

    def with_generator(self, generator: str) -> "CompileTarget":
        """The same design point produced by a different generator."""
        return dc_replace(self, generator=generator)

    def with_label(self, label: str) -> "CompileTarget":
        """The same target, relabelled for traces (fingerprint unchanged)."""
        return dc_replace(self, label=label)

    # --------------------------------------------------------------- transport
    def to_wire(self) -> dict:
        """JSON-serializable wire form of this target.

        Delegates to :func:`repro.service.wire.target_to_wire`; the result
        round-trips through :meth:`from_wire` with the same content
        fingerprint, which is what lets remote HTTP clients share cache
        entries with in-process callers.
        """
        from repro.service.wire import target_to_wire

        return target_to_wire(self)

    @classmethod
    def from_wire(cls, payload: dict) -> "CompileTarget":
        """Rebuild a target from :meth:`to_wire` output.

        Raises :class:`repro.service.wire.WireFormatError` on malformed
        payloads.
        """
        from repro.service.wire import target_from_wire

        return target_from_wire(payload)

    # ------------------------------------------------------------- inspection
    @property
    def is_imagen(self) -> bool:
        return self.generator == IMAGEN_GENERATOR

    @property
    def resolution(self) -> tuple[int, int]:
        return (self.image_width, self.image_height)

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of this target (see :mod:`repro.api.fingerprint`).

        Computed once per instance (immutability makes that safe): the cache,
        the engine's dedup table and the compile metadata all key on it, so
        memoizing halves the hashing work of a large batch.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            from repro.api.fingerprint import compile_fingerprint

            cached = compile_fingerprint(self)
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    @property
    def display_label(self) -> str:
        return self.label or self.dag.name

    def describe(self) -> str:
        return (
            f"CompileTarget({self.display_label}: {len(self.dag)} stages @ "
            f"{self.image_width}x{self.image_height}, {self.memory_spec.name}, "
            f"generator={self.generator})"
        )
