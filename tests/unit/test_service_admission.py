"""Unit tests for the admission-control layer.

Covers the ISSUE's edge cases: expired/garbage tokens, burst-then-refill
timing, queue-full shed vs block, autoscaler ceilings and idle retirement,
and round-robin fairness under two competing identities.  Timing-sensitive
pieces (rate buckets, idle expiry) use injected fake clocks; saturation tests
gate the solver on events so nothing here depends on real solve latency.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import CancelledError, Future

import pytest

import repro.service.engine as engine_module
from repro.api import CompileTarget
from repro.service import CompileEngine
from repro.service.admission import (
    MAX_PENDING_ENV_VAR,
    AdmissionQueue,
    QueueFullError,
    RateLimiter,
    TokenAuthenticator,
    parse_rate_limit,
    parse_token_line,
    validate_max_pending,
)
from repro.service.executor import AutoscalingExecutor, ThreadExecutor
from repro.service.jobs import SOURCE_REJECTED

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain

W, H = TEST_WIDTH, TEST_HEIGHT


def _target(index: int = 0) -> CompileTarget:
    # Distinct widths keep fingerprints cold across one test.
    return CompileTarget(build_chain(3), image_width=W + 2 * index, image_height=H)


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Token authentication
# ---------------------------------------------------------------------------
class TestTokenAuthenticator:
    def test_token_file_parsing(self, tmp_path):
        path = tmp_path / "tokens.txt"
        path.write_text(
            "# comment line\n"
            "\n"
            "bare-secret\n"
            "alice:alice-secret\n"
            "carol:carol-secret:expires=2000\n"
        )
        auth = TokenAuthenticator.from_file(path, clock=FakeClock(1000.0))
        assert len(auth) == 3
        assert auth.authenticate_token("alice-secret") == "alice"
        assert auth.authenticate_token("carol-secret") == "carol"
        # Bare tokens get a stable derived identity.
        derived = auth.authenticate_token("bare-secret")
        assert derived and derived.startswith("token-")

    def test_garbage_and_wrong_tokens_rejected(self, tmp_path):
        path = tmp_path / "tokens.txt"
        path.write_text("alice:alice-secret\n")
        auth = TokenAuthenticator.from_file(path)
        assert auth.authenticate_token("garbage") is None
        assert auth.authenticate_token("") is None
        assert auth.authenticate_token("alice-secret-") is None
        assert auth.authenticate_token("alice-secre") is None

    def test_expired_token_rejected_exactly_like_garbage(self, tmp_path):
        clock = FakeClock(1000.0)
        path = tmp_path / "tokens.txt"
        path.write_text("carol:carol-secret:expires=1500\n")
        auth = TokenAuthenticator.from_file(path, clock=clock)
        assert auth.authenticate_token("carol-secret") == "carol"
        clock.advance(500.0)  # now == expiry: expired
        assert auth.authenticate_token("carol-secret") is None

    def test_header_parsing_accepts_only_bearer(self, tmp_path):
        path = tmp_path / "tokens.txt"
        path.write_text("alice:alice-secret\n")
        auth = TokenAuthenticator.from_file(path)
        assert auth.authenticate_header("Bearer alice-secret") == "alice"
        assert auth.authenticate_header("bearer alice-secret") == "alice"
        assert auth.authenticate_header(None) is None
        assert auth.authenticate_header("") is None
        assert auth.authenticate_header("Basic alice-secret") is None
        assert auth.authenticate_header("alice-secret") is None
        assert auth.authenticate_header("Bearer ") is None

    def test_malformed_token_lines_fail_loudly(self):
        with pytest.raises(ValueError, match="expiry"):
            parse_token_line("a:b:expires=soon", lineno=3)
        with pytest.raises(ValueError, match="line 4"):
            parse_token_line("a:b:c:d", lineno=4)
        with pytest.raises(ValueError, match="empty token"):
            parse_token_line("alice:", lineno=5)

    def test_empty_token_file_rejected(self, tmp_path):
        path = tmp_path / "tokens.txt"
        path.write_text("# only comments\n")
        with pytest.raises(ValueError, match="no tokens"):
            TokenAuthenticator.from_file(path)


# ---------------------------------------------------------------------------
# Rate limiting
# ---------------------------------------------------------------------------
class TestRateLimiter:
    def test_burst_then_refill_timing(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, burst=3.0, clock=clock)
        assert all(limiter.admit("alice").allowed for _ in range(3))
        denied = limiter.admit("alice")
        assert not denied.allowed
        assert denied.retry_after == pytest.approx(0.5)  # 1 token at 2 rps
        clock.advance(0.25)  # half a token: still short
        assert not limiter.admit("alice").allowed
        clock.advance(0.3)
        assert limiter.admit("alice").allowed
        assert limiter.throttled_total == 2

    def test_bucket_caps_at_burst(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=10.0, burst=2.0, clock=clock)
        clock.advance(3600.0)  # an hour idle must not bank 36000 tokens
        assert limiter.admit("alice").allowed
        assert limiter.admit("alice").allowed
        assert not limiter.admit("alice").allowed

    def test_identities_have_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.admit("alice").allowed
        assert not limiter.admit("alice").allowed
        assert limiter.admit("bob").allowed  # bob's bucket untouched

    def test_batch_cost_charges_per_target(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=10.0, clock=clock)
        assert limiter.admit("alice", cost=8).allowed
        denied = limiter.admit("alice", cost=4)
        assert not denied.allowed
        assert denied.retry_after == pytest.approx(2.0)  # needs 2 more tokens

    def test_oversized_batch_admits_on_full_bucket_with_overdraft(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=4.0, clock=clock)
        assert limiter.admit("alice", cost=10).allowed  # full bucket pays
        # The overdraft (-6) delays everything after it.
        denied = limiter.admit("alice")
        assert not denied.allowed
        assert denied.retry_after == pytest.approx(7.0)  # -6 -> 1 at 1 rps

    def test_parse_rate_limit(self):
        assert parse_rate_limit("10:20") == (10.0, 20.0)
        assert parse_rate_limit("0.5:2") == (0.5, 2.0)
        assert parse_rate_limit("4") == (4.0, 4.0)
        for bad in ("", "a:b", "1:2:3", "-1:2", "0:5"):
            with pytest.raises(ValueError):
                parse_rate_limit(bad)


# ---------------------------------------------------------------------------
# The bounded fair queue (direct)
# ---------------------------------------------------------------------------
def _manual_dispatch(record: list, name: str):
    """A dispatch closure that records its order and hands back a settleable
    future (the test plays the role of the executor)."""
    future: Future = Future()
    future.set_running_or_notify_cancel()

    def dispatch():
        record.append((name, future))
        return future

    return dispatch


class TestAdmissionQueue:
    def test_shed_raises_queue_full_with_retry_after(self):
        queue = AdmissionQueue(1, max_pending=1, policy="shed", retry_after=lambda: 2.5)
        record: list = []
        queue.submit(_manual_dispatch(record, "running"))  # occupies the slot
        queue.submit(_manual_dispatch(record, "waiting"))  # fills the queue
        with pytest.raises(QueueFullError) as info:
            queue.submit(_manual_dispatch(record, "excess"))
        assert info.value.retry_after == pytest.approx(2.5)
        assert queue.stats()["rejected_total"] == 1
        assert queue.stats()["queue_depth"] == 1

    def test_block_policy_waits_for_space(self):
        queue = AdmissionQueue(1, max_pending=1, policy="block")
        record: list = []
        queue.submit(_manual_dispatch(record, "running"))
        queue.submit(_manual_dispatch(record, "waiting"))
        unblocked = threading.Event()

        def blocked_submit():
            queue.submit(_manual_dispatch(record, "blocked"))
            unblocked.set()

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        assert not unblocked.wait(0.3)  # genuinely blocked while full
        record[0][1].set_result(None)  # finish the running job -> space frees
        assert unblocked.wait(5.0)
        thread.join()
        assert queue.stats()["blocked_total"] == 1
        # Drain the rest so no dangling callbacks fire mid-teardown.
        while record:
            name, future = record.pop(0)
            if not future.done():
                future.set_result(None)

    def test_round_robin_fairness_between_two_identities(self):
        """A flooding client's backlog drains interleaved with the other
        client's, not ahead of it."""
        queue = AdmissionQueue(1, max_pending=10, policy="shed")
        record: list = []
        queue.submit(_manual_dispatch(record, "gate"), client="alice")
        # alice floods 4 more; bob submits 2 afterwards.
        for index in range(4):
            queue.submit(_manual_dispatch(record, f"alice-{index}"), client="alice")
        for index in range(2):
            queue.submit(_manual_dispatch(record, f"bob-{index}"), client="bob")
        # Drain: settle each dispatched job, which pumps the next one.
        position = 0
        while position < len(record):
            record[position][1].set_result(None)
            position += 1
        order = [name for name, _ in record[1:]]
        assert order == ["alice-0", "bob-0", "alice-1", "bob-1", "alice-2", "alice-3"]

    def test_within_one_identity_fifo_order_is_preserved(self):
        queue = AdmissionQueue(1, max_pending=10, policy="shed")
        record: list = []
        for index in range(4):
            queue.submit(_manual_dispatch(record, f"job-{index}"), client="alice")
        position = 0
        while position < len(record):
            record[position][1].set_result(None)
            position += 1
        assert [name for name, _ in record] == [f"job-{index}" for index in range(4)]

    def test_failed_dispatch_frees_the_slot(self):
        queue = AdmissionQueue(1, max_pending=4, policy="shed")
        record: list = []

        def broken_dispatch():
            raise RuntimeError("executor exploded")

        queue.submit(broken_dispatch)
        # The slot must be free again: the next job dispatches immediately.
        queue.submit(_manual_dispatch(record, "after"))
        assert [name for name, _ in record] == ["after"]
        assert queue.stats()["inflight"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="policy"):
            AdmissionQueue(1, max_pending=1, policy="drop")
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionQueue(1, max_pending=0)
        with pytest.raises(ValueError, match="REPRO_MAX_PENDING"):
            validate_max_pending("lots", source=MAX_PENDING_ENV_VAR)


# ---------------------------------------------------------------------------
# Engine integration: saturation, shed vs block, fairness counters
# ---------------------------------------------------------------------------
@pytest.fixture
def slow_solver(monkeypatch):
    """Gate every solve on an event so tests control engine saturation."""
    gate = threading.Event()
    real = engine_module.compile_pipeline

    def gated(target, cache=None):
        if not gate.wait(timeout=30):
            raise TimeoutError("slow_solver gate never opened")
        return real(target, cache=cache)

    monkeypatch.setattr(engine_module, "compile_pipeline", gated)
    return gate


def _submit_in_thread(engine, target, client, outcomes):
    def run():
        try:
            outcomes.append(engine.submit(target, client=client))
        except QueueFullError as exc:
            outcomes.append(exc)

    thread = threading.Thread(target=run)
    thread.start()
    return thread


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestEngineAdmission:
    def test_saturated_engine_sheds_excess_while_inflight_completes(self, slow_solver):
        """Acceptance: max_pending=4 + slow solves -> excess submits shed,
        admitted work still completes once the solver unblocks."""
        engine = CompileEngine(workers=1, executor="thread", max_pending=4)
        outcomes: list = []
        try:
            threads = [
                _submit_in_thread(engine, _target(i), "flood", outcomes)
                for i in range(5)  # 1 dispatched + 4 queued
            ]
            assert _wait_for(lambda: engine.admission_stats()["queue_depth"] == 4)
            with pytest.raises(QueueFullError):
                engine.submit(_target(5), client="flood")
            stats = engine.admission_stats()
            assert stats["rejected_total"] == 1
            assert stats["queue_depth"] == 4
            slow_solver.set()
            for thread in threads:
                thread.join(timeout=30)
            assert len(outcomes) == 5
            assert all(getattr(result, "ok", False) for result in outcomes)
            assert engine.admission_stats()["queue_depth"] == 0
        finally:
            slow_solver.set()
            engine.shutdown()

    def test_block_policy_backpressures_instead_of_shedding(self, slow_solver):
        engine = CompileEngine(workers=1, executor="thread", max_pending=1, overflow="block")
        outcomes: list = []
        try:
            first = _submit_in_thread(engine, _target(0), "a", outcomes)
            assert _wait_for(lambda: engine.admission_stats()["inflight"] == 1)
            second = _submit_in_thread(engine, _target(1), "a", outcomes)
            assert _wait_for(lambda: engine.admission_stats()["queue_depth"] == 1)
            third = _submit_in_thread(engine, _target(2), "a", outcomes)
            assert _wait_for(lambda: engine.admission_stats()["blocked_total"] == 1)
            assert len(outcomes) == 0  # nobody shed, nobody done
            slow_solver.set()
            for thread in (first, second, third):
                thread.join(timeout=30)
            assert all(getattr(result, "ok", False) for result in outcomes)
            assert engine.admission_stats()["rejected_total"] == 0
        finally:
            slow_solver.set()
            engine.shutdown()

    def test_batch_degrades_shed_items_to_rejected_results(self, slow_solver):
        engine = CompileEngine(workers=1, executor="thread", max_pending=2)
        blocker_results: list = []
        try:
            blocker = _submit_in_thread(engine, _target(0), "other", blocker_results)
            assert _wait_for(lambda: engine.admission_stats()["inflight"] == 1)
            slow_solver.set()  # queued batch items may run as slots free
            batch = engine.submit_batch([_target(i) for i in range(1, 6)], client="bulk")
        finally:
            slow_solver.set()
            blocker.join(timeout=30)
            engine.shutdown()
        rejected = [r for r in batch.results if r.source == SOURCE_REJECTED]
        completed = [r for r in batch.results if r.ok]
        assert rejected and completed  # some shed, batch itself survived
        assert all(not r.ok and "queue is full" in r.error for r in rejected)
        assert engine.admission_stats()["rejected_total"] == len(rejected)

    def test_cache_answerable_submits_bypass_admission(self, slow_solver):
        slow_solver.set()
        engine = CompileEngine(workers=1, executor="thread", max_pending=1)
        try:
            target = _target(0)
            assert engine.submit(target, client="a").source == "solver"
            admitted = engine.admission_stats()["admitted_total"]
            assert engine.submit(target, client="a").source == "memory"
            # The warm repeat never touched the queue.
            assert engine.admission_stats()["admitted_total"] == admitted
        finally:
            engine.shutdown()

    def test_env_var_enables_admission(self, monkeypatch):
        monkeypatch.setenv(MAX_PENDING_ENV_VAR, "7")
        engine = CompileEngine(workers=1, executor="inline")
        try:
            assert engine.max_pending == 7
            assert engine.admission_stats()["max_pending"] == 7
        finally:
            engine.shutdown()
        monkeypatch.setenv(MAX_PENDING_ENV_VAR, "zero")
        with pytest.raises(ValueError, match=MAX_PENDING_ENV_VAR):
            CompileEngine(workers=1, executor="inline")

    def test_invalid_admission_settings_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            CompileEngine(workers=1, max_pending=0)
        with pytest.raises(ValueError, match="overflow|policy"):
            CompileEngine(workers=1, max_pending=4, overflow="drop")
        with pytest.raises(ValueError, match="overflow"):
            CompileEngine(workers=1, overflow="drop")

    def test_width_follows_a_ready_made_backend_instance(self, slow_solver):
        """A passed-in backend's own fleet sizes the dispatch width — an
        8-worker pool behind a 1-worker engine default must still see
        3 concurrent dispatches, not 1."""
        engine = CompileEngine(
            workers=1, executor=ThreadExecutor(3), max_pending=4
        )
        outcomes: list = []
        try:
            threads = [
                _submit_in_thread(engine, _target(i), "a", outcomes) for i in range(3)
            ]
            assert _wait_for(lambda: engine.admission_stats()["inflight"] == 3)
            assert engine.admission_stats()["queue_depth"] == 0
            slow_solver.set()
            for thread in threads:
                thread.join(timeout=30)
            assert all(getattr(result, "ok", False) for result in outcomes)
        finally:
            slow_solver.set()
            engine.shutdown()

    def test_shutdown_cancel_pending_cancels_admission_queued_jobs(self, slow_solver):
        """Jobs still waiting in the admission queue must resolve with
        CancelledError on shutdown(cancel_pending=True), not get pumped into
        a transparently recreated pool afterwards."""
        engine = CompileEngine(workers=1, executor="thread", max_pending=2)
        outcomes: list = []

        def run(target):
            try:
                outcomes.append(engine.submit(target, client="a"))
            except CancelledError:
                outcomes.append("cancelled")

        threads = [
            threading.Thread(target=run, args=(_target(i),)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        try:
            assert _wait_for(lambda: engine.admission_stats()["queue_depth"] == 2)
            engine.shutdown(wait=False, cancel_pending=True)
            assert _wait_for(
                lambda: outcomes.count("cancelled") == 2
            ), f"queued submits not cancelled: {outcomes}"
            assert engine.admission_stats()["queue_depth"] == 0
            slow_solver.set()  # let the already-dispatched job finish
            for thread in threads:
                thread.join(timeout=30)
            assert outcomes.count("cancelled") == 2
        finally:
            slow_solver.set()
            engine.shutdown()

    def test_prewarm_speculation_bypasses_the_admission_queue(self):
        """Speculative jobs are engine work: they must not consume
        max_pending slots, bump admitted/rejected counters, or stall the
        triggering request under the block policy."""
        engine = CompileEngine(
            workers=1,
            executor="inline",
            max_pending=1,
            overflow="block",
            prewarm=True,
            prewarm_resolutions=((40, 30), (48, 36)),
        )
        try:
            result = engine.submit(_target(0), client="a")
            assert result.ok
            assert engine.wait_prewarm(timeout=30)
            stats = engine.admission_stats()
            assert stats["admitted_total"] == 1  # just the client's own job
            assert stats["rejected_total"] == 0
            assert stats["blocked_total"] == 0
        finally:
            engine.shutdown()

    def test_submit_async_block_policy_keeps_the_event_loop_alive(self, slow_solver):
        """With overflow='block' and a full queue, awaiting submit_async must
        not freeze the loop: another coroutine has to keep running (it is
        what releases the solver here)."""
        engine = CompileEngine(workers=1, executor="thread", max_pending=1, overflow="block")
        filler_results: list = []

        async def scenario():
            loop_alive = asyncio.Event()

            async def canary():
                await asyncio.sleep(0.3)
                loop_alive.set()
                slow_solver.set()  # only a live loop can unblock the queue

            result, _ = await asyncio.gather(
                engine.submit_async(_target(2), client="async"), canary()
            )
            return loop_alive.is_set(), result

        try:
            filler = [
                _submit_in_thread(engine, _target(i), "filler", filler_results)
                for i in range(2)  # 1 dispatched + 1 queued = full
            ]
            assert _wait_for(lambda: engine.admission_stats()["queue_depth"] == 1)
            alive, result = asyncio.run(asyncio.wait_for(scenario(), timeout=30))
            assert alive and result.ok
            for thread in filler:
                thread.join(timeout=30)
        finally:
            slow_solver.set()
            engine.shutdown()


# ---------------------------------------------------------------------------
# Autoscaling executor
# ---------------------------------------------------------------------------
def _blocking_job(gate: threading.Event):
    def run_local(target, fingerprint):
        gate.wait(30)
        return fingerprint

    return run_local


class TestAutoscalingExecutor:
    def test_fleet_grows_with_demand_but_never_exceeds_max(self):
        gate = threading.Event()
        backend = AutoscalingExecutor(2, mode="thread")
        try:
            futures = [
                backend.submit(_blocking_job(gate), None, f"job-{i}") for i in range(5)
            ]
            assert _wait_for(lambda: backend.stats()["busy_workers"] == 2)
            stats = backend.stats()
            assert stats["workers"] == 2  # ceiling respected
            assert stats["max_workers"] == 2
            assert stats["executor_queue_depth"] == 3
            assert stats["scale_ups"] == 2
            gate.set()
            assert [f.result(timeout=30) for f in futures] == [
                f"job-{i}" for i in range(5)
            ]
            assert backend.stats()["workers"] <= 2
        finally:
            gate.set()
            backend.shutdown()

    def test_idle_workers_retire_after_idle_seconds(self):
        clock = FakeClock()
        gate = threading.Event()
        gate.set()
        backend = AutoscalingExecutor(3, mode="thread", idle_seconds=10.0, clock=clock)
        try:
            block = threading.Event()
            futures = [backend.submit(_blocking_job(block), None, str(i)) for i in range(3)]
            assert _wait_for(lambda: backend.stats()["workers"] == 3)
            block.set()
            for future in futures:
                future.result(timeout=30)
            assert _wait_for(lambda: backend.stats()["busy_workers"] == 0)
            assert backend.reap() == 0  # not idle long enough yet
            clock.advance(10.5)
            assert backend.reap() == 3
            stats = backend.stats()
            assert stats["workers"] == 0
            assert stats["scale_downs"] == 3
            assert any(e["action"] == "shrink" for e in stats["scaling_events"])
        finally:
            backend.shutdown()

    def test_steady_trickle_reuses_the_hot_worker_and_sheds_the_cold_one(self):
        """LIFO reuse regression: a light trickle must keep hitting the same
        (most recently idled) worker so the other one ages out — FIFO reuse
        would refresh both idle stamps forever and the fleet would never
        scale down."""
        clock = FakeClock()
        backend = AutoscalingExecutor(2, mode="thread", idle_seconds=10.0, clock=clock)
        try:
            burst = threading.Event()
            futures = [backend.submit(_blocking_job(burst), None, str(i)) for i in range(2)]
            assert _wait_for(lambda: backend.stats()["workers"] == 2)
            burst.set()
            for future in futures:
                future.result(timeout=30)
            assert _wait_for(lambda: backend.stats()["busy_workers"] == 0)
            done = threading.Event()
            done.set()
            # One quick job every 3 fake seconds: 5 * 3 = 15s > idle_seconds,
            # but each job re-idles *some* worker within 3s of the last.
            for _ in range(5):
                clock.advance(3.0)
                backend.submit(_blocking_job(done), None, "tick").result(timeout=30)
                assert _wait_for(lambda: backend.stats()["busy_workers"] == 0)
            clock.advance(3.0)
            backend.reap()
            stats = backend.stats()
            assert stats["workers"] == 1, (
                f"cold worker never retired under a steady trickle: {stats}"
            )
            assert stats["scale_downs"] >= 1
        finally:
            backend.shutdown()

    def test_min_workers_floor_survives_reaping(self):
        clock = FakeClock()
        backend = AutoscalingExecutor(3, mode="thread", min_workers=1, idle_seconds=5.0, clock=clock)
        try:
            block = threading.Event()
            futures = [backend.submit(_blocking_job(block), None, str(i)) for i in range(3)]
            assert _wait_for(lambda: backend.stats()["workers"] == 3)
            block.set()
            for future in futures:
                future.result(timeout=30)
            assert _wait_for(lambda: backend.stats()["busy_workers"] == 0)
            clock.advance(60.0)
            backend.reap()
            assert backend.stats()["workers"] == 1
        finally:
            backend.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            AutoscalingExecutor(2, mode="inline")
        with pytest.raises(ValueError, match="min_workers"):
            AutoscalingExecutor(2, mode="thread", min_workers=3)
        with pytest.raises(ValueError, match="idle_seconds"):
            AutoscalingExecutor(2, mode="thread", idle_seconds=0)

    def test_engine_compiles_through_thread_auto(self):
        engine = CompileEngine(workers=2, executor="thread:auto")
        try:
            assert engine.executor_name == "thread:auto"
            batch = engine.submit_batch([_target(i) for i in range(4)])
            assert all(result.ok for result in batch.results)
            stats = engine.executor_stats()
            assert 1 <= stats["workers"] <= 2
            assert stats["scale_ups"] >= 1
            # Warm repeat: answered from cache, no extra scaling.
            assert engine.submit(_target(0)).source == "memory"
        finally:
            engine.shutdown()

    def test_admission_and_autoscaler_compose(self, slow_solver):
        """max_pending bounds the wait queue while the auto fleet absorbs
        width-many dispatches."""
        engine = CompileEngine(workers=2, executor="thread:auto", max_pending=2)
        outcomes: list = []
        try:
            threads = [
                _submit_in_thread(engine, _target(i), "a", outcomes) for i in range(4)
            ]
            assert _wait_for(
                lambda: engine.admission_stats()["queue_depth"] == 2
                and engine.executor_stats()["workers"] == 2
            )
            with pytest.raises(QueueFullError):
                engine.submit(_target(9), client="a")
            slow_solver.set()
            for thread in threads:
                thread.join(timeout=30)
            assert all(getattr(result, "ok", False) for result in outcomes)
            assert engine.executor_stats()["workers"] <= 2
        finally:
            slow_solver.set()
            engine.shutdown()
