"""Darkroom-style baseline: algorithm linearization + dual-port line buffers.

Darkroom [Hegarty et al. 2014] targets single-consumer pipelines.  When a
producer has several consumers, the pipeline is *linearized* (paper Sec. 3.1,
Fig. 3): one consumer keeps reading the producer directly, and every other
consumer is fed through a dummy relay stage that reads the producer with
exactly the same pattern as the retained consumer (so the two reads coalesce
into one) and simply forwards the data.  Each dummy stage carries its own
line buffer, which is where Darkroom's extra memory comes from.

After linearization each line buffer serves one write plus one (effective)
read per cycle, so a data-dependency-only ASAP schedule is legal on dual-port
SRAM and no ILP is needed.
"""

from __future__ import annotations

from repro.baselines.base import BaselineGenerator
from repro.core import access
from repro.core.schedule import PipelineSchedule
from repro.dsl.ast import StageRef
from repro.errors import BaselineError
from repro.ir.dag import PipelineDAG, Stage
from repro.ir.stencil import StencilWindow
from repro.ir.traversal import topological_order
from repro.memory.allocator import (
    allocate_line_buffer,
    allocate_register_buffer,
    dff_realization_threshold,
)
from repro.memory.spec import MemorySpec, asic_dual_port


def linearize_dag(dag: PipelineDAG) -> PipelineDAG:
    """Rewrite a multi-consumer DAG into an (effectively) single-consumer one.

    For every producer with more than one consumer, the consumer appearing
    first in topological order keeps its direct edge; each remaining consumer
    ``c`` is rerouted through a fresh dummy stage that (a) reads the producer
    with the retained consumer's stencil window and (b) is read by ``c`` with
    ``c``'s original window.  Dummy stages forward the producer's pixel
    unchanged (their expression is an identity reference), so functional
    semantics are preserved.
    """
    linearized = PipelineDAG(f"{dag.name}-linearized")
    for stage in dag.stages():
        linearized.add_stage(
            Stage(
                name=stage.name,
                is_input=stage.is_input,
                is_output=stage.is_output,
                expression=stage.expression,
                metadata=dict(stage.metadata),
            )
        )

    topo_position = {name: i for i, name in enumerate(topological_order(dag))}
    dummy_counter = 0
    for producer in dag.stage_names():
        edges = sorted(dag.out_edges(producer), key=lambda e: topo_position[e.consumer])
        if len(edges) <= 1:
            for edge in edges:
                linearized.add_edge(edge.producer, edge.consumer, edge.window)
            continue
        retained = edges[0]
        linearized.add_edge(retained.producer, retained.consumer, retained.window)
        for edge in edges[1:]:
            dummy_counter += 1
            dummy_name = f"{producer}_relay{dummy_counter}"
            linearized.add_stage(
                Stage(
                    name=dummy_name,
                    expression=StageRef(producer, 0, 0),
                    metadata={"dummy": True, "relay_of": producer},
                )
            )
            # The dummy mirrors the retained consumer's read pattern...
            linearized.add_edge(producer, dummy_name, retained.window)
            # ...and the displaced consumer now reads the relay instead.
            linearized.add_edge(dummy_name, edge.consumer, edge.window)
    return linearized.validated()


class DarkroomGenerator(BaselineGenerator):
    """Generate a Darkroom-style accelerator design."""

    name = "darkroom"

    def generate(
        self,
        dag: PipelineDAG,
        image_width: int,
        image_height: int,
        memory_spec: MemorySpec | None = None,
    ) -> PipelineSchedule:
        memory_spec = memory_spec or asic_dual_port()
        if memory_spec.ports < 2:
            raise BaselineError(
                "Darkroom assumes dual-port SRAM line buffers; "
                f"the supplied spec has {memory_spec.ports} port(s)"
            )
        linearized = linearize_dag(dag)
        starts = self.asap_schedule(linearized, image_width)

        line_buffers = {}
        for producer in linearized.stage_names():
            consumers = linearized.consumers_of(producer)
            if not consumers:
                continue
            max_delay = max(starts[c] - starts[producer] for c in consumers)
            reader_heights = {
                e.consumer: e.window.height for e in linearized.out_edges(producer)
            }
            if max_delay <= dff_realization_threshold(image_width):
                line_buffers[producer] = allocate_register_buffer(
                    producer,
                    image_width,
                    max_delay,
                    memory_spec,
                    reader_heights=reader_heights,
                )
                continue
            lines = access.required_line_slots(max_delay, image_width)
            line_buffers[producer] = allocate_line_buffer(
                producer,
                image_width,
                lines,
                memory_spec,
                coalesce_factor=1,
                reader_heights=reader_heights,
            )

        dummy_stages = [
            s.name for s in linearized.stages() if s.metadata.get("dummy", False)
        ]
        return PipelineSchedule(
            dag=linearized,
            image_width=image_width,
            image_height=image_height,
            memory_spec=memory_spec,
            start_cycles=starts,
            line_buffers=line_buffers,
            generator="darkroom",
            coalesce_factors={name: 1 for name in linearized.stage_names()},
            solver_stats={"dummy_stages": dummy_stages, "strategy": "linearize+asap"},
        )
