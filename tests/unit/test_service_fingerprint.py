"""Unit tests for content-addressed compile fingerprints."""

from repro.core.scheduler import SchedulerOptions
from repro.dsl.builder import PipelineBuilder, window_sum
from repro.ir.dag import PipelineDAG, Stage
from repro.ir.stencil import StencilWindow
from repro.memory.spec import asic_dual_port, asic_single_port
from repro.service.fingerprint import (
    compile_fingerprint,
    dag_fingerprint,
    normalize_options,
)

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


def _fp(dag, *, width=W, height=H, spec=None, options=None):
    return compile_fingerprint(
        dag, width, height, spec or asic_dual_port(), options or SchedulerOptions()
    )


class TestStability:
    def test_identical_rebuilds_share_fingerprint(self):
        assert _fp(build_paper_example()) == _fp(build_paper_example())

    def test_stage_insertion_order_is_irrelevant(self):
        window = StencilWindow.from_extent(3, 3)
        forward = PipelineDAG("p")
        forward.add_stage(Stage("K0", is_input=True))
        forward.add_stage(Stage("K1", is_output=True))
        forward.add_edge("K0", "K1", window)
        backward = PipelineDAG("p")
        backward.add_stage(Stage("K1", is_output=True))
        backward.add_stage(Stage("K0", is_input=True))
        backward.add_edge("K0", "K1", window)
        assert dag_fingerprint(forward) == dag_fingerprint(backward)

    def test_display_name_is_irrelevant(self):
        window = StencilWindow.from_extent(3, 3)

        def build(name):
            dag = PipelineDAG(name)
            dag.add_stage(Stage("K0", is_input=True))
            dag.add_stage(Stage("K1", is_output=True))
            dag.add_edge("K0", "K1", window)
            return dag

        assert dag_fingerprint(build("alpha")) == dag_fingerprint(build("beta"))

    def test_free_form_stage_metadata_is_irrelevant(self):
        plain = build_paper_example()
        tagged = build_paper_example()
        tagged.stage("K1").metadata["note"] = "annotated"
        assert dag_fingerprint(plain) == dag_fingerprint(tagged)

    def test_coalescing_off_hides_policy_and_per_stage(self):
        baseline = SchedulerOptions()
        sweep_all_dp = SchedulerOptions(
            coalescing=False,
            coalescing_policy="all",
            per_stage_coalescing={"K0": False, "K1": False},
        )
        dag = build_paper_example()
        assert _fp(dag, options=baseline) == _fp(dag, options=sweep_all_dp)
        assert normalize_options(baseline) == normalize_options(sweep_all_dp)


class TestSensitivity:
    def test_resolution_changes_fingerprint(self):
        dag = build_paper_example()
        assert _fp(dag, width=W) != _fp(dag, width=2 * W)
        assert _fp(dag, height=H) != _fp(dag, height=2 * H)

    def test_memory_spec_changes_fingerprint(self):
        dag = build_paper_example()
        assert _fp(dag, spec=asic_dual_port()) != _fp(dag, spec=asic_single_port())
        assert _fp(dag, spec=asic_dual_port(32)) != _fp(dag, spec=asic_dual_port(64))

    def test_options_change_fingerprint(self):
        dag = build_paper_example()
        base = _fp(dag)
        assert _fp(dag, options=SchedulerOptions(coalescing=True)) != base
        assert _fp(dag, options=SchedulerOptions(ports=1)) != base
        assert _fp(dag, options=SchedulerOptions(pruning=False)) != base
        assert (
            _fp(dag, options=SchedulerOptions(disjunction_strategy="enumerate")) != base
        )

    def test_per_stage_choice_matters_when_coalescing(self):
        dag = build_paper_example()
        on = SchedulerOptions(
            coalescing=True, coalescing_policy="all", per_stage_coalescing={"K0": True}
        )
        off = SchedulerOptions(
            coalescing=True, coalescing_policy="all", per_stage_coalescing={"K0": False}
        )
        assert _fp(dag, options=on) != _fp(dag, options=off)

    def test_stencil_window_changes_fingerprint(self):
        def build(stencil):
            builder = PipelineBuilder("p")
            handle = builder.input("K0")
            builder.output("K1", window_sum(handle, stencil, stencil))
            return builder.build()

        assert dag_fingerprint(build(3)) != dag_fingerprint(build(5))

    def test_expression_changes_fingerprint(self):
        def build(scale):
            builder = PipelineBuilder("p")
            handle = builder.input("K0")
            builder.output("K1", handle(0, 0) * scale)
            return builder.build()

        assert dag_fingerprint(build(2.0)) != dag_fingerprint(build(3.0))

    def test_io_flags_change_fingerprint(self):
        window = StencilWindow.from_extent(3, 3)

        def build(is_output):
            dag = PipelineDAG("p")
            dag.add_stage(Stage("K0", is_input=True))
            dag.add_stage(Stage("K1", is_output=is_output))
            dag.add_edge("K0", "K1", window)
            return dag

        assert dag_fingerprint(build(True)) != dag_fingerprint(build(False))
