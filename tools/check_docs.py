#!/usr/bin/env python3
"""Docs health check: internal links resolve, runnable snippets run.

CI's docs job (and ``tests/unit/test_docs.py``, so the check also runs in
tier-1) executes this over ``README.md`` and everything under ``docs/``:

* every relative markdown link ``[text](path)`` must point at an existing
  file (absolute URLs and ``mailto:`` are skipped), and a ``path#anchor``
  into a markdown file must name a real heading (GitHub slug rules:
  lowercase, spaces to dashes, punctuation dropped);
* every fenced code block whose info string is ``python runnable`` is
  executed in a fresh namespace — snippets are tests, not illustrations.
  Blocks tagged plain ``python`` are only required to *compile*, which
  catches pasted-in syntax errors without demanding every example be
  self-contained.

Exit status is non-zero on any failure, with one line per problem.

Run:  PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — deliberately simple; our docs don't nest brackets.
_LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```(.*)$")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$")

#: Link targets that are never checked against the filesystem.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, punctuation dropped."""
    # Strip inline code/emphasis markers first so `#foo-bar` matches "`foo` bar".
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_fenced_blocks(text: str) -> str:
    """Remove fenced code blocks so code samples can't fake links/headings."""
    kept: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append(line)
    return "\n".join(kept)


def heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    for line in _strip_fenced_blocks(path.read_text(encoding="utf-8")).splitlines():
        match = _HEADING_RE.match(line)
        if match:
            slugs.add(github_slug(match.group(2)))
    return slugs


def check_links(path: Path) -> list[str]:
    problems: list[str] = []
    text = _strip_fenced_blocks(path.read_text(encoding="utf-8"))
    for target in _LINK_RE.findall(text):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        raw, _, anchor = target.partition("#")
        destination = path if not raw else (path.parent / raw).resolve()
        if not destination.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
            continue
        if anchor and destination.suffix == ".md":
            if anchor not in heading_slugs(destination):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor -> {target}"
                )
    return problems


def code_blocks(path: Path) -> list[tuple[str, str, int]]:
    """``(info_string, source, first_line)`` for every fenced block."""
    blocks: list[tuple[str, str, int]] = []
    info: str | None = None
    buffer: list[str] = []
    start = 0
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        fence = _FENCE_RE.match(line.strip())
        if fence and info is None:
            info = fence.group(1).strip().lower()
            buffer = []
            start = lineno
        elif fence:
            blocks.append((info, "\n".join(buffer), start))
            info = None
        elif info is not None:
            buffer.append(line)
    return blocks


def check_snippets(path: Path) -> list[str]:
    problems: list[str] = []
    for info, source, lineno in code_blocks(path):
        if not info.startswith("python"):
            continue
        where = f"{path.relative_to(REPO_ROOT)}:{lineno}"
        try:
            compiled = compile(source, where, "exec")
        except SyntaxError as exc:
            problems.append(f"{where}: python block does not parse: {exc}")
            continue
        if "runnable" not in info.split():
            continue
        namespace: dict = {"__name__": f"docs_snippet_{path.stem}_{lineno}"}
        try:
            exec(compiled, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
            problems.append(
                f"{where}: runnable snippet failed: {type(exc).__name__}: {exc}"
            )
    return problems


def run_checks() -> list[str]:
    problems: list[str] = []
    for path in doc_files():
        problems.extend(check_links(path))
        problems.extend(check_snippets(path))
    return problems


def main() -> int:
    files = doc_files()
    problems = run_checks()
    runnable = sum(
        1
        for path in files
        for info, _, _ in code_blocks(path)
        if info.startswith("python") and "runnable" in info.split()
    )
    for problem in problems:
        print(f"FAIL {problem}")
    print(
        f"checked {len(files)} docs: links + {runnable} runnable snippets -> "
        f"{'OK' if not problems else f'{len(problems)} problem(s)'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
