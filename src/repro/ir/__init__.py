"""Intermediate representation: stencil windows and the pipeline DAG."""

from repro.ir.stencil import StencilWindow
from repro.ir.dag import Stage, Edge, PipelineDAG
from repro.ir.traversal import (
    topological_order,
    reachable_from,
    ancestors_of,
    partial_order,
    longest_path_lengths,
)
from repro.ir.validate import validate_dag

__all__ = [
    "StencilWindow",
    "Stage",
    "Edge",
    "PipelineDAG",
    "topological_order",
    "reachable_from",
    "ancestors_of",
    "partial_order",
    "longest_path_lengths",
    "validate_dag",
]
