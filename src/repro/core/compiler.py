"""Top-level compiler facade (paper Fig. 5).

:func:`compile_pipeline` ties the framework together: DSL/DAG in, optimized
schedule + line-buffer configuration out, with hooks to generate Verilog and
area/power reports.  This is the primary public API of the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Any

from repro.core.schedule import PipelineSchedule
from repro.core.scheduler import SchedulerOptions, schedule_pipeline
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec, asic_dual_port


@dataclass
class CompiledAccelerator:
    """A compiled accelerator: schedule plus lazily-generated artifacts."""

    schedule: PipelineSchedule
    options: SchedulerOptions
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def dag(self) -> PipelineDAG:
        return self.schedule.dag

    @property
    def compile_seconds(self) -> float:
        return float(self.schedule.solver_stats.get("compile_seconds", 0.0))

    # ----------------------------------------------------------------- RTL
    def generate_verilog(self) -> str:
        """Emit synthesizable Verilog for the scheduled pipeline."""
        from repro.rtl.generator import generate_verilog

        return generate_verilog(self.schedule)

    # ------------------------------------------------------------- analysis
    def area_report(self):
        """Memory + PE area summary (ASIC model)."""
        from repro.estimate.area import area_report

        return area_report(self.schedule)

    def power_report(self):
        """Memory + PE power summary (ASIC model)."""
        from repro.estimate.power import power_report

        return power_report(self.schedule)

    def verify(self, *, max_rows: int | None = 16):
        """Run the cycle-level legality checks (R1-R3) on a reduced image."""
        from repro.sim.cycle import simulate_schedule

        return simulate_schedule(self.schedule, max_rows=max_rows)

    def describe(self) -> str:
        return self.schedule.describe()


def _schedule_cached(
    dag: PipelineDAG,
    image_width: int,
    image_height: int,
    memory_spec: MemorySpec,
    options: SchedulerOptions,
    cache: Any | None,
) -> tuple[PipelineSchedule, str]:
    """Solve one schedule request, consulting a compile cache when given.

    Returns the schedule and its source: ``"memory"``/``"disk"`` for cache
    tiers, ``"solver"`` for a fresh ILP solve (which is then recorded in the
    cache).
    """
    if cache is None:
        return schedule_pipeline(dag, image_width, image_height, memory_spec, options), "solver"
    schedule, source, fingerprint = cache.fetch(
        dag, image_width, image_height, memory_spec, options
    )
    if schedule is None:
        schedule = schedule_pipeline(dag, image_width, image_height, memory_spec, options)
        cache.put(fingerprint, schedule)
    return schedule, source


def compile_pipeline(
    dag: PipelineDAG,
    *,
    image_width: int,
    image_height: int,
    memory_spec: MemorySpec | None = None,
    coalescing: bool = False,
    options: SchedulerOptions | None = None,
    cache: Any | None = None,
) -> CompiledAccelerator:
    """Compile a pipeline DAG into a line-buffered accelerator design.

    Parameters
    ----------
    dag:
        The pipeline, from :func:`repro.dsl.parse_pipeline` or
        :class:`repro.dsl.PipelineBuilder`.
    image_width, image_height:
        Input image resolution (e.g. 480x320 or 1920x1080).
    memory_spec:
        The on-chip memory structure available; defaults to dual-port ASIC
        SRAM macros (:func:`repro.memory.spec.asic_dual_port`).
    coalescing:
        Enable the line-coalescing optimization (Ours+LC in the paper).
    options:
        Full :class:`SchedulerOptions`; ``coalescing`` overrides its field
        when both are given.
    cache:
        Optional :class:`repro.service.cache.CompileCache`.  Every ILP solve
        — including both solves of the auto-coalescing fallback — is first
        looked up by content fingerprint and recorded on a miss, so repeated
        requests never re-run the solver.  The sources consulted are recorded
        in the returned accelerator's ``metadata["schedule_sources"]``.
    """
    memory_spec = memory_spec or asic_dual_port()
    options = options or SchedulerOptions()
    if coalescing and not options.coalescing:
        # Override on a copy: the caller's options object stays untouched.
        options = dc_replace(options, coalescing=True)
    schedule, source = _schedule_cached(
        dag, image_width, image_height, memory_spec, options, cache
    )
    sources = [source]

    if options.coalescing and options.coalescing_policy == "auto":
        # Coalescing interacts with downstream buffer sizes through the extra
        # writer-separation constraints; like any compiler optimization it is
        # only kept when it actually reduces the allocated on-chip memory.
        plain_options = dc_replace(options, coalescing=False)
        plain, plain_source = _schedule_cached(
            dag, image_width, image_height, memory_spec, plain_options, cache
        )
        sources.append(plain_source)
        if plain.total_allocated_bits < schedule.total_allocated_bits or (
            plain.total_allocated_bits == schedule.total_allocated_bits
            and plain.total_blocks < schedule.total_blocks
        ):
            # Relabel a copy: `plain` may live in the cache under the
            # non-coalesced fingerprint and must stay pristine there.
            schedule = dc_replace(
                plain,
                generator="imagen+lc",
                solver_stats={**plain.solver_stats, "coalescing_fallback": True},
            )

    return CompiledAccelerator(
        schedule=schedule,
        options=options,
        metadata={"schedule_sources": tuple(sources)},
    )
