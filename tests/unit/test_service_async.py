"""Unit tests for the engine's asyncio serving front.

No pytest-asyncio in the toolchain: each test drives its coroutine with
``asyncio.run``, which is all a serving layer needs anyway.
"""

import asyncio
import time

import pytest

from repro.api import CompileTarget
from repro.service import CompileEngine

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


def _target(dag=None, **kwargs) -> CompileTarget:
    return CompileTarget(dag or build_paper_example(), image_width=W, image_height=H, **kwargs)


@pytest.fixture
def engine():
    # Thread backend pinned: these tests assert in-process semantics (shared
    # schedule objects, pool saturation via the executor's thread pool).
    engine = CompileEngine(workers=2, executor="thread")
    yield engine
    engine.shutdown()


class TestSubmitAsync:
    def test_result_identical_to_sync_submit(self, engine):
        target = _target()
        sync_result = engine.submit(target)

        async def run():
            return await engine.submit_async(target)

        async_result = asyncio.run(run())
        assert async_result.ok
        assert async_result.fingerprint == sync_result.fingerprint
        assert async_result.source == "memory"  # the sync call warmed the cache
        sync_schedule = sync_result.accelerator.schedule
        assert async_result.accelerator.schedule is sync_schedule

    def test_error_captured_not_raised(self, engine):
        async def run():
            return await engine.submit_async(_target(build_chain(3)).with_resolution(1, H))

        result = asyncio.run(run())
        assert not result.ok
        assert "SchedulingError" in result.error
        assert engine.metrics.errors == 1

    def test_does_not_block_the_event_loop(self, engine):
        """A compile awaited on the pool lets other coroutines run meanwhile."""
        ticks = []

        async def ticker():
            while True:
                ticks.append(time.perf_counter())
                await asyncio.sleep(0)

        async def run():
            tick_task = asyncio.ensure_future(ticker())
            try:
                return await engine.submit_async(_target())
            finally:
                tick_task.cancel()

        result = asyncio.run(run())
        assert result.ok
        assert len(ticks) > 1  # the loop kept turning during the solve


class TestSubmitBatchAsync:
    def test_batch_equals_sync_batch(self):
        """Acceptance: await submit_batch_async == submit_batch for the same targets."""
        targets = [
            _target(build_chain(3), label="a"),
            _target(build_chain(4), label="b"),
            _target(build_chain(3), label="c"),  # duplicate of "a"
            _target().with_options(coalescing=True),
        ]
        with CompileEngine(workers=2, executor="thread") as sync_engine:
            sync_batch = sync_engine.submit_batch(targets)

        async def run():
            async with CompileEngine(workers=2, executor="thread") as async_engine:
                return await async_engine.submit_batch_async(targets)

        async_batch = asyncio.run(run())
        assert len(async_batch) == len(sync_batch)
        assert [r.target.label for r in async_batch] == [r.target.label for r in sync_batch]
        assert [r.fingerprint for r in async_batch] == [r.fingerprint for r in sync_batch]
        assert [r.source for r in async_batch] == [r.source for r in sync_batch]
        for async_result, sync_result in zip(async_batch.results, sync_batch.results):
            assert async_result.ok and sync_result.ok
            async_schedule = async_result.accelerator.schedule
            sync_schedule = sync_result.accelerator.schedule
            assert async_schedule.start_cycles == sync_schedule.start_cycles
            assert (
                async_schedule.total_allocated_bits == sync_schedule.total_allocated_bits
            )

    def test_in_batch_dedup_shares_one_execution(self, engine):
        targets = [_target(build_chain(3)), _target(build_chain(3))]

        async def run():
            return await engine.submit_batch_async(targets)

        batch = asyncio.run(run())
        sources = sorted(r.source for r in batch.results)
        assert sources == ["deduplicated", "solver"]
        assert batch.results[0].accelerator.schedule is batch.results[1].accelerator.schedule
        assert engine.metrics.deduplicated == 1

    def test_batch_cancel_on_engine_shutdown(self, engine):
        """Acceptance: pending async jobs are cancelled by shutdown(cancel_pending=True)."""

        async def run():
            # Saturate the 2-thread pool so the batch stays queued behind it.
            pool = engine._executor._ensure_pool()
            release = __import__("threading").Event()
            for _ in range(engine.workers):
                pool.submit(release.wait)
            try:
                pending = asyncio.ensure_future(
                    engine.submit_batch_async([_target(build_chain(3))])
                )
                await asyncio.sleep(0.01)  # let the batch enqueue behind the blockers
                engine.shutdown(wait=False, cancel_pending=True)
                with pytest.raises(asyncio.CancelledError):
                    await pending
            finally:
                release.set()

        asyncio.run(run())
        # The cancelled job never ran: no result was recorded.
        assert engine.metrics.requests == 0


class TestAsyncContextManager:
    def test_aenter_returns_engine_and_aexit_shuts_down(self):
        async def run():
            async with CompileEngine(workers=2, executor="thread") as engine:
                result = await engine.submit_async(_target(build_chain(3)))
                assert result.ok
                return engine

        engine = asyncio.run(run())
        assert engine._executor._pool is None  # pool released by __aexit__

    def test_sync_and_async_share_cache(self):
        async def run():
            async with CompileEngine(workers=2, executor="thread") as engine:
                await engine.submit_async(_target())
                hits_before = engine.cache.stats.hits
                engine.submit(_target())  # sync path, same cache
                return engine.cache.stats.hits - hits_before

        assert asyncio.run(run()) == 1
