"""Typed job records and job execution for the compilation service.

Stability: public.

The engine's unit of work is a :class:`repro.api.CompileTarget`; a
:class:`CompileResult` carries the target it answered plus either the compiled
accelerator or a captured error, so that one infeasible design point never
aborts a batch or a DSE sweep.  :class:`BatchResult` aggregates a batch
submission with its cache statistics and wall-clock time.

:func:`execute_target` is the single place a job actually runs: it wraps
:func:`repro.core.compile_pipeline`, captures per-design-point failures, and
classifies the result source.  :func:`execute_wire_job` is its process-pool
twin — a module-level (picklable) task whose input and output are *wire
payloads* (:mod:`repro.service.wire`), never pickled closures, so the
``process`` executor backend ships plain dictionaries across the boundary and
stays immune to unpicklable DAG callbacks, monkeypatched modules, or
library-version skew in what a worker returns.

:class:`CompileRequest` is the legacy request record from before the unified
target API.  Submitting one still works — the engine converts it via
:meth:`CompileRequest.to_target` and emits a :class:`DeprecationWarning` — and
``CompileResult.request`` reconstructs one for callers that still read it.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro.api.target import CompileTarget
from repro.core.compiler import CompiledAccelerator, compile_pipeline
from repro.core.scheduler import SchedulerOptions
from repro.errors import ReproError
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec, asic_dual_port
from repro.service.cache import CacheStats, CompileCache, DiskCacheStore
from repro.trace import Span, collect_spans, default_tracing


class CompileStatus(enum.Enum):
    """Terminal state of one compile job."""

    OK = "ok"
    ERROR = "error"


#: Where a result came from: ``"memory"``/``"disk"`` (cache tiers),
#: ``"solver"`` (at least one fresh generator run), ``"deduplicated"``
#: (shared with an identical in-flight request), or ``"rejected"`` (shed by
#: the engine's bounded admission queue — the job never ran).
SOURCE_DEDUPLICATED = "deduplicated"
SOURCE_REJECTED = "rejected"


def rejected_result(target: CompileTarget, reason: str) -> CompileResult:
    """An error-carrying result for a job the admission queue shed.

    Batch submissions report shed design points this way — in their slots,
    with ``source="rejected"`` and zero latency — so a saturated engine
    degrades item-by-item exactly like an infeasible design point does.
    """
    return CompileResult(
        target=target,
        fingerprint=target.fingerprint,
        error=reason,
        source=SOURCE_REJECTED,
        seconds=0.0,
    )


@dataclass
class CompileRequest:
    """Legacy compilation job record (pre-:class:`CompileTarget`).

    ``memory_spec`` and ``options`` may be left ``None``; :meth:`to_target`
    fills in the library defaults (dual-port ASIC SRAM, default options) and
    applies the ``coalescing`` convenience flag onto a private copy of the
    options, so callers' objects are never mutated.
    """

    dag: PipelineDAG
    image_width: int
    image_height: int
    memory_spec: MemorySpec | None = None
    options: SchedulerOptions | None = None
    coalescing: bool = False
    label: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_target(self) -> CompileTarget:
        """The equivalent :class:`CompileTarget`, with defaults resolved."""
        return CompileTarget.from_kwargs(
            self.dag,
            image_width=self.image_width,
            image_height=self.image_height,
            memory_spec=self.memory_spec,
            options=self.options,
            coalescing=self.coalescing,
            label=self.label,
            metadata=dict(self.metadata),
        )

    def resolved(self) -> "CompileRequest":
        """A copy with defaults applied and options isolated from the caller."""
        options = self.options or SchedulerOptions()
        options = replace(
            options, per_stage_coalescing=dict(options.per_stage_coalescing)
        )
        if self.coalescing:
            options.coalescing = True
        return replace(
            self,
            memory_spec=self.memory_spec or asic_dual_port(),
            options=options,
            coalescing=False,
            metadata=dict(self.metadata),
        )


@dataclass
class CompileResult:
    """Outcome of one compile job, successful or not."""

    target: CompileTarget
    fingerprint: str = ""
    accelerator: CompiledAccelerator | None = None
    error: str | None = None
    source: str = "solver"
    seconds: float = 0.0
    #: Stage spans (:class:`repro.trace.Span`) recorded while the job ran;
    #: empty when tracing is disabled or the job never ran (rejected).
    spans: tuple[Span, ...] = ()

    @property
    def request(self) -> CompileRequest:
        """The legacy request record equivalent to :attr:`target`.

        Only defined for optimizer targets: :class:`CompileRequest` predates
        generators and cannot express a baseline, so converting one would
        silently turn a Darkroom/SODA/FixyNN result into an ImaGen request.
        """
        if not self.target.is_imagen:
            raise ValueError(
                f"CompileResult.request cannot represent a {self.target.generator!r} "
                "target (CompileRequest has no generator); use result.target"
            )
        return CompileRequest(
            dag=self.target.dag,
            image_width=self.target.image_width,
            image_height=self.target.image_height,
            memory_spec=self.target.memory_spec,
            options=self.target.options,
            label=self.target.label,
            metadata=dict(self.target.metadata),
        )

    @property
    def status(self) -> CompileStatus:
        return CompileStatus.OK if self.error is None else CompileStatus.ERROR

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def from_cache(self) -> bool:
        return self.source in ("memory", "disk")

    def unwrap(self) -> CompiledAccelerator:
        """The accelerator, or a :class:`ReproError` describing the failure."""
        if self.accelerator is None:
            raise ReproError(
                f"Compilation of {self.target.display_label!r} failed: {self.error}"
            )
        return self.accelerator


@dataclass
class BatchResult:
    """Results of one batch submission, in request order."""

    results: list[CompileResult]
    seconds: float = 0.0
    cache_stats: CacheStats | None = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def ok_results(self) -> list[CompileResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> list[CompileResult]:
        return [r for r in self.results if not r.ok]

    @property
    def accelerators(self) -> list[CompiledAccelerator]:
        """Accelerators of the successful jobs, in request order."""
        return [r.accelerator for r in self.results if r.accelerator is not None]

    def raise_on_error(self) -> "BatchResult":
        """Raise a :class:`ReproError` summarizing failures, if any."""
        failures = self.failures
        if failures:
            summary = "; ".join(
                f"{f.target.display_label!r}: {f.error}" for f in failures[:5]
            )
            more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
            raise ReproError(f"{len(failures)}/{len(self.results)} compile jobs failed: {summary}{more}")
        return self


# ---------------------------------------------------------------------------
# Job execution
# ---------------------------------------------------------------------------
def derive_source(accelerator: CompiledAccelerator) -> str:
    """Classify where a compiled design came from.

    A compile may consult the cache more than once (the auto-coalescing
    fallback runs two solves): the result counts as cached only when *every*
    consulted source was a cache tier, and as ``"disk"`` only when the disk
    tier was actually touched.
    """
    sources = accelerator.metadata.get("schedule_sources", ("solver",))
    if all(source in ("memory", "disk") for source in sources):
        return "disk" if "disk" in sources else "memory"
    return "solver"


def execute_target(
    target: CompileTarget,
    cache: CompileCache | None,
    fingerprint: str | None = None,
    *,
    tracing: bool | None = None,
) -> CompileResult:
    """Run one compile job, capturing failures instead of raising.

    This is the body every executor backend ultimately runs — on the calling
    thread (``inline``), on a pool thread (``thread``), or inside a worker
    process (``process``, via :func:`execute_wire_job`).  One bad design
    point yields an error-carrying :class:`CompileResult` so it can never
    kill a batch or a sweep.

    Stage spans recorded during the compile ride on ``result.spans``.
    ``tracing=None`` follows the ``REPRO_TRACE`` default — which worker
    processes inherit from the parent's environment.
    """
    fingerprint = fingerprint or target.fingerprint
    trace = collect_spans(enabled=default_tracing() if tracing is None else tracing)
    started = time.perf_counter()
    try:
        with trace:
            accelerator = compile_pipeline(target, cache=cache)
    except Exception as exc:
        return CompileResult(
            target=target,
            fingerprint=fingerprint,
            error=f"{type(exc).__name__}: {exc}",
            seconds=time.perf_counter() - started,
            spans=trace.spans,
        )
    return CompileResult(
        target=target,
        fingerprint=fingerprint,
        accelerator=accelerator,
        source=derive_source(accelerator),
        seconds=time.perf_counter() - started,
        spans=trace.spans,
    )


#: Per-worker-process compile caches, one per disk-volume configuration
#: (``(directory, max_bytes, max_age_seconds)``; directory ``None`` = one
#: memory-only cache shared by every engine without a disk store).
#: Module-level so they survive across the tasks one worker process serves.
_WORKER_CACHES: dict[tuple, CompileCache] = {}

#: Memory-tier LRU capacity of each worker-process cache.  Deliberately small:
#: the authoritative tiers are the parent engine's LRU and the shared disk
#: volume; this only short-circuits repeats landing on the same worker.
WORKER_CACHE_ENTRIES = 128


def _worker_cache(
    cache_dir: str | None,
    max_bytes: int | None = None,
    max_age_seconds: float | None = None,
) -> CompileCache:
    key = (cache_dir, max_bytes, max_age_seconds)
    cache = _WORKER_CACHES.get(key)
    if cache is None:
        store = (
            DiskCacheStore(
                cache_dir, max_bytes=max_bytes, max_age_seconds=max_age_seconds
            )
            if cache_dir
            else None
        )
        cache = CompileCache(max_entries=WORKER_CACHE_ENTRIES, store=store)
        _WORKER_CACHES[key] = cache
    return cache


def execute_wire_job(
    payload: dict,
    cache_dir: str | None = None,
    cache_max_bytes: int | None = None,
    cache_max_age_seconds: float | None = None,
) -> dict:
    """Process-pool task: wire-format target in, wire-format result out.

    Runs inside a ``ProcessPoolExecutor`` worker.  The target arrives as a
    :func:`repro.service.wire.target_to_wire` payload and the full result —
    schedule, line buffers, metadata, captured error — returns as a
    :func:`repro.service.wire.full_result_to_wire` payload, so nothing
    fragile is ever pickled across the process boundary.  ``cache_dir``
    points the worker at the engine's shared disk volume: workers persist
    what they solve there, and a design one process solved is loaded warm by
    every other process sharing the volume.  The GC bounds travel with it,
    so a ``max_bytes`` limit holds no matter which process does the saving.
    """
    from repro.service.wire import full_result_to_wire, target_from_wire

    target = target_from_wire(payload)
    result = execute_target(
        target, _worker_cache(cache_dir, cache_max_bytes, cache_max_age_seconds)
    )
    return full_result_to_wire(result)
