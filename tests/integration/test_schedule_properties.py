"""Integration checks of schedule-level invariants the paper relies on."""

import pytest

from repro.algorithms import ALGORITHM_NAMES, build_algorithm, build_synthetic_pipeline
from repro.baselines import generate_baseline
from repro.core.compiler import compile_pipeline
from repro.core.constraints import data_dependency_constraints
from repro.core.scheduler import SchedulerOptions, schedule_pipeline
from repro.memory.spec import asic_dual_port

W, H = 64, 48


class TestScheduleInvariants:
    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_data_dependencies_satisfied(self, algorithm):
        dag = build_algorithm(algorithm)
        schedule = compile_pipeline(dag, image_width=W, image_height=H).schedule
        for dep in data_dependency_constraints(dag, W):
            assert schedule.delay(dep.producer, dep.consumer) >= dep.min_delay

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_input_stages_start_at_zero(self, algorithm):
        dag = build_algorithm(algorithm)
        schedule = compile_pipeline(dag, image_width=W, image_height=H).schedule
        for stage in dag.input_stages():
            assert schedule.start(stage.name) == 0

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_every_producer_has_a_buffer_record(self, algorithm):
        dag = build_algorithm(algorithm)
        schedule = compile_pipeline(dag, image_width=W, image_height=H).schedule
        for producer in dag.stage_names():
            if dag.consumers_of(producer):
                assert producer in schedule.line_buffers
            else:
                assert producer not in schedule.line_buffers

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_latency_close_to_baselines(self, algorithm):
        """Sec. 8.1: the memory savings come with essentially no latency cost."""
        dag = build_algorithm(algorithm)
        ours = compile_pipeline(dag, image_width=480, image_height=320).schedule
        darkroom = generate_baseline("darkroom", dag, 480, 320)
        ratio = ours.end_to_end_latency_cycles / darkroom.end_to_end_latency_cycles
        # ImaGen is never slower than Darkroom and stays within a few percent.
        assert ratio <= 1.001
        assert ratio >= 0.9

    def test_imagen_uses_less_sram_than_darkroom_in_aggregate(self):
        ours_total = 0
        darkroom_total = 0
        for algorithm in ALGORITHM_NAMES:
            dag = build_algorithm(algorithm)
            ours_total += compile_pipeline(
                dag, image_width=W, image_height=H
            ).schedule.total_allocated_bits
            darkroom_total += generate_baseline("darkroom", dag, W, H).total_allocated_bits
        assert ours_total < darkroom_total

    def test_objective_matches_sum_of_max_delays(self):
        dag = build_algorithm("unsharp-m")
        schedule = compile_pipeline(dag, image_width=W, image_height=H).schedule
        objective = schedule.solver_stats["objective"]
        total = sum(
            schedule.max_delay(p) for p in dag.stage_names() if dag.consumers_of(p)
        )
        assert objective == pytest.approx(total)


class TestScalability:
    @pytest.mark.parametrize("stages", [9, 15, 24])
    def test_synthetic_pipelines_schedule(self, stages):
        dag = build_synthetic_pipeline(stages)
        schedule = schedule_pipeline(dag, W, H, asic_dual_port())
        assert len(schedule.start_cycles) == stages
        assert schedule.solver_stats["compile_seconds"] < 30

    def test_compile_time_grows_moderately(self):
        small = schedule_pipeline(build_synthetic_pipeline(9), W, H, asic_dual_port())
        large = schedule_pipeline(build_synthetic_pipeline(30), W, H, asic_dual_port())
        assert large.solver_stats["ilp_variables"] > small.solver_stats["ilp_variables"]

    def test_pruning_reduces_candidates_on_synthetic_pipelines(self):
        dag = build_synthetic_pipeline(18)
        pruned = schedule_pipeline(dag, W, H, asic_dual_port(), SchedulerOptions(pruning=True))
        raw = schedule_pipeline(dag, W, H, asic_dual_port(), SchedulerOptions(pruning=False))
        assert (
            pruned.solver_stats["pruned_contention_candidates"]
            <= raw.solver_stats["pruned_contention_candidates"]
        )
        assert pruned.solver_stats["objective"] == pytest.approx(raw.solver_stats["objective"])
