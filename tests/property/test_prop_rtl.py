"""Property tests for the RTL simulator: no vacuous passes.

Hypothesis builds small random pipelines (chains with optional skip-edges,
mixed stencil sizes, any of the four generators), compiles them, and pins
three properties:

* the generated Verilog lints clean and elaborates,
* the RTL simulation of the *solver's* schedule matches the functional
  replay bit-exactly,
* perturbing the schedule's start cycles flips the verdicts — zeroed starts
  make the ``rtl`` digest comparison diverge, and delayed starts push the
  measured cycles/frame past the original schedule's bound so the ``perf``
  predicate fails.  A simulator that always agreed (or a perf check that
  always passed) would fail these.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro import compile_pipeline
from repro.api import CompileTarget
from repro.dsl.builder import PipelineBuilder, window_sum
from repro.rtl import (
    elaborate_design,
    generate_verilog,
    lint_verilog,
    measure_performance,
    rtl_replay,
)
from repro.sim.batch import replay_frames

W, H = 32, 24
GENERATORS = ("imagen", "darkroom", "soda", "fixynn")


def random_chain_dag(num_stages: int, stencils: list[int], fan_in: list[int]):
    """A chain with optional skip-edges back to earlier stages."""
    builder = PipelineBuilder(f"prop-rtl-{num_stages}")
    handles = [builder.input("K0")]
    for index in range(1, num_stages):
        size = stencils[index - 1]
        expr = (
            window_sum(handles[-1], size, size)
            if size > 1
            else handles[-1](0, 0)
        )
        back = fan_in[index - 1]
        if back > 0 and index - 1 - back >= 0:
            extra = handles[index - 1 - back]
            expr = expr + extra(0, 0)
        handles.append(builder.stage(f"K{index}", expr))
    builder.dag.stage(handles[-1].name).is_output = True
    return builder.dag.validated()


@st.composite
def compiled_schedule(draw):
    num_stages = draw(st.integers(3, 5))
    stencils = [draw(st.sampled_from([1, 2, 3, 5])) for _ in range(num_stages - 1)]
    # Pointwise-only chains have no window anywhere; keep at least one.
    if all(size == 1 for size in stencils):
        stencils[0] = 3
    fan_in = [draw(st.integers(0, 2)) for _ in range(num_stages - 1)]
    generator = draw(st.sampled_from(GENERATORS))
    dag = random_chain_dag(num_stages, stencils, fan_in)
    target = CompileTarget(
        dag, image_width=W, image_height=H, generator=generator
    )
    return compile_pipeline(target).schedule


@settings(max_examples=15, deadline=None)
@given(schedule=compiled_schedule())
def test_generated_design_lints_elaborates_and_matches_replay(schedule):
    source = generate_verilog(schedule)
    report = lint_verilog(source)
    assert report.ok, report.errors[:3]
    design = elaborate_design(source, schedule.dag)
    assert set(design.start_cycles) >= set(schedule.start_cycles)
    result = rtl_replay(schedule, frames=1, seed=0, source=source)
    replay = replay_frames(schedule.dag, W, H, frames=1, seed=0)
    assert result.digest == replay.digest


@settings(max_examples=15, deadline=None)
@given(schedule=compiled_schedule())
def test_zeroed_starts_fail_the_rtl_verdict(schedule):
    """Collapsing every start cycle to 0 must make the RTL output diverge."""
    broken = replace(
        schedule, start_cycles={name: 0 for name in schedule.start_cycles}
    )
    result = rtl_replay(broken, frames=1, seed=0)
    replay = replay_frames(schedule.dag, W, H, frames=1, seed=0)
    # This is exactly the `rtl` check's verdict predicate: digest equality.
    assert result.digest != replay.digest, "rtl verdict passed on a broken schedule"


@settings(max_examples=15, deadline=None)
@given(schedule=compiled_schedule(), delay_rows=st.integers(4, 32))
def test_delayed_starts_fail_the_perf_verdict(schedule, delay_rows):
    """Delaying every start pushes achieved cycles/frame past the old bound."""
    bound = schedule.end_to_end_latency_cycles
    delayed = replace(
        schedule,
        start_cycles={
            name: start + delay_rows * W
            for name, start in schedule.start_cycles.items()
        },
    )
    design = elaborate_design(generate_verilog(delayed), delayed.dag)
    perf = measure_performance(design, H, bound_cycles=bound)
    # This is exactly the `perf` check's verdict predicate.
    assert perf["passed"] is False
    assert perf["cycles_per_frame"] > bound
