"""Unit tests for the span tracer (`repro.trace`).

The tracer is the foundation of the observability surface: these tests pin
the thread-local collection model (no collector -> shared no-op span), the
nesting/attribute semantics, the wire payload round-trip, and the
``REPRO_TRACE`` default used by process-pool workers.
"""

from __future__ import annotations

import threading

import pytest

from repro.trace import (
    Span,
    collect_spans,
    default_tracing,
    flatten_spans,
    span_attr,
    spans_from_payload,
    spans_to_payload,
    trace_span,
    tracing_active,
)


class TestDisabledPath:
    def test_no_collector_means_inactive(self):
        assert not tracing_active()

    def test_trace_span_without_collector_is_shared_noop(self):
        with trace_span("solve", strategy="bigm") as a:
            with trace_span("ilp") as b:
                pass
        assert a is b  # one module-level singleton, no per-call allocation

    def test_span_attr_without_collector_is_harmless(self):
        span_attr(anything=1)

    def test_disabled_collector_keeps_tracing_off(self):
        with collect_spans(enabled=False) as trace:
            assert not tracing_active()
            with trace_span("solve"):
                span_attr(x=1)
        assert trace.spans == ()


class TestCollection:
    def test_nesting_attrs_and_timing(self):
        with collect_spans() as trace:
            assert tracing_active()
            with trace_span("solve", strategy="bigm"):
                with trace_span("ilp"):
                    span_attr(lp_iterations=42)
            with trace_span("rtl"):
                pass
        assert not tracing_active()

        solve, rtl = trace.spans
        assert solve.name == "solve"
        assert solve.attrs["strategy"] == "bigm"
        (ilp,) = solve.children
        assert ilp.name == "ilp"
        assert ilp.attrs["lp_iterations"] == 42
        assert rtl.name == "rtl" and rtl.children == ()
        # Children start after (and run within) their parent.
        assert ilp.start >= solve.start
        assert solve.seconds >= ilp.seconds >= 0.0
        assert rtl.start >= solve.start + solve.seconds

    def test_span_attr_targets_innermost_open_span(self):
        with collect_spans() as trace:
            with trace_span("outer"):
                span_attr(level="outer")
                with trace_span("inner"):
                    span_attr(level="inner")
        (outer,) = trace.spans
        assert outer.attrs["level"] == "outer"
        assert outer.children[0].attrs["level"] == "inner"

    def test_exception_still_closes_span(self):
        with collect_spans() as trace:
            with pytest.raises(ValueError):
                with trace_span("solve"):
                    raise ValueError("infeasible")
        (solve,) = trace.spans
        assert solve.name == "solve" and solve.seconds >= 0.0

    def test_nested_collectors_save_and_restore(self):
        with collect_spans() as outer:
            with trace_span("before"):
                pass
            with collect_spans() as inner:
                with trace_span("inner-only"):
                    pass
            with trace_span("after"):
                pass
        assert [span.name for span in inner.spans] == ["inner-only"]
        assert [span.name for span in outer.spans] == ["before", "after"]

    def test_collection_is_thread_local(self):
        seen: list[bool] = []

        def other_thread():
            seen.append(tracing_active())
            with trace_span("elsewhere"):
                pass

        with collect_spans() as trace:
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
            with trace_span("here"):
                pass
        assert seen == [False]  # the collector never leaks across threads
        assert [span.name for span in trace.spans] == ["here"]

    def test_flatten_spans_walks_children(self):
        with collect_spans() as trace:
            with trace_span("solve"):
                with trace_span("ilp"):
                    pass
            with trace_span("rtl"):
                pass
        names = [span.name for span in flatten_spans(trace.spans)]
        assert names == ["solve", "ilp", "rtl"]


class TestPayloadCodec:
    def test_round_trip_preserves_tree(self):
        with collect_spans() as trace:
            with trace_span("solve", strategy="bigm"):
                with trace_span("ilp"):
                    span_attr(backend="python", lp_iterations=7)
        payload = spans_to_payload(trace.spans)
        decoded = spans_from_payload(payload)
        assert [span.name for span in decoded] == ["solve"]
        assert decoded[0].attrs == {"strategy": "bigm"}
        assert decoded[0].children[0].attrs == {"backend": "python", "lp_iterations": 7}
        # Idempotent: encoding the decoded tree reproduces the payload.
        assert spans_to_payload(decoded) == payload

    def test_payload_omits_empty_fields(self):
        span = Span(name="rtl", start=0.0, seconds=0.001)
        payload = span.to_payload()
        assert "attrs" not in payload and "children" not in payload

    @pytest.mark.parametrize(
        "payload",
        [
            "not-a-list",
            [{"seconds": 1.0}],  # missing name
            [{"name": "x", "seconds": "fast"}],  # non-numeric duration
            [{"name": "x", "seconds": 0.1, "children": "nope"}],
        ],
    )
    def test_bad_payloads_raise_value_error(self, payload):
        with pytest.raises(ValueError):
            spans_from_payload(payload)


class TestDefaultTracing:
    def test_unset_env_defaults_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert default_tracing() is True

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", "OFF"])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert default_tracing() is False

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", "anything"])
    def test_everything_else_enables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert default_tracing() is True
