"""Line-buffer configuration records.

A :class:`LineBufferConfig` is the physical realisation of one producer
stage's intermediate buffer: how many line slots it stores, how those lines
are packed into memory blocks, and how it is accessed.  It is produced by the
allocator from a schedule, and consumed by the area/power estimators, the
cycle simulator and the RTL generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.spec import MemorySpec


@dataclass(frozen=True)
class BlockAssignment:
    """One physical memory block and the line slots (and segments) it holds."""

    index: int
    line_slots: tuple[int, ...]
    segment: int = 0  # when one line spans several blocks, its segment number
    used_bits: int = 0

    @property
    def num_lines(self) -> int:
        return len(self.line_slots)


@dataclass
class LineBufferConfig:
    """Physical configuration of the line buffer after one producer stage."""

    producer: str
    image_width: int
    lines: int
    spec: MemorySpec
    coalesce_factor: int = 1
    #: "sram" (classic / ImaGen), "fifo" (SODA), or "registers" (sub-line DFF buffer).
    style: str = "sram"
    blocks: list[BlockAssignment] = field(default_factory=list)
    #: pixels kept in DFF shift registers rather than SRAM (SODA's last line).
    dff_pixels: int = 0
    #: number of parallel FIFO chains (SODA splits per extra consumer).
    fifo_chains: int = 1
    #: per-accessor stencil heights (writer excluded), for access accounting.
    reader_heights: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------- capacities
    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def pixel_capacity(self) -> int:
        """Pixels of storage actually required (line slots x width)."""
        return self.lines * self.image_width

    @property
    def data_bits(self) -> int:
        """Bits of payload stored in SRAM (excludes DFF pixels)."""
        return self.pixel_capacity * self.spec.pixel_bits

    @property
    def allocated_bits(self) -> int:
        """Bits of SRAM capacity claimed (block-granular allocation)."""
        return self.num_blocks * self.spec.block_bits

    @property
    def allocated_kbytes(self) -> float:
        return self.allocated_bits / 8192.0

    @property
    def data_kbytes(self) -> float:
        return self.data_bits / 8192.0

    def summary(self) -> str:
        return (
            f"LB[{self.producer}]: {self.lines} lines x {self.image_width}px, "
            f"{self.num_blocks} block(s) ({self.spec.name}), coalesce={self.coalesce_factor}, "
            f"style={self.style}"
        )
