"""On-chip memory specifications, line-buffer configurations and allocation."""

from repro.memory.spec import (
    MemorySpec,
    FpgaSpec,
    asic_dual_port,
    asic_single_port,
    asic_fifo,
    spartan7_fpga,
)
from repro.memory.linebuffer import LineBufferConfig, BlockAssignment, FrameBufferConfig
from repro.memory.allocator import (
    allocate_line_buffer,
    allocate_fifo_buffer,
    allocate_frame_buffer,
    allocate_register_buffer,
    derive_frame_buffers,
    dff_realization_threshold,
)

__all__ = [
    "allocate_register_buffer",
    "dff_realization_threshold",
    "FrameBufferConfig",
    "allocate_frame_buffer",
    "derive_frame_buffers",
    "MemorySpec",
    "FpgaSpec",
    "asic_dual_port",
    "asic_single_port",
    "asic_fifo",
    "spartan7_fpga",
    "LineBufferConfig",
    "BlockAssignment",
    "allocate_line_buffer",
    "allocate_fifo_buffer",
]
