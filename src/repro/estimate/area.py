"""Memory (and PE) area estimation for a scheduled accelerator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import PipelineSchedule
from repro.dsl.ast import estimate_operation_count
from repro.estimate.sram_model import DEFAULT_TECH, SramTechModel


@dataclass
class BufferArea:
    """Area breakdown of one line buffer (mm^2)."""

    producer: str
    num_blocks: int
    sram_mm2: float
    dff_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.sram_mm2 + self.dff_mm2


@dataclass
class AreaReport:
    """Accelerator area summary (mm^2) plus the SRAM-size metrics of Fig. 8/9."""

    schedule: PipelineSchedule
    buffers: dict[str, BufferArea] = field(default_factory=dict)
    #: Whole-frame history buffers of temporal pipelines (empty for 2-D ones).
    frame_buffers: dict[str, BufferArea] = field(default_factory=dict)
    pe_mm2: float = 0.0

    @property
    def memory_mm2(self) -> float:
        return sum(b.total_mm2 for b in self.buffers.values()) + self.frame_memory_mm2

    @property
    def frame_memory_mm2(self) -> float:
        return sum(b.total_mm2 for b in self.frame_buffers.values())

    @property
    def total_mm2(self) -> float:
        return self.memory_mm2 + self.pe_mm2

    @property
    def memory_fraction(self) -> float:
        total = self.total_mm2
        return self.memory_mm2 / total if total else 0.0

    @property
    def sram_blocks(self) -> int:
        return sum(b.num_blocks for b in self.buffers.values()) + sum(
            b.num_blocks for b in self.frame_buffers.values()
        )

    @property
    def frame_sram_kbytes(self) -> float:
        """Allocated frame-buffer capacity (0 for purely spatial pipelines)."""
        return self.schedule.frame_buffer_allocated_kbytes

    @property
    def sram_kbytes(self) -> float:
        """The "SRAM size" reported in Fig. 8a/9a: allocated block capacity."""
        return self.schedule.total_allocated_kbytes

    @property
    def sram_data_kbytes(self) -> float:
        """Raw pixel capacity (excludes block-granularity fragmentation)."""
        return self.schedule.total_data_kbytes


def area_report(
    schedule: PipelineSchedule,
    tech: SramTechModel | None = None,
    *,
    sizing: str = "fixed",
) -> AreaReport:
    """Estimate memory and PE area of a scheduled accelerator (mm^2).

    See :func:`repro.estimate.power.power_report` for the meaning of ``sizing``.
    """
    tech = tech or DEFAULT_TECH
    report = AreaReport(schedule=schedule)

    for producer, config in schedule.line_buffers.items():
        ports = config.spec.ports
        if sizing == "custom" and config.blocks:
            sram = sum(
                tech.macro_area_mm2(block.used_bits or config.spec.block_bits, ports)
                for block in config.blocks
            )
        else:
            sram = config.num_blocks * tech.block_area_mm2(config.spec)
        dff = tech.dff_area_mm2(config.dff_pixels, config.spec.pixel_bits) if config.dff_pixels else 0.0
        report.buffers[producer] = BufferArea(
            producer=producer, num_blocks=config.num_blocks, sram_mm2=sram, dff_mm2=dff
        )

    for producer, frame in schedule.frame_buffers.items():
        # Frame buffers are full-frame macros; block-granular fragmentation is
        # marginal at that size, so both sizing modes charge whole blocks.
        report.frame_buffers[producer] = BufferArea(
            producer=producer,
            num_blocks=frame.num_blocks,
            sram_mm2=frame.num_blocks * tech.block_area_mm2(frame.spec),
            dff_mm2=0.0,
        )

    ops = 0
    for stage in schedule.dag.stages():
        if stage.expression is not None:
            ops += estimate_operation_count(stage.expression)
    report.pe_mm2 = tech.pe_area_mm2(ops)
    return report
