"""Tracing overhead guard: instrumentation must be free when disabled.

The observability tentpole threads `trace_span` through the compile hot
path (cache fetch, scheduler, ILP, allocator, RTL).  The contract is that a
disabled tracer costs one attribute read per span site — so the warm-cache
hit path (the latency-critical serving case: a hash lookup, microseconds)
must be no slower with the instrumentation compiled in but switched off
than with full span collection on.  A regression here means someone made
the disabled path allocate.
"""

from __future__ import annotations

import statistics
import time

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.service import CompileEngine
from repro.trace import trace_span

W, H = 480, 320
WARM_CALLS = 200


def _warm_hit_seconds(tracing: bool) -> list[float]:
    """Per-call warm cache-hit latencies on a dedicated engine."""
    engine = CompileEngine(executor="inline", tracing=tracing)
    target = CompileTarget(build_algorithm("canny-m"), image_width=W, image_height=H)
    engine.compile(target)  # cold solve, populates the cache
    samples = []
    for _ in range(WARM_CALLS):
        start = time.perf_counter()
        engine.compile(target)
        samples.append(time.perf_counter() - start)
    engine.shutdown()
    return samples


def test_disabled_tracing_adds_no_warm_hit_latency(benchmark):
    def measure():
        # Interleave the two configurations so ambient machine noise (GC,
        # scheduler preemption) hits both distributions equally.
        disabled = _warm_hit_seconds(tracing=False)
        enabled = _warm_hit_seconds(tracing=True)
        disabled += _warm_hit_seconds(tracing=False)
        enabled += _warm_hit_seconds(tracing=True)
        return statistics.median(disabled), statistics.median(enabled)

    disabled_median, enabled_median = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nWarm cache hit: tracing off {disabled_median * 1e6:.1f} us, "
        f"on {enabled_median * 1e6:.1f} us"
    )
    # The disabled path must not be measurably slower than the enabled one
    # (generous factor + absolute slack: CI machines are noisy and both
    # medians are tens of microseconds).
    assert disabled_median <= enabled_median * 1.5 + 50e-6, (
        f"tracing-disabled warm hit ({disabled_median * 1e6:.1f} us) is slower than "
        f"tracing-enabled ({enabled_median * 1e6:.1f} us) — the no-op span got expensive"
    )


def test_disabled_span_site_is_nanoseconds():
    """Microbenchmark of one disabled `trace_span` site (no collector active)."""
    iterations = 100_000
    start = time.perf_counter()
    for _ in range(iterations):
        with trace_span("solve"):
            pass
    per_call = (time.perf_counter() - start) / iterations
    print(f"\nDisabled span site: {per_call * 1e9:.0f} ns/call")
    # A context-manager round-trip through the shared no-op singleton; even
    # slow CI boxes do this in well under 5 us.
    assert per_call < 5e-6
