"""Span trees survive the process-pool wire boundary losslessly.

Acceptance for the tracing tentpole: a cold solve dispatched to a process
worker must come back with the same span tree (names and nesting) as the
identical solve run inline — the spans are collected in the worker, ride the
wire result, and are absorbed into the parent engine's result and stage
histograms.  ``REPRO_TRACE=0`` must switch worker-side collection off (the
variable is inherited by the pool).
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.service import CompileEngine

from tests.conftest import TEST_HEIGHT, TEST_WIDTH

W, H = TEST_WIDTH, TEST_HEIGHT


def _target() -> CompileTarget:
    return CompileTarget(build_algorithm("unsharp-m"), image_width=W, image_height=H)


def _name_tree(spans) -> list:
    """The shape of a span forest: names and nesting, no timings."""
    return [[span.name, _name_tree(span.children)] for span in spans]


class TestProcessPoolSpanParity:
    def test_cold_process_solve_matches_inline_span_tree(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with CompileEngine(executor="inline", tracing=True) as inline_engine:
            inline_result = inline_engine.submit(_target())
        with CompileEngine(workers=1, executor="process") as process_engine:
            process_result = process_engine.submit(_target())
        assert inline_result.ok and process_result.ok
        assert inline_result.source == "solver"
        assert process_result.source == "solver"
        assert process_result.spans, "worker spans were dropped at the wire boundary"
        assert _name_tree(process_result.spans) == _name_tree(inline_result.spans)

    def test_absorbed_result_keeps_spans_and_feeds_histograms_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with CompileEngine(workers=1, executor="process") as engine:
            result = engine.submit(_target())
            names = {span.name for span in result.spans}
            # RTL emission is on-demand (generate_verilog), so a plain
            # compile traces the cache/solve/allocate stages only.
            assert {"cache", "solve", "allocate"} <= names
            histograms = engine.metrics.stage_histograms()
        for stage in ("cache", "solve", "allocate"):
            assert histograms[stage]["count"] == 1, stage  # exactly once, not zero/twice
        assert histograms["rtl"]["count"] == 0  # pre-seeded family, no emission ran

    def test_repro_trace_0_disables_worker_collection(self):
        # REPRO_TRACE is read when worker processes start, and the pool's
        # forkserver inherits the environment of its *first* use in this
        # interpreter — so the knob needs a fresh interpreter to be testable.
        repo = Path(__file__).resolve().parents[2]
        script = textwrap.dedent(
            f"""
            from repro.algorithms import build_algorithm
            from repro.api import CompileTarget
            from repro.service import CompileEngine

            target = CompileTarget(
                build_algorithm("unsharp-m"), image_width={W}, image_height={H}
            )
            with CompileEngine(workers=1, executor="process") as engine:
                result = engine.submit(target)
                assert result.ok
                assert result.spans == (), result.spans
                assert engine.metrics.stage_histograms()["solve"]["count"] == 0
            print("NO-SPANS-OK")
            """
        )
        env = dict(os.environ, REPRO_TRACE="0", PYTHONPATH=str(repo / "src"))
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "NO-SPANS-OK" in proc.stdout

    def test_thread_backend_matches_inline_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with CompileEngine(executor="inline", tracing=True) as inline_engine:
            inline_result = inline_engine.submit(_target())
        with CompileEngine(workers=1, executor="thread") as thread_engine:
            thread_result = thread_engine.submit(_target())
        assert _name_tree(thread_result.spans) == _name_tree(inline_result.spans)
