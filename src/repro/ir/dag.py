"""The pipeline DAG intermediate representation.

A :class:`PipelineDAG` is the contract between the front end (DSL), the
optimizer (ILP scheduler), the baseline generators, the simulators, and the
RTL generator.  Nodes are :class:`Stage` objects; edges carry the stencil
window a consumer reads from a producer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import GraphError
from repro.ir.stencil import StencilWindow


@dataclass
class Stage:
    """One pipeline stage (one DAG node).

    Attributes
    ----------
    name:
        Unique stage name (also used as the Verilog module/instance name).
    is_input:
        ``True`` for stages fed from off-chip memory (no on-chip producer).
    is_output:
        ``True`` for stages whose result is streamed back off-chip.
    expression:
        Optional DSL expression AST (``repro.dsl.ast.Expr``) describing the
        arithmetic.  The scheduler does not need it; the functional simulator
        and RTL generator do.
    virtual_of:
        Name of the physical stage this stage was split from by the
        line-coalescing rewrite (Sec. 6); ``None`` for physical stages.
    metadata:
        Free-form annotations (e.g. per-stage memory configuration chosen by
        the DSE driver).
    """

    name: str
    is_input: bool = False
    is_output: bool = False
    expression: Any | None = None
    virtual_of: str | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def is_virtual(self) -> bool:
        return self.virtual_of is not None

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "input" if self.is_input else "output" if self.is_output else "stage"
        return f"Stage({self.name!r}, {kind})"


@dataclass(frozen=True)
class Edge:
    """A producer -> consumer dependency annotated with the read stencil."""

    producer: str
    consumer: str
    window: StencilWindow

    @property
    def stencil_height(self) -> int:
        """SH of this edge: rows of the producer image the consumer reads."""
        return self.window.height

    @property
    def stencil_width(self) -> int:
        return self.window.width

    @property
    def temporal_depth(self) -> int:
        """Past frames of the producer this consumer reaches back (0 = spatial)."""
        return self.window.temporal_depth

    @property
    def is_temporal(self) -> bool:
        return self.window.is_temporal


class PipelineDAG:
    """Directed acyclic graph of pipeline stages.

    The class enforces acyclicity lazily (via :func:`repro.ir.validate.validate_dag`)
    so that construction can proceed incrementally; most consumers call
    :meth:`validated` once the graph is complete.
    """

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self._stages: dict[str, Stage] = {}
        self._edges: list[Edge] = []
        self._out_edges: dict[str, list[Edge]] = {}
        self._in_edges: dict[str, list[Edge]] = {}

    # ------------------------------------------------------------------ build
    def add_stage(self, stage: Stage) -> Stage:
        if stage.name in self._stages:
            raise GraphError(f"Duplicate stage name: {stage.name!r}")
        self._stages[stage.name] = stage
        self._out_edges[stage.name] = []
        self._in_edges[stage.name] = []
        return stage

    def add_edge(self, producer: str, consumer: str, window: StencilWindow) -> Edge:
        if producer not in self._stages:
            raise GraphError(f"Unknown producer stage {producer!r}")
        if consumer not in self._stages:
            raise GraphError(f"Unknown consumer stage {consumer!r}")
        if producer == consumer:
            raise GraphError(f"Self edge on stage {producer!r}")
        for existing in self._out_edges[producer]:
            if existing.consumer == consumer:
                raise GraphError(
                    f"Duplicate edge {producer!r} -> {consumer!r}; "
                    "merge stencil windows before adding the edge"
                )
        edge = Edge(producer=producer, consumer=consumer, window=window)
        self._edges.append(edge)
        self._out_edges[producer].append(edge)
        self._in_edges[consumer].append(edge)
        return edge

    # ------------------------------------------------------------------ query
    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def __len__(self) -> int:
        return len(self._stages)

    def stage(self, name: str) -> Stage:
        try:
            return self._stages[name]
        except KeyError:
            raise GraphError(f"Unknown stage {name!r}") from None

    def stages(self) -> list[Stage]:
        """All stages, in insertion order."""
        return list(self._stages.values())

    def stage_names(self) -> list[str]:
        return list(self._stages)

    def edges(self) -> list[Edge]:
        return list(self._edges)

    def edge(self, producer: str, consumer: str) -> Edge:
        for e in self._out_edges.get(producer, []):
            if e.consumer == consumer:
                return e
        raise GraphError(f"No edge {producer!r} -> {consumer!r}")

    def consumers_of(self, name: str) -> list[str]:
        """Names of stages that read the output of ``name`` (the set C_p)."""
        self.stage(name)
        return [e.consumer for e in self._out_edges[name]]

    def producers_of(self, name: str) -> list[str]:
        self.stage(name)
        return [e.producer for e in self._in_edges[name]]

    def out_edges(self, name: str) -> list[Edge]:
        self.stage(name)
        return list(self._out_edges[name])

    def in_edges(self, name: str) -> list[Edge]:
        self.stage(name)
        return list(self._in_edges[name])

    def input_stages(self) -> list[Stage]:
        return [s for s in self._stages.values() if s.is_input]

    def output_stages(self) -> list[Stage]:
        return [s for s in self._stages.values() if s.is_output]

    def multi_consumer_stages(self) -> list[str]:
        """Stages whose output is read by more than one consumer (MC stages, Table 3)."""
        return [name for name in self._stages if len(self._out_edges[name]) > 1]

    # ------------------------------------------------------------- temporal
    def is_temporal(self) -> bool:
        """True when any edge reads past frames (the pipeline needs frame buffers)."""
        return any(edge.window.is_temporal for edge in self._edges)

    def temporal_depth(self) -> int:
        """Deepest frame history any consumer needs (0 for single-frame pipelines)."""
        if not self._edges:
            return 0
        return max(edge.temporal_depth for edge in self._edges)

    def history_depth(self) -> int:
        """Frames of *input* history an output pixel may depend on.

        Temporal depth accumulates along paths: a stage reading its producer
        one frame back, whose producer itself reads the input one frame back,
        depends on input frames two back.  This is the window a per-frame
        replay must carry (:func:`repro.sim.batch.replay_frames_loop`);
        contrast :meth:`temporal_depth`, the deepest *single edge*, which
        sizes the frame buffers.
        """
        from repro.ir.traversal import topological_order

        depth: dict[str, int] = {}
        for name in topological_order(self):
            incoming = self._in_edges[name]
            depth[name] = max(
                (depth[e.producer] + e.temporal_depth for e in incoming), default=0
            )
        return max(depth.values(), default=0)

    def frame_depths(self) -> dict[str, int]:
        """Per-producer frame-buffer depth: past frames its slowest consumer reads.

        Only producers with at least one temporal consumer edge appear; the
        allocator sizes one :class:`repro.memory.linebuffer.FrameBufferConfig`
        of ``depth x height x width`` pixels per entry.
        """
        depths: dict[str, int] = {}
        for edge in self._edges:
            if edge.temporal_depth > 0:
                depths[edge.producer] = max(depths.get(edge.producer, 0), edge.temporal_depth)
        return depths

    def is_single_consumer(self) -> bool:
        """True when every producer has at most one consumer (the ``-s`` algorithms)."""
        return not self.multi_consumer_stages()

    def iter_producer_consumer_pairs(self) -> Iterator[tuple[str, str, StencilWindow]]:
        for edge in self._edges:
            yield edge.producer, edge.consumer, edge.window

    # ------------------------------------------------------------ derivations
    def accessor_stages(self, producer: str) -> list[str]:
        """The set N_p: stages touching the line buffer of ``producer``.

        That is, the producer itself (its write port) plus every consumer.
        """
        return [producer, *self.consumers_of(producer)]

    def copy(self, name: str | None = None) -> "PipelineDAG":
        clone = PipelineDAG(name or self.name)
        for stage in self._stages.values():
            clone.add_stage(
                Stage(
                    name=stage.name,
                    is_input=stage.is_input,
                    is_output=stage.is_output,
                    expression=stage.expression,
                    virtual_of=stage.virtual_of,
                    metadata=dict(stage.metadata),
                )
            )
        for edge in self._edges:
            clone.add_edge(edge.producer, edge.consumer, edge.window)
        return clone

    def canonical_form(self) -> dict:
        """Canonical, order-independent serialization of the graph structure.

        Two DAGs that describe the same pipeline — same stages, same edges,
        same stencil windows, same stage arithmetic — produce the same
        canonical form regardless of the order in which stages and edges were
        added or the pipeline's display :attr:`name`.  This is the basis of
        the content-addressed compile cache
        (:mod:`repro.service.fingerprint`).

        Free-form :attr:`Stage.metadata` annotations are deliberately
        excluded: they do not influence scheduling, simulation or RTL
        generation.  Expressions are serialized through their stable ``str``
        form.

        Stencil windows serialize as the classic 4-element
        ``[min_dx, max_dx, min_dy, max_dy]`` list; edges with a temporal
        extent append ``min_dt, max_dt`` (6 elements).  Purely spatial
        pipelines therefore keep the exact canonical form — and the exact
        compile fingerprint — they had before the time axis existed.
        """
        stages = [
            {
                "name": stage.name,
                "is_input": stage.is_input,
                "is_output": stage.is_output,
                "virtual_of": stage.virtual_of,
                "expression": None if stage.expression is None else str(stage.expression),
            }
            for stage in sorted(self._stages.values(), key=lambda s: s.name)
        ]
        edges = [
            {
                "producer": edge.producer,
                "consumer": edge.consumer,
                "window": window_to_list(edge.window),
            }
            for edge in sorted(self._edges, key=lambda e: (e.producer, e.consumer))
        ]
        return {"stages": stages, "edges": edges}

    def validated(self) -> "PipelineDAG":
        """Run structural validation and return self (chaining helper)."""
        from repro.ir.validate import validate_dag

        validate_dag(self)
        return self

    def summary(self) -> str:
        """Human-readable one-line-per-stage description."""
        lines = [f"pipeline {self.name}: {len(self)} stages, {len(self._edges)} edges"]
        for stage in self._stages.values():
            consumers = ", ".join(
                f"{e.consumer}[{e.window}]" for e in self._out_edges[stage.name]
            )
            marker = "(input) " if stage.is_input else "(output) " if stage.is_output else ""
            lines.append(f"  {stage.name} {marker}-> {consumers or '(off-chip)'}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PipelineDAG({self.name!r}, stages={len(self)}, edges={len(self._edges)})"


def window_to_list(window: StencilWindow) -> list[int]:
    """Canonical list form of a stencil window.

    Spatial windows keep the historical 4-element
    ``[min_dx, max_dx, min_dy, max_dy]`` quadruple (so fingerprints and wire
    payloads of 2-D pipelines are byte-stable across the temporal-IR
    refactor); temporal windows append ``min_dt, max_dt``.
    """
    quad = [window.min_dx, window.max_dx, window.min_dy, window.max_dy]
    if window.is_temporal:
        return quad + [window.min_dt, window.max_dt]
    return quad


def window_from_list(values: "list[int] | tuple[int, ...]") -> StencilWindow:
    """Inverse of :func:`window_to_list`; accepts both 4- and 6-element forms."""
    if not isinstance(values, (list, tuple)) or len(values) not in (4, 6):
        raise GraphError(
            "Stencil window list must be [min_dx, max_dx, min_dy, max_dy] "
            "optionally followed by [min_dt, max_dt]"
        )
    return StencilWindow(*(int(v) for v in values))


def merge_parallel_edges(edges: Iterable[Edge]) -> dict[tuple[str, str], StencilWindow]:
    """Combine several reads of the same producer by the same consumer.

    The DSL front end produces one point-reference per mention of a producer;
    this helper unions them into the single rectangular window used on the edge.
    """
    merged: dict[tuple[str, str], StencilWindow] = {}
    for edge in edges:
        key = (edge.producer, edge.consumer)
        if key in merged:
            merged[key] = merged[key].union(edge.window)
        else:
            merged[key] = edge.window
    return merged
