"""Unit tests for the line-coalescing DAG rewrite (Algorithm 1)."""

from repro.core.coalescing import coalesce_dag, coalescing_factors, _split_heights
from repro.memory.spec import asic_dual_port, asic_single_port

from tests.conftest import TEST_WIDTH, build_chain, build_paper_example

W = TEST_WIDTH


class TestFactors:
    def test_dual_port_small_width_allows_two(self):
        factors = coalescing_factors(build_chain(3), W, asic_dual_port())
        assert factors["K0"] == 2
        assert factors["K1"] == 2
        assert factors["K2"] == 1  # output stage: no consumers

    def test_single_port_disables_coalescing(self):
        factors = coalescing_factors(build_chain(3), W, asic_single_port())
        assert all(f == 1 for f in factors.values())

    def test_large_lines_disable_coalescing(self):
        factors = coalescing_factors(build_chain(3), 1920, asic_dual_port())
        assert all(f == 1 for f in factors.values())


class TestSplitHeights:
    def test_paper_example_split(self):
        assert _split_heights(3, 2) == [2, 1]

    def test_exact_split(self):
        assert _split_heights(4, 2) == [2, 2]

    def test_no_split_needed(self):
        assert _split_heights(2, 3) == [2]


class TestRewrite:
    def test_no_rewrite_when_factor_one(self):
        original = build_chain(3)
        result = coalesce_dag(original, 1920, asic_dual_port())
        assert result.groups == []
        assert len(result.dag) == len(original)

    def test_tall_consumer_is_split(self):
        dag = build_chain(2, stencil=5)  # K1 reads 5 lines of K0
        result = coalesce_dag(dag, W, asic_dual_port())
        groups = result.virtual_groups_of("K1")
        assert len(groups) == 1
        group = groups[0]
        # ceil(5 / 2) = 3 virtual readers; the physical stage is the first.
        assert len(group.virtual_stages) == 3
        assert group.virtual_stages[0] == "K1"
        heights = [group.line_ranges[v][1] for v in group.virtual_stages]
        assert heights == [2, 2, 1]
        assert sum(heights) == 5

    def test_virtual_stages_marked(self):
        dag = build_chain(3, stencil=3)
        result = coalesce_dag(dag, W, asic_dual_port())
        virtual = [s for s in result.dag.stages() if s.is_virtual]
        assert virtual, "3-line windows with factor 2 must create virtual readers"
        for stage in virtual:
            assert stage.virtual_of is not None

    def test_virtual_edges_read_producer(self):
        dag = build_chain(2, stencil=4)
        result = coalesce_dag(dag, W, asic_dual_port())
        group = result.virtual_groups_of("K1")[0]
        for virtual_name in group.virtual_stages[1:]:
            edge = result.dag.edge("K0", virtual_name)
            offset, height = group.line_ranges[virtual_name]
            assert edge.window.height == height
            assert offset >= 2

    def test_synchronized_sets(self):
        dag = build_chain(2, stencil=5)
        result = coalesce_dag(dag, W, asic_dual_port())
        sets = result.synchronized_sets()
        assert len(sets) == 1
        assert set(sets[0]) == {"K1", *result.virtual_groups_of("K1")[0].virtual_stages[1:]}

    def test_paper_example_rewrite_keeps_stage_count_of_originals(self):
        dag = build_paper_example()
        result = coalesce_dag(dag, W, asic_dual_port())
        original_names = set(dag.stage_names())
        assert original_names <= set(result.dag.stage_names())
