"""The compile engine: cached, deduplicated, parallel compilation service.

:class:`CompileEngine` is the serving-layer entry point that wraps
:func:`repro.core.compile_pipeline`:

* every schedule solve goes through a shared :class:`CompileCache`, so
  repeated requests (interactive clients, DSE sweeps, the auto-coalescing
  fallback) are answered without re-running the ILP;
* identical in-flight requests are deduplicated — concurrent batches that
  contain the same design point trigger exactly one solve;
* batches fan out over a thread pool (the HiGHS backend releases the GIL, so
  independent solves overlap on multi-core hosts);
* per-request latency and hit-rate metrics are recorded
  (:class:`repro.service.metrics.EngineMetrics`).

Single requests submitted through :meth:`CompileEngine.submit` (or the
:meth:`CompileEngine.compile` convenience wrapper) run inline on the calling
thread — the pool is created lazily and only for batches, so a cache-only
engine costs nothing to construct.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from typing import Iterable, Sequence

from repro.core.compiler import CompiledAccelerator, compile_pipeline
from repro.core.scheduler import SchedulerOptions
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec
from repro.service.cache import CompileCache, DiskCacheStore
from repro.service.fingerprint import compile_fingerprint
from repro.service.jobs import (
    SOURCE_DEDUPLICATED,
    BatchResult,
    CompileRequest,
    CompileResult,
)
from repro.service.metrics import EngineMetrics, RequestTrace


def default_worker_count() -> int:
    """Pool size used when the caller does not specify one."""
    return min(8, os.cpu_count() or 1)


class CompileEngine:
    """A compilation service instance: cache + worker pool + metrics.

    Parameters
    ----------
    workers:
        Thread-pool size for batch submissions (default:
        :func:`default_worker_count`).
    cache:
        A :class:`CompileCache` to share between engines; one is created when
        omitted.
    cache_dir:
        Convenience: when given (and ``cache`` is not), the created cache is
        backed by a :class:`DiskCacheStore` in this directory, so schedules
        persist across processes.
    max_cache_entries:
        LRU capacity of the created cache.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        cache: CompileCache | None = None,
        cache_dir: str | os.PathLike | None = None,
        max_cache_entries: int = 512,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers or default_worker_count()
        if cache is None:
            store = DiskCacheStore(cache_dir) if cache_dir is not None else None
            cache = CompileCache(max_entries=max_cache_entries, store=store)
        self.cache = cache
        self.metrics = EngineMetrics()
        self._pool: ThreadPoolExecutor | None = None
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "CompileEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the worker pool (the cache and its disk store stay usable)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-compile"
                )
            return self._pool

    # ------------------------------------------------------------ single job
    def compile(
        self,
        dag: PipelineDAG,
        *,
        image_width: int,
        image_height: int,
        memory_spec: MemorySpec | None = None,
        coalescing: bool = False,
        options: SchedulerOptions | None = None,
        label: str = "",
    ) -> CompiledAccelerator:
        """Drop-in cached replacement for :func:`repro.core.compile_pipeline`."""
        request = CompileRequest(
            dag=dag,
            image_width=image_width,
            image_height=image_height,
            memory_spec=memory_spec,
            options=options,
            coalescing=coalescing,
            label=label,
        )
        return self.submit(request).unwrap()

    def submit(self, request: CompileRequest) -> CompileResult:
        """Run one request inline on the calling thread, via the cache."""
        resolved = request.resolved()
        fingerprint = self._fingerprint(resolved)
        result = self._execute(resolved, fingerprint)
        self.metrics.record(self._trace(result))
        return result

    # ----------------------------------------------------------------- batch
    def submit_batch(self, requests: Sequence[CompileRequest] | Iterable[CompileRequest]) -> BatchResult:
        """Compile many requests concurrently; results come back in order.

        Requests with identical fingerprints — within the batch or already
        in flight from a concurrent batch — share a single execution; the
        sharers are reported with ``source="deduplicated"``.  A failing
        request yields an error-carrying :class:`CompileResult` instead of
        raising, so one infeasible design point cannot kill a sweep.
        """
        requests = list(requests)
        started = time.perf_counter()
        pool = self._ensure_pool()

        slots: list[tuple[CompileRequest, str, Future, bool]] = []
        batch_futures: dict[str, Future] = {}
        for request in requests:
            resolved = request.resolved()
            fingerprint = self._fingerprint(resolved)
            # Batch-local duplicates always share one execution (deterministic,
            # immune to the owner finishing before the twin is enqueued).
            future = batch_futures.get(fingerprint)
            owner = future is None
            if owner:
                with self._lock:
                    future = self._inflight.get(fingerprint)
                    owner = future is None
                    if owner:
                        future = pool.submit(self._execute, resolved, fingerprint)
                        self._inflight[fingerprint] = future
                if owner:
                    # Registered outside the lock: if the job already finished,
                    # the callback runs inline and must be able to take the lock.
                    future.add_done_callback(
                        lambda _f, fp=fingerprint: self._clear_inflight(fp)
                    )
                batch_futures[fingerprint] = future
            slots.append((resolved, fingerprint, future, owner))

        results: list[CompileResult] = []
        for resolved, fingerprint, future, owner in slots:
            outcome: CompileResult = future.result()
            if owner:
                result = outcome
            else:
                result = replace(
                    outcome, request=resolved, source=SOURCE_DEDUPLICATED, seconds=0.0
                )
            self.metrics.record(self._trace(result))
            results.append(result)

        self.metrics.record_batch()
        return BatchResult(
            results=results,
            seconds=time.perf_counter() - started,
            cache_stats=self.cache.stats.snapshot(),
        )

    # ------------------------------------------------------------- internals
    def _fingerprint(self, resolved: CompileRequest) -> str:
        return compile_fingerprint(
            resolved.dag,
            resolved.image_width,
            resolved.image_height,
            resolved.memory_spec,
            resolved.options,
        )

    def _clear_inflight(self, fingerprint: str) -> None:
        with self._lock:
            self._inflight.pop(fingerprint, None)

    def _execute(self, resolved: CompileRequest, fingerprint: str) -> CompileResult:
        started = time.perf_counter()
        try:
            accelerator = compile_pipeline(
                resolved.dag,
                image_width=resolved.image_width,
                image_height=resolved.image_height,
                memory_spec=resolved.memory_spec,
                options=resolved.options,
                cache=self.cache,
            )
        except Exception as exc:  # one bad design point must not kill a batch
            return CompileResult(
                request=resolved,
                fingerprint=fingerprint,
                error=f"{type(exc).__name__}: {exc}",
                seconds=time.perf_counter() - started,
            )
        sources = accelerator.metadata.get("schedule_sources", ("solver",))
        if all(source in ("memory", "disk") for source in sources):
            source = "disk" if "disk" in sources else "memory"
        else:
            source = "solver"
        return CompileResult(
            request=resolved,
            fingerprint=fingerprint,
            accelerator=accelerator,
            source=source,
            seconds=time.perf_counter() - started,
        )

    def _trace(self, result: CompileResult) -> RequestTrace:
        return RequestTrace(
            label=result.request.label or result.request.dag.name,
            fingerprint=result.fingerprint,
            source=result.source,
            seconds=result.seconds,
            ok=result.ok,
        )

    # ------------------------------------------------------------ inspection
    @property
    def hit_rate(self) -> float:
        return self.cache.stats.hit_rate

    def describe(self) -> str:
        stats = self.cache.stats
        return (
            f"CompileEngine(workers={self.workers}, cache={len(self.cache)}/{self.cache.max_entries} "
            f"entries, hits={stats.hits}, misses={stats.misses}, hit_rate={stats.hit_rate:.1%})"
        )
