#!/usr/bin/env python3
"""Solver racing and warm starts: the solve-acceleration layer end to end.

Three acts, using the paper's canny-m pipeline:

1. **Race** — schedule 1080p cold with ``backend="race"``: the pure-Python
   branch-and-bound and SciPy's HiGHS solve the same model concurrently and
   the first finisher wins (without SciPy the race degrades to the Python
   backend alone).  The ``ilp`` trace span records who won and by how much.
2. **Warm start** — re-schedule with a hint from a 480p solve of the same
   pipeline: the neighbor's solution transfers across resolutions and is
   certified optimal by the longest-walk bound, skipping the ILP entirely.
3. **Engine wiring** — the same thing happens automatically through a
   :class:`CompileEngine`: compiling 480p warms the cache, the 1080p compile
   misses exactly but warm-starts from the cached neighbor, and the
   ``neighbor_*`` / ``ilp_warm_*`` counters surface it.

Run:  python examples/solver_racing.py
"""

from __future__ import annotations

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.core.scheduler import SchedulerOptions, schedule_pipeline
from repro.core.warmstart import hint_from_schedule
from repro.ilp.solver import available_backends
from repro.memory.spec import asic_dual_port
from repro.service import CompileEngine
from repro.trace import collect_spans, flatten_spans

W_SMALL, H_SMALL = 480, 320
W_LARGE, H_LARGE = 1920, 1080


def main() -> None:
    dag = build_algorithm("canny-m")
    spec = asic_dual_port()
    print(f"backends available: {', '.join(available_backends())}")

    # -- Act 1: race the backends on a cold 1080p solve ----------------------
    race_options = SchedulerOptions(backend="race")
    trace = collect_spans()
    with trace:
        raced = schedule_pipeline(dag, W_LARGE, H_LARGE, spec, race_options)
    ilp_spans = [s for s in flatten_spans(trace.spans) if s.name == "ilp"]
    for span in ilp_spans:
        winner = span.attrs.get("race_winner", "n/a")
        margin = span.attrs.get("race_margin_seconds")
        print(
            f"race: winner={winner}"
            + (f", margin {margin * 1000:.1f} ms" if margin is not None else "")
            + f", objective {raced.solver_stats['objective']:.0f}"
        )
    assert raced.solver_stats["backend"].startswith(("race", "python"))

    # -- Act 2: warm-start the same solve from a 480p neighbor ---------------
    options = SchedulerOptions()
    small = schedule_pipeline(dag, W_SMALL, H_SMALL, spec, options)
    cold = schedule_pipeline(dag, W_LARGE, H_LARGE, spec, options)
    warm = schedule_pipeline(
        dag, W_LARGE, H_LARGE, spec, options, warm_hint=hint_from_schedule(small)
    )
    print(
        f"warm start: {warm.solver_stats['warm_start']} "
        f"(cold solved {cold.solver_stats['ilp_variables']} ILP vars, "
        f"warm solved {warm.solver_stats['ilp_variables']})"
    )
    assert warm.solver_stats["warm_start"] == "certificate"
    assert warm.start_cycles == cold.start_cycles, "warm must not change the answer"

    # -- Act 3: the engine does this by itself through its cache -------------
    engine = CompileEngine()
    engine.compile(CompileTarget(dag, image_width=W_SMALL, image_height=H_SMALL))
    compiled = engine.compile(
        CompileTarget(dag, image_width=W_LARGE, image_height=H_LARGE)
    )
    stats = engine.cache.stats.snapshot()
    print(
        f"engine: 1080p compile warm-started as "
        f"{compiled.schedule.solver_stats.get('warm_start', 'none')!r} "
        f"(neighbor_hits={stats.neighbor_hits}, neighbor_misses={stats.neighbor_misses})"
    )
    assert compiled.schedule.solver_stats.get("warm_start") == "certificate"
    assert stats.neighbor_hits >= 1
    assert compiled.schedule.start_cycles == cold.start_cycles
    print("OK: raced, warm-started, and engine-cached solves all agree")


if __name__ == "__main__":
    main()
