"""Unit tests for the ILP model container."""

import pytest

from repro.errors import ILPError
from repro.ilp.model import Model


class TestModel:
    def test_variable_kinds(self):
        model = Model()
        x = model.add_var("x")
        b = model.add_binary_var("b")
        i = model.add_integer_var("i", lb=2, ub=9)
        assert not x.integer
        assert b.integer and b.lb == 0 and b.ub == 1
        assert i.integer and i.lb == 2

    def test_duplicate_variable_name(self):
        model = Model()
        model.add_var("x")
        with pytest.raises(ILPError):
            model.add_var("x")

    def test_invalid_bounds(self):
        model = Model()
        with pytest.raises(ILPError):
            model.add_var("x", lb=5, ub=1)

    def test_bad_sense(self):
        with pytest.raises(ILPError):
            Model(sense="maximize")

    def test_objective_requires_linear_expression(self):
        model = Model()
        x = model.add_var("x")
        model.set_objective(x)  # a bare variable is accepted
        with pytest.raises(ILPError):
            model.set_objective("x + 1")

    def test_objective_sense_override(self):
        model = Model(sense="min")
        x = model.add_var("x")
        model.set_objective(x + 0, sense="max")
        assert model.sense == "max"

    def test_add_constraint_requires_constraint(self):
        model = Model()
        model.add_var("x")
        with pytest.raises(ILPError):
            model.add_constraint(True)  # type: ignore[arg-type]

    def test_foreign_variable_rejected(self):
        model_a = Model("a")
        model_b = Model("b")
        x = model_a.add_var("x")
        model_b.add_var("y")
        with pytest.raises(ILPError):
            model_b.add_constraint(x >= 1)

    def test_counts(self):
        model = Model()
        x = model.add_integer_var("x")
        y = model.add_var("y")
        model.add_constraint(x + y >= 1)
        assert model.num_variables == 2
        assert model.num_integer_variables == 1
        assert model.num_constraints == 1

    def test_is_feasible(self):
        model = Model()
        x = model.add_integer_var("x", lb=0, ub=10)
        y = model.add_var("y", lb=0)
        model.add_constraint(x + y >= 3)
        assert model.is_feasible({x: 2, y: 1})
        assert not model.is_feasible({x: 2, y: 0.5})  # violates constraint
        assert not model.is_feasible({x: 2.5, y: 1})  # integrality
        assert not model.is_feasible({x: -1, y: 5})  # bound
        assert not model.is_feasible({x: 2})  # missing value

    def test_objective_value(self):
        model = Model()
        x = model.add_var("x")
        model.set_objective(2 * x + 1)
        assert model.objective_value({x: 4}) == 9

    def test_named_constraint(self):
        model = Model()
        x = model.add_var("x")
        constraint = model.add_constraint(x >= 1, name="lower")
        assert constraint.name == "lower"
