#!/usr/bin/env python3
"""Admission control end to end: auth, rate limits, queue-full, autoscaling.

Boots the HTTP front with every admission knob turned on — bearer-token
authentication, a per-identity token bucket, and a bounded engine queue —
then drives each rejection path the way a misbehaving client would hit it:

* no/garbage token -> 401 (``ServiceError.status == 401``);
* a burst past the rate limit -> 429 with ``reason: "rate-limited"`` and a
  precise ``Retry-After``;
* a saturated engine (tiny ``max_pending``, solver gated on an event so the
  demo is deterministic) -> 429 with ``reason: "queue-full"`` while the
  admitted work still completes;
* an autoscaling engine (``executor="thread:auto"``) growing its fleet under
  a batch and reporting ``scale_ups``/worker counts via ``/v1/metrics``.

The same checks double as the CI smoke for the admission layer, so every
assertion here is a service-level guarantee.  For a standalone hardened
server, run::

    python -m repro.service.http --port 8080 --auth-token-file tokens.txt \
        --rate-limit 10:20 --max-pending 64 --executor process:auto

Run:  python examples/admission_control.py
"""

from __future__ import annotations

import tempfile
import threading
import time

import repro.service.engine as engine_module
from repro import CompileEngine, CompileTarget
from repro.algorithms import build_algorithm
from repro.service import (
    RateLimiter,
    ServiceClient,
    ServiceError,
    TokenAuthenticator,
    TokenRecord,
    start_server,
)


def targets(count: int) -> list[CompileTarget]:
    base = build_algorithm("unsharp-m")
    return [
        CompileTarget(base, image_width=480 + 2 * i, image_height=320)
        for i in range(count)
    ]


def expect_rejection(fn, status: int, reason: str | None = None) -> ServiceError:
    try:
        fn()
    except ServiceError as exc:
        assert exc.status == status, (exc.status, status)
        if reason is not None:
            assert exc.body.get("reason") == reason, exc.body
        return exc
    raise AssertionError(f"expected HTTP {status}, got a 2xx")


def main() -> None:
    # --- authentication + rate limiting -----------------------------------
    authenticator = TokenAuthenticator(
        [
            TokenRecord("alice", "alice-secret"),
            TokenRecord("bob", "bob-secret"),
            TokenRecord("carol", "carol-secret"),
        ]
    )
    limiter = RateLimiter(rate=2.0, burst=2.0)  # 2 rps sustained, bursts of 2
    engine = CompileEngine(workers=1, executor="thread", max_pending=1)
    server = start_server(engine, authenticator=authenticator, rate_limiter=limiter)
    try:
        anonymous = ServiceClient(port=server.port)
        alice = ServiceClient(port=server.port, token="alice-secret")
        bob = ServiceClient(port=server.port, token="bob-secret")
        # carol's untouched rate bucket keeps the queue-full demo below from
        # tripping the *rate* limiter instead of the queue bound.
        carol = ServiceClient(port=server.port, token="carol-secret")
        target = targets(1)[0]

        print(f"service on http://127.0.0.1:{server.port}  {anonymous.health()}")
        expect_rejection(lambda: anonymous.compile(target), 401)
        expect_rejection(
            lambda: ServiceClient(port=server.port, token="wrong").compile(target), 401
        )
        print("  401: anonymous and garbage tokens rejected (healthz stays open)")

        assert alice.compile(target)["ok"]
        assert alice.compile(target)["source"] in ("memory", "disk")
        throttled = expect_rejection(
            lambda: alice.compile(target), 429, reason="rate-limited"
        )
        print(
            f"  429: alice throttled after her burst of 2 "
            f"(Retry-After {throttled.retry_after:.0f}s); bob is unaffected:",
            bob.compile(target)["source"],
        )

        # --- queue-full: saturate the engine deterministically -------------
        gate = threading.Event()
        real = engine_module.compile_pipeline

        def gated(job_target, cache=None):  # hold solves until the demo says go
            gate.wait(30)
            return real(job_target, cache=cache)

        engine_module.compile_pipeline = gated
        try:
            cold = targets(4)[1:]  # fresh fingerprints: real solver work
            inflight = []
            workers = [
                threading.Thread(
                    target=lambda t=t: inflight.append(carol.compile(t))
                )
                for t in cold[:2]  # 1 dispatched + 1 queued = saturation
            ]
            for worker in workers:
                worker.start()
            while engine.admission_stats()["queue_depth"] < 1:
                time.sleep(0.01)
            time.sleep(1.0)  # refill carol's bucket so only the *queue* rejects
            shed = expect_rejection(
                lambda: carol.compile(cold[2]), 429, reason="queue-full"
            )
            print(
                f"  429: queue full at max_pending=1 "
                f"(Retry-After {shed.retry_after:.0f}s) while in-flight work runs"
            )
            gate.set()
            for worker in workers:
                worker.join()
            assert all(result["ok"] for result in inflight)
            metrics = bob.metrics()
            assert metrics["rejected_total"] == 1 and metrics["queue_depth"] == 0
            print(
                f"  metrics: rejected_total={metrics['rejected_total']} "
                f"throttled_total={metrics['throttled_total']} "
                f"queue_depth={metrics['queue_depth']} auth={metrics['auth']}"
            )
        finally:
            gate.set()
            engine_module.compile_pipeline = real
    finally:
        server.stop()
        engine.shutdown()

    # --- autoscaling fleet --------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="imagen-admission-") as cache_dir:
        auto_engine = CompileEngine(
            workers=2, executor="thread:auto", cache_dir=cache_dir
        )
        auto_server = start_server(auto_engine)
        try:
            client = ServiceClient(port=auto_server.port)
            batch = client.compile_batch(targets(4))
            assert all(result["ok"] for result in batch["results"])
            metrics = client.metrics()
            assert metrics["executor"] == "thread:auto"
            assert 1 <= metrics["workers"] <= metrics["max_workers"] == 2
            assert metrics["scale_ups"] >= 1
            print(
                f"  autoscaler: fleet grew to {metrics['workers']}/"
                f"{metrics['max_workers']} workers "
                f"(scale_ups={metrics['scale_ups']}) for a 4-target batch"
            )
        finally:
            auto_server.stop()
            auto_engine.shutdown()
    print("admission control smoke ok")


if __name__ == "__main__":
    main()
