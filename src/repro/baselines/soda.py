"""SODA-style baseline: FIFO (dual-port SRAM) line buffers with FIFO splitting.

SODA [Chi et al. 2018] implements each line buffer as a chain of FIFOs.  The
reuse distance of the tallest consumer determines the chain depth; the final
partial line (a handful of pixels) is kept in DFF shift registers rather than
SRAM, which is why SODA's raw SRAM capacity is the smallest of all designs.
When a producer has several consumers, every FIFO is split into one smaller
FIFO per consumer (Fig. 4b), keeping capacity but multiplying the number of
blocks; and since a FIFO by construction performs one push and one pop every
cycle, every block serves two accesses per cycle, which is where SODA's power
premium comes from (Sec. 8.4).
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.base import BaselineGenerator
from repro.core.schedule import PipelineSchedule
from repro.errors import BaselineError
from repro.ir.dag import PipelineDAG
from repro.memory.allocator import allocate_fifo_buffer
from repro.memory.spec import MemorySpec, asic_fifo


class SodaGenerator(BaselineGenerator):
    """Generate a SODA-style (FIFO) accelerator design."""

    name = "soda"

    def generate(
        self,
        dag: PipelineDAG,
        image_width: int,
        image_height: int,
        memory_spec: MemorySpec | None = None,
    ) -> PipelineSchedule:
        if memory_spec is None:
            memory_spec = asic_fifo()
        else:
            if memory_spec.ports < 2:
                raise BaselineError(
                    "SODA implements line buffers as FIFOs, which require dual-port "
                    f"memory blocks; the supplied spec has {memory_spec.ports} port(s)"
                )
            if memory_spec.style != "fifo" or memory_spec.allow_coalescing:
                # Adapt, but idempotently: a spec already in FIFO form (e.g.
                # the asic_fifo preset) is used as-is, without renaming.
                memory_spec = replace(
                    memory_spec,
                    name=f"{memory_spec.name}-fifo",
                    style="fifo",
                    allow_coalescing=False,
                )

        starts = self.asap_schedule(dag, image_width)
        line_buffers = {}
        for producer in dag.stage_names():
            edges = dag.out_edges(producer)
            if not edges:
                continue
            max_height = max(edge.window.height for edge in edges)
            max_width = max(edge.window.width for edge in edges)
            reuse_lines = max(0, max_height - 1)
            reader_heights = {e.consumer: e.window.height for e in edges}
            line_buffers[producer] = allocate_fifo_buffer(
                producer,
                image_width,
                reuse_lines,
                memory_spec,
                num_consumers=len(edges),
                tail_pixels=max(2, max_width),
                reader_heights=reader_heights,
            )

        return PipelineSchedule(
            dag=dag,
            image_width=image_width,
            image_height=image_height,
            memory_spec=memory_spec,
            start_cycles=starts,
            line_buffers=line_buffers,
            generator="soda",
            coalesce_factors={name: 1 for name in dag.stage_names()},
            solver_stats={"strategy": "fifo+asap"},
        )
