"""Stdlib-only HTTP/JSON serving front over :class:`CompileEngine`.

This is the network surface of the compilation service: a
:class:`http.server.ThreadingHTTPServer` whose handler threads submit
decoded :class:`repro.api.CompileTarget` requests to one shared engine, so
every HTTP client transparently gets the engine's content-addressed cache,
in-flight deduplication and metrics.  Several service processes may point
``--cache-dir`` at one shared volume: disk writes are atomic per writer and
fingerprint-addressed, so they cooperate instead of corrupting each other.

Endpoints
---------
* ``POST /v1/compile`` — body: one wire-format target
  (:func:`repro.service.wire.target_to_wire`).  Responds 200 with
  :func:`repro.service.wire.result_to_wire` output; compile *failures* are
  ``ok: false`` JSON (the request was served), while undecodable payloads are
  400s.
* ``POST /v1/batch`` — body: ``{"targets": [...]}``.  Responds 200 with
  ordered per-item results; an undecodable or failing item yields an
  error-carrying entry in its slot, never a 500 for the whole batch.
* ``GET /v1/metrics`` — engine request counters
  (:meth:`repro.service.metrics.EngineMetrics.summary`).
* ``GET /v1/cache/stats`` — cache occupancy and hit/miss counters.
* ``GET /healthz`` — liveness probe.

Run a server::

    PYTHONPATH=src python -m repro.service.http --port 8080 \
        --cache-dir .imagen-cache --workers 4 --executor process

or embed one (tests, examples) with :func:`start_server`, and talk to it with
the :class:`ServiceClient` helper (stdlib ``http.client``, no dependencies).
``--executor`` selects the engine's execution backend (default: the
``REPRO_EXECUTOR`` environment variable, falling back to ``thread``); the
``process`` backend keeps compiles parallel even on the pure-Python solver
fallback.  ``--cache-max-bytes``/``--cache-max-age-seconds`` bound a shared
disk cache volume (LRU-by-mtime eviction on save).
"""

from __future__ import annotations

import argparse
import json
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api.target import CompileTarget
from repro.errors import ReproError
from repro.service.cache import CompileCache, DiskCacheStore
from repro.service.engine import CompileEngine
from repro.service.executor import EXECUTOR_NAMES, validate_worker_count
from repro.service.wire import (
    WireFormatError,
    batch_result_to_wire,
    result_to_wire,
    target_from_wire,
    target_to_wire,
)

#: Upper bound on accepted request bodies; a pipeline DAG is a few KB, so
#: anything near this is hostile or corrupt.
MAX_REQUEST_BYTES = 8 * 1024 * 1024

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8080


class ServiceError(ReproError):
    """A non-2xx response from the compile service."""


class CompileServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's shared :class:`CompileEngine`."""

    server_version = "ImaGenCompileService/1.0"
    # HTTP/1.1 keeps client connections alive between requests; every
    # response below carries an exact Content-Length, as 1.1 requires.
    protocol_version = "HTTP/1.1"

    @property
    def engine(self) -> CompileEngine:
        return self.server.engine

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if self.server.verbose:
            super().log_message(format, *args)

    # ----------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/healthz":
            self._send(200, {"status": "ok"})
        elif self.path == "/v1/metrics":
            summary = self.engine.metrics.summary()
            summary["executor"] = self.engine.executor_name
            summary["workers"] = self.engine.workers
            self._send(200, summary)
        elif self.path == "/v1/cache/stats":
            self._send(200, self._cache_stats())
        else:
            self._send(404, {"error": f"Unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/v1/compile":
            route = self._compile_one
        elif self.path == "/v1/batch":
            route = self._compile_batch
        else:
            self._send(404, {"error": f"Unknown path {self.path!r}"})
            return
        payload = self._read_json()
        if payload is None:
            return  # error response already sent
        try:
            route(payload)
        except WireFormatError as exc:
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - errors must be JSON, not resets
            # The service contract is "errors come back as JSON": an internal
            # failure becomes a 500 body instead of an opaque dropped socket.
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _compile_one(self, payload) -> None:
        # Accept the bare wire target, or {"target": {...}} for symmetry with
        # the batch endpoint.
        if isinstance(payload, dict) and "target" in payload:
            payload = payload["target"]
        target = target_from_wire(payload)
        self._send(200, result_to_wire(self.engine.submit(target)))

    def _compile_batch(self, payload) -> None:
        if not isinstance(payload, dict) or not isinstance(payload.get("targets"), list):
            raise WireFormatError('Batch body must be {"targets": [...]}')
        decoded: list[CompileTarget | None] = []
        decode_errors: dict[int, str] = {}
        for index, item in enumerate(payload["targets"]):
            try:
                decoded.append(target_from_wire(item))
            except WireFormatError as exc:
                decoded.append(None)
                decode_errors[index] = str(exc)
        batch = self.engine.submit_batch([t for t in decoded if t is not None])
        body = batch_result_to_wire(batch)
        # Splice per-item decode failures back into request order: a bad
        # item degrades to an error entry in its slot, not a 500.
        compiled = iter(body["results"])
        body["results"] = [
            {"ok": False, "error": decode_errors[i], "fingerprint": "", "source": "error", "seconds": 0.0}
            if target is None
            else next(compiled)
            for i, target in enumerate(decoded)
        ]
        self._send(200, body)

    # -------------------------------------------------------------- plumbing
    def _cache_stats(self) -> dict:
        cache = self.engine.cache
        stats = {
            "entries": len(cache),
            "max_entries": cache.max_entries,
            **cache.stats.as_dict(),
        }
        if cache.store is not None:
            stats["disk_entries"] = len(cache.store)
            stats["disk_directory"] = str(cache.store.directory)
            if cache.store.bounded:
                stats["disk_bytes"] = cache.store.total_bytes()
                stats["disk_max_bytes"] = cache.store.max_bytes
                stats["disk_max_age_seconds"] = cache.store.max_age_seconds
        return stats

    def _read_json(self):
        """Parse the request body; on failure send the 4xx and return None."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = -1
        if length < 0:
            self._send(400, {"error": "Missing or invalid Content-Length"})
            return None
        if length > MAX_REQUEST_BYTES:
            self._send(413, {"error": f"Request body exceeds {MAX_REQUEST_BYTES} bytes"})
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._send(400, {"error": "Request body is not valid JSON"})
            return None

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # Error paths may not have drained the request body; carrying on
            # with keep-alive would let those bytes be parsed as the next
            # request line and desync the connection.  Close instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)


class CompileServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one shared :class:`CompileEngine`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: CompileEngine,
        *,
        verbose: bool = False,
    ) -> None:
        self.engine = engine
        self.verbose = verbose
        self._serve_thread: threading.Thread | None = None
        super().__init__(address, CompileServiceHandler)

    @property
    def port(self) -> int:
        """The bound port (useful with the ephemeral ``port=0``)."""
        return self.server_address[1]

    def stop(self) -> None:
        """Stop serving and release the socket (the engine stays usable)."""
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)
            self._serve_thread = None


def start_server(
    engine: CompileEngine,
    *,
    host: str = DEFAULT_HOST,
    port: int = 0,
    verbose: bool = False,
) -> CompileServiceServer:
    """Boot a service in a background thread; returns the bound server.

    ``port=0`` binds an ephemeral port (read it back from ``server.port``) —
    the shape tests and examples want.  Call :meth:`CompileServiceServer.stop`
    when done; the engine's lifecycle stays with the caller.
    """
    server = CompileServiceServer((host, port), engine, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-http-serve", daemon=True
    )
    server._serve_thread = thread
    thread.start()
    return server


class ServiceClient:
    """Minimal stdlib client for the compile service.

    One fresh ``http.client.HTTPConnection`` per request keeps the client
    trivially thread-safe; responses are the parsed JSON bodies.  Non-2xx
    responses raise :class:`ServiceError` (compile *failures* are 200s with
    ``ok: false`` — inspect the returned dict).
    """

    def __init__(
        self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, *, timeout: float = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def compile(self, target: CompileTarget) -> dict:
        """Compile one target remotely; returns the wire-format result."""
        return self._request("POST", "/v1/compile", target_to_wire(target))

    def compile_batch(self, targets) -> dict:
        """Compile an ordered batch; per-item errors come back in their slots."""
        return self._request(
            "POST", "/v1/batch", {"targets": [target_to_wire(t) for t in targets]}
        )

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def cache_stats(self) -> dict:
        return self._request("GET", "/v1/cache/stats")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            data = {"error": raw[:200].decode("utf-8", "replace")}
        if response.status >= 400:
            raise ServiceError(
                f"{method} {path} -> HTTP {response.status}: {data.get('error', data)}"
            )
        return data


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.http",
        description="Serve ImaGen compile requests over HTTP/JSON.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="bind port (default: %(default)s)")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the persistent disk cache tier (default: memory-only)",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="size bound for the disk cache volume; LRU entries are evicted on save",
    )
    parser.add_argument(
        "--cache-max-age-seconds",
        type=float,
        default=None,
        help="age bound for disk cache entries; stale entries are evicted on save",
    )
    parser.add_argument(
        "--workers", default=None, help="engine pool size (default: REPRO_WORKERS or auto)"
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help="execution backend for batch fan-out (default: REPRO_EXECUTOR or thread)",
    )
    parser.add_argument(
        "--max-cache-entries", type=int, default=512, help="in-memory LRU capacity (default: %(default)s)"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress per-request access logs")
    args = parser.parse_args(argv)

    try:
        workers = (
            None
            if args.workers is None
            else validate_worker_count(args.workers, source="--workers")
        )
        cache = None
        if args.cache_dir is not None:
            store = DiskCacheStore(
                args.cache_dir,
                max_bytes=args.cache_max_bytes,
                max_age_seconds=args.cache_max_age_seconds,
            )
            cache = CompileCache(max_entries=args.max_cache_entries, store=store)
        elif args.cache_max_bytes is not None or args.cache_max_age_seconds is not None:
            parser.error("--cache-max-bytes/--cache-max-age-seconds require --cache-dir")
        engine = CompileEngine(
            workers=workers,
            executor=args.executor,
            cache=cache,
            max_cache_entries=args.max_cache_entries,
        )
    except ValueError as exc:  # bad --workers, REPRO_WORKERS, REPRO_EXECUTOR, bounds
        parser.error(str(exc))
    server = CompileServiceServer((args.host, args.port), engine, verbose=not args.quiet)
    cache_note = f", cache-dir={args.cache_dir}" if args.cache_dir else ""
    print(
        f"imagen compile service on http://{args.host}:{server.port} "
        f"(executor={engine.executor_name}, workers={engine.workers}{cache_note}) "
        f"— Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        engine.shutdown()


if __name__ == "__main__":
    main()
