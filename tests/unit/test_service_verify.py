"""Unit tests for verification-as-a-service (VerifyEngine + POST /v1/verify)."""

import threading

import pytest

from repro.algorithms import ALGORITHM_NAMES, build_algorithm
from repro.api import CompileTarget
from repro.baselines import BASELINE_NAMES
from repro.errors import SimulationError
from repro.service import (
    CompileEngine,
    QueueFullError,
    ServiceClient,
    ServiceError,
    VerifyEngine,
    VerifyRequest,
    start_server,
    verify_fingerprint,
    verify_request_from_wire,
    verify_request_to_wire,
    verify_result_to_wire,
)
from repro.service.wire import WireFormatError

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain

W, H = TEST_WIDTH, TEST_HEIGHT

ALL_GENERATORS = ("imagen",) + BASELINE_NAMES


@pytest.fixture
def engines(tmp_path):
    engine = CompileEngine(workers=2, executor="thread", cache_dir=tmp_path / "cache")
    verify = VerifyEngine(engine)
    yield engine, verify
    engine.shutdown()


def _target(name="unsharp-m", generator="imagen"):
    return CompileTarget(
        build_algorithm(name), image_width=W, image_height=H, generator=generator
    )


class TestGoldenRoundTrip:
    """Acceptance: every catalog algorithm, under every generator, replays
    bit-identically through the compiled DAG."""

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_catalog_algorithm_verifies(self, engines, name, generator):
        _, verify = engines
        result = verify.submit(
            VerifyRequest(target=_target(name, generator), check="golden", frames=1)
        )
        assert result.ok
        assert result.passed, result.failure_summary()
        assert result.golden["max_abs_error"] == 0.0
        assert len(result.golden["digest"]) == 64

    def test_both_checks_pass_on_compiled_design(self, engines):
        _, verify = engines
        result = verify.submit(VerifyRequest(target=_target()))
        assert result.passed
        assert result.golden["passed"] is True
        assert result.cycle["passed"] is True
        assert result.cycle["method"] == "reserved-table"

    def test_generator_rewrites_share_the_reference_digest(self, engines):
        """Baseline rewrites (relays, linearization) must not change pixels."""
        _, verify = engines
        digests = set()
        for generator in ALL_GENERATORS:
            result = verify.submit(
                VerifyRequest(target=_target("harris-s", generator), check="golden")
            )
            assert result.passed
            digests.add(result.golden["digest"])
        assert len(digests) == 1

    def test_expected_digest_pins_the_verdict(self, engines):
        _, verify = engines
        first = verify.submit(VerifyRequest(target=_target(), check="golden"))
        pinned = verify.submit(
            VerifyRequest(
                target=_target(),
                check="golden",
                expected_digest=first.golden["digest"],
            )
        )
        assert pinned.passed
        wrong = verify.submit(
            VerifyRequest(target=_target(), check="golden", expected_digest="0" * 64)
        )
        assert wrong.ok
        assert not wrong.passed
        assert "digest mismatch" in wrong.failure_summary()


class TestVerifyCaching:
    def test_warm_verify_is_a_memory_hit(self, engines):
        _, verify = engines
        request = VerifyRequest(target=_target())
        cold = verify.submit(request)
        warm = verify.submit(request)
        assert cold.source == "verified"
        assert warm.source == "memory"
        assert warm.fingerprint == cold.fingerprint
        assert warm.passed == cold.passed

    def test_fresh_engine_hits_the_disk_tier(self, tmp_path):
        engine = CompileEngine(workers=2, executor="thread", cache_dir=tmp_path / "c")
        try:
            VerifyEngine(engine).submit(VerifyRequest(target=_target()))
        finally:
            engine.shutdown()
        engine2 = CompileEngine(workers=2, executor="thread", cache_dir=tmp_path / "c")
        try:
            warm = VerifyEngine(engine2).submit(VerifyRequest(target=_target()))
            assert warm.source == "disk"
        finally:
            engine2.shutdown()

    def test_fingerprint_depends_on_input_spec(self):
        base = VerifyRequest(target=_target())
        assert verify_fingerprint(base) == base.fingerprint
        assert base.fingerprint != VerifyRequest(target=_target(), frames=3).fingerprint
        assert base.fingerprint != VerifyRequest(target=_target(), seed=1).fingerprint
        assert base.fingerprint != VerifyRequest(target=_target(), check="cycle").fingerprint
        # strict changes delivery (raise vs report), not the computation:
        # strict and lax share one cached verdict.
        assert base.fingerprint == VerifyRequest(target=_target(), strict=True).fingerprint

    def test_concurrent_identical_requests_deduplicate(self, engines):
        _, verify = engines
        request = VerifyRequest(target=_target("canny-s"))
        results = [None] * 4
        def run(index):
            results[index] = verify.submit(request)
        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sources = sorted(result.source for result in results)
        assert sources.count("verified") == 1
        assert all(result.passed for result in results)
        assert verify.stats()["deduplicated"] + verify.stats()["served_from_memory"] == 3


class TestVerifyAdmission:
    def test_bounded_queue_sheds_with_retry_after(self, tmp_path):
        engine = CompileEngine(workers=1, executor="thread")
        verify = VerifyEngine(engine, max_pending=1)
        release = threading.Event()
        started = threading.Event()

        # Occupy the single verify dispatch slot with a stalled execution.
        original = verify._execute
        def stalled(request, fingerprint, client):
            started.set()
            release.wait(30)
            return original(request, fingerprint, client)
        verify._execute = stalled
        try:
            hog = threading.Thread(
                target=verify.submit, args=(VerifyRequest(target=_target()),)
            )
            hog.start()
            assert started.wait(10)
            # Slot busy; one more fills the queue, a third is shed.
            t2 = threading.Thread(
                target=lambda: _swallow(
                    verify, VerifyRequest(target=_target("canny-s"))
                )
            )
            t2.start()
            deadline = 50
            while verify.admission_stats()["queue_depth"] < 1 and deadline:
                deadline -= 1
                threading.Event().wait(0.1)
            with pytest.raises(QueueFullError) as info:
                verify.submit(VerifyRequest(target=_target("harris-s")), client="x")
            assert info.value.retry_after >= 0
            assert verify.stats()["rejected"] == 1
        finally:
            release.set()
            hog.join()
            t2.join()
            engine.shutdown()

    def test_strict_failure_raises_simulation_error(self, engines):
        _, verify = engines
        with pytest.raises(SimulationError):
            verify.submit(
                VerifyRequest(
                    target=_target(),
                    check="golden",
                    expected_digest="0" * 64,
                    strict=True,
                )
            )


def _swallow(verify, request):
    try:
        verify.submit(request)
    except Exception:
        pass


class TestVerifySpans:
    def test_spans_feed_the_engine_stage_histograms(self, engines):
        engine, verify = engines
        verify.submit(VerifyRequest(target=_target()))
        histograms = engine.metrics.stage_histograms()
        assert histograms["verify"]["count"] >= 1
        assert histograms["verify_golden"]["count"] >= 1
        assert histograms["verify_cycle"]["count"] >= 1

    def test_result_carries_span_tree(self, engines):
        _, verify = engines
        result = verify.submit(VerifyRequest(target=_target()))
        names = [span.name for span in result.spans]
        assert names == ["verify"]
        children = [span.name for span in result.spans[0].children]
        assert "verify_golden" in children
        assert "verify_cycle" in children


class TestVerifyWire:
    def test_request_round_trips(self):
        request = VerifyRequest(
            target=_target(), check="golden", frames=3, seed=9, tolerance=0.5,
            expected_digest="a" * 64, strict=True,
        )
        decoded = verify_request_from_wire(verify_request_to_wire(request))
        # Target equality is fingerprint equality (DAG objects differ after a
        # wire round trip); everything else must survive verbatim.
        assert decoded.fingerprint == request.fingerprint
        assert decoded.target.fingerprint == request.target.fingerprint
        assert (decoded.check, decoded.frames, decoded.seed) == ("golden", 3, 9)
        assert (decoded.tolerance, decoded.expected_digest, decoded.strict) == (
            0.5, "a" * 64, True,
        )

    def test_defaults_are_omitted_on_the_wire(self):
        payload = verify_request_to_wire(VerifyRequest(target=_target()))
        assert set(payload) == {"version", "target", "check"}

    def test_unknown_field_rejected(self):
        payload = verify_request_to_wire(VerifyRequest(target=_target()))
        payload["surprise"] = 1
        with pytest.raises(WireFormatError, match="surprise"):
            verify_request_from_wire(payload)

    def test_version_mismatch_rejected(self):
        payload = verify_request_to_wire(VerifyRequest(target=_target()))
        payload["version"] = 999
        with pytest.raises(WireFormatError, match="version"):
            verify_request_from_wire(payload)

    def test_bad_check_kind_rejected(self):
        payload = verify_request_to_wire(VerifyRequest(target=_target()))
        payload["check"] = "vibes"
        with pytest.raises(WireFormatError):
            verify_request_from_wire(payload)

    def test_result_to_wire_shape(self, engines):
        _, verify = engines
        result = verify.submit(VerifyRequest(target=_target()))
        body = verify_result_to_wire(result)
        assert body["ok"] is True
        assert body["passed"] is True
        assert body["check"] == "both"
        assert body["fingerprint"] == result.fingerprint
        assert body["compile_fingerprint"] == result.compile_fingerprint
        assert "spans" not in body
        assert "error" not in body
        traced = verify_result_to_wire(result, include_spans=True)
        assert traced["spans"]


class TestRtlPerfChecks:
    """The v2 check kinds: RTL simulation and performance verdicts."""

    def test_rtl_check_payload(self, engines):
        _, verify = engines
        result = verify.submit(VerifyRequest(target=_target(), check="rtl", frames=2))
        assert result.ok and result.passed is True
        assert result.golden is None and result.cycle is None and result.perf is None
        rtl = result.rtl
        assert rtl["passed"] is True
        assert rtl["rtl_digest"] == rtl["digest"]
        assert rtl["frames"] == 2
        assert rtl["cycles_per_frame"] > 0

    def test_perf_check_payload(self, engines):
        _, verify = engines
        result = verify.submit(VerifyRequest(target=_target(), check="perf"))
        assert result.ok and result.passed is True
        perf = result.perf
        assert perf["passed"] is True
        assert perf["cycles_per_frame"] <= perf["bound_cycles_per_frame"]
        assert perf["initiation_interval"] == W * H
        assert perf["generator"] == "imagen"

    def test_rtl_expected_digest_pins_the_verdict(self, engines):
        _, verify = engines
        result = verify.submit(
            VerifyRequest(target=_target(), check="rtl", expected_digest="0" * 64)
        )
        assert result.ok and result.passed is False
        assert result.rtl["expected_match"] is False
        assert "expected" in result.failure_summary()

    def test_rtl_verdicts_cache_without_resimulating(self, engines):
        _, verify = engines
        request = VerifyRequest(target=_target("canny-s"), check="rtl")
        cold = verify.submit(request)
        simulations = verify.stats()["rtl_simulations"]
        warm = verify.submit(request)
        assert cold.source == "verified"
        assert warm.source == "memory"
        assert warm.rtl == cold.rtl
        assert verify.stats()["rtl_simulations"] == simulations

    def test_concurrent_rtl_requests_deduplicate(self, engines):
        _, verify = engines
        request = VerifyRequest(target=_target("harris-s"), check="rtl")
        results = [None] * 3
        def run(index):
            results[index] = verify.submit(request)
        threads = [threading.Thread(target=run, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(r.source for r in results).count("verified") == 1
        assert all(r.passed for r in results)
        assert verify.stats()["rtl_simulations"] == 1

    def test_rtl_and_perf_spans_feed_histograms(self, engines):
        engine, verify = engines
        rtl = verify.submit(VerifyRequest(target=_target(), check="rtl"))
        perf = verify.submit(VerifyRequest(target=_target(), check="perf"))
        assert [s.name for child in rtl.spans for s in child.children].count("verify_rtl") == 1
        assert "verify_perf" in [s.name for child in perf.spans for s in child.children]
        histograms = engine.metrics.stage_histograms()
        assert histograms["verify_rtl"]["count"] >= 1
        assert histograms["verify_perf"]["count"] >= 1

    def test_counters_track_fresh_runs(self, engines):
        _, verify = engines
        verify.submit(VerifyRequest(target=_target(), check="rtl"))
        verify.submit(VerifyRequest(target=_target(), check="perf"))
        stats = verify.stats()
        assert stats["rtl_simulations"] == 1
        assert stats["perf_measurements"] == 1


class TestVerifyWireVersions:
    """Compat rules for the v2 verify-payload bump."""

    def test_v1_kinds_still_stamp_version_1(self):
        for check in ("golden", "cycle", "both"):
            payload = verify_request_to_wire(VerifyRequest(target=_target(), check=check))
            assert payload["version"] == 1
            assert verify_request_from_wire(payload).check == check

    def test_new_kinds_stamp_version_2(self):
        for check in ("rtl", "perf"):
            payload = verify_request_to_wire(VerifyRequest(target=_target(), check=check))
            assert payload["version"] == 2
            assert verify_request_from_wire(payload).check == check

    def test_future_version_rejected(self):
        payload = verify_request_to_wire(VerifyRequest(target=_target(), check="rtl"))
        payload["version"] = 3
        with pytest.raises(WireFormatError, match="version"):
            verify_request_from_wire(payload)

    def test_new_kind_below_its_version_floor_rejected(self):
        for check in ("rtl", "perf"):
            payload = verify_request_to_wire(VerifyRequest(target=_target(), check=check))
            payload["version"] = 1
            with pytest.raises(WireFormatError, match="needs verify payload version"):
                verify_request_from_wire(payload)

    def test_unknown_check_kind_rejected_at_both_versions(self):
        for version in (1, 2):
            payload = verify_request_to_wire(VerifyRequest(target=_target()))
            payload["version"] = version
            payload["check"] = "vibes"
            with pytest.raises(WireFormatError):
                verify_request_from_wire(payload)

    def test_strict_and_lax_share_fingerprints_for_new_kinds(self):
        for check in ("rtl", "perf"):
            lax = VerifyRequest(target=_target(), check=check)
            strict = VerifyRequest(target=_target(), check=check, strict=True)
            assert lax.fingerprint == strict.fingerprint
        assert (
            VerifyRequest(target=_target(), check="rtl").fingerprint
            != VerifyRequest(target=_target(), check="perf").fingerprint
        )

    def test_result_wire_carries_rtl_and_perf_sections(self, engines):
        _, verify = engines
        body = verify_result_to_wire(
            verify.submit(VerifyRequest(target=_target(), check="rtl"))
        )
        assert body["rtl"]["passed"] is True
        assert "golden" not in body and "perf" not in body
        body = verify_result_to_wire(
            verify.submit(VerifyRequest(target=_target(), check="perf"))
        )
        assert body["perf"]["passed"] is True
        assert "rtl" not in body


class TestVerifyHTTP:
    @pytest.fixture
    def service(self, tmp_path):
        engine = CompileEngine(workers=2, executor="thread", cache_dir=tmp_path / "cache")
        server = start_server(engine)
        yield ServiceClient(port=server.port), engine, server
        server.stop()
        engine.shutdown()

    def test_verify_round_trip(self, service):
        client, engine, server = service
        target = _target()
        remote = client.verify(target)
        assert remote["ok"] is True
        assert remote["passed"] is True
        in_process = server.verify_engine.submit(VerifyRequest(target=target))
        assert remote["fingerprint"] == in_process.fingerprint
        assert remote["compile_fingerprint"] == target.fingerprint

    def test_warm_verify_reports_cache_source(self, service):
        client, _, _ = service
        target = _target("canny-s")
        first = client.verify(target)
        second = client.verify(target)
        assert first["source"] == "verified"
        assert second["source"] in ("memory", "disk")

    def test_trace_flag_returns_spans(self, service):
        client, _, _ = service
        body = client.verify(_target("harris-s"), check="cycle", trace=True)
        assert body["spans"][0]["name"] == "verify"

    def test_strict_failure_is_typed_422(self, service):
        """Acceptance: a SimulationError surfaces as 422 verify-failed, not 500."""
        client, _, _ = service
        with pytest.raises(ServiceError) as info:
            client.verify(_target(), expected_digest="0" * 64, strict=True)
        assert info.value.status == 422
        assert info.value.body["reason"] == "verify-failed"
        assert "mismatch" in info.value.body["error"]

    def test_lax_failure_is_200_with_passed_false(self, service):
        client, _, _ = service
        body = client.verify(_target(), check="golden", expected_digest="0" * 64)
        assert body["ok"] is True
        assert body["passed"] is False

    def test_malformed_request_is_400(self, service):
        client, _, server = service
        import http.client, json

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/verify",
                body=json.dumps({"version": 1, "check": "golden"}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "error" in json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()

    def test_metrics_carry_verify_counters(self, service):
        client, _, _ = service
        client.verify(_target())
        metrics = client.metrics()
        assert metrics["verify_requests"] >= 1
        assert metrics["verify_passed"] >= 1
        exposition = client.metrics_prometheus()
        assert "repro_verify_requests_total" in exposition
        assert 'repro_stage_seconds_bucket{stage="verify"' in exposition

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_rtl_and_perf_verdicts_over_http_for_whole_catalog(self, service, name):
        """Acceptance: cached, deduped, traced rtl/perf verdicts per algorithm."""
        client, _, server = service
        target = _target(name)
        rtl = client.verify(target, check="rtl", trace=True)
        assert rtl["ok"] is True and rtl["passed"] is True
        assert rtl["rtl"]["passed"] is True
        spans = [child["name"] for child in rtl["spans"][0]["children"]]
        assert "verify_rtl" in spans
        warm = client.verify(target, check="rtl")
        assert warm["source"] in ("memory", "disk")
        assert warm["rtl"] == rtl["rtl"]
        perf = client.verify(target, check="perf", trace=True)
        assert perf["ok"] is True and perf["passed"] is True
        assert perf["perf"]["cycles_per_frame"] <= perf["perf"]["bound_cycles_per_frame"]
        assert "verify_perf" in [child["name"] for child in perf["spans"][0]["children"]]

    def test_http_rtl_metrics_and_dedup_counters(self, service):
        client, _, server = service
        target = _target("canny-s")
        client.verify(target, check="rtl")
        client.verify(target, check="rtl")
        metrics = client.metrics()
        assert metrics["verify_rtl_simulations"] == 1
        assert metrics["verify_served_from_memory"] >= 1
        exposition = client.metrics_prometheus()
        assert "repro_verify_rtl_simulations_total" in exposition
        assert "repro_verify_perf_measurements_total" in exposition
