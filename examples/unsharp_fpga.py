#!/usr/bin/env python3
"""Unsharp masking on the Spartan-7 FPGA: ImaGen vs the three baselines.

Reproduces, for a single algorithm, what the paper's Fig. 8 / FPGA results do
for the whole suite: build the unsharp-mask pipeline, generate an accelerator
with each design style (FixyNN, Darkroom, SODA, Ours, Ours+LC), and compare
BRAM usage and estimated power on the 120-BRAM Spartan-7 board.  The script
also checks every design functionally against a NumPy golden model.

Run:  python examples/unsharp_fpga.py
"""

from __future__ import annotations

import numpy as np

from repro import CompileEngine, CompileTarget
from repro.algorithms import build_unsharp_m
from repro.estimate.fpga import fpga_report
from repro.memory.spec import spartan7_bram, spartan7_fpga
from repro.sim.functional import run_functional

WIDTH, HEIGHT = 480, 320


def golden_unsharp(image: np.ndarray) -> np.ndarray:
    """Reference unsharp mask built directly on NumPy (edge-clamped 5-tap Gaussian)."""
    taps = np.array([1.0, 4.0, 6.0, 4.0, 1.0]) / 16.0

    def convolve_axis(data: np.ndarray, axis: int) -> np.ndarray:
        result = np.zeros_like(data)
        for offset, weight in zip(range(-2, 3), taps):
            result += weight * np.take(
                data, np.clip(np.arange(data.shape[axis]) + offset, 0, data.shape[axis] - 1), axis=axis
            )
        return result

    blurred = convolve_axis(convolve_axis(image, 0), 1)
    return np.clip(image + 1.5 * (image - blurred), 0.0, 255.0)


def main() -> None:
    dag = build_unsharp_m()
    fpga = spartan7_fpga()
    bram = spartan7_bram()

    # All five design styles are derivations of one base CompileTarget, so
    # they can go to the engine as a single batch: baselines and optimizer
    # compiles fan out over the worker pool and share the same cache.
    base = CompileTarget(dag, image_width=WIDTH, image_height=HEIGHT, memory_spec=bram)
    targets = {
        "fixynn": base.with_generator("fixynn").with_memory_spec(spartan7_bram(ports=1)),
        "darkroom": base.with_generator("darkroom"),
        "soda": base.with_generator("soda"),
        "ours": base,
        "ours+lc": base.with_options(coalescing=True),
    }
    with CompileEngine(workers=4) as engine:
        batch = engine.submit_batch(list(targets.values())).raise_on_error()
    designs = {
        name: result.accelerator.schedule
        for name, result in zip(targets, batch.results)
    }

    print(f"Unsharp masking at {WIDTH}x{HEIGHT} on a {fpga.total_blocks}-BRAM Spartan-7\n")
    print(f"{'design':<10}{'BRAMs':>7}{'util':>8}{'power (mW)':>12}{'latency (cycles)':>18}")
    for name, schedule in designs.items():
        report = fpga_report(schedule, fpga)
        print(
            f"{name:<10}{report.brams_used:>7}{report.bram_utilisation:>8.1%}"
            f"{report.total_mw:>12.1f}{schedule.end_to_end_latency_cycles:>18}"
        )

    # Functional check: the algorithm the accelerator implements matches NumPy.
    rng = np.random.default_rng(42)
    image = rng.integers(0, 256, size=(HEIGHT, WIDTH)).astype(np.float64)
    ours_output = run_functional(dag, image).output()
    reference = golden_unsharp(image)
    error = float(np.max(np.abs(ours_output - reference)))
    print(f"\nmax |pipeline - NumPy reference| = {error:.6f}")


if __name__ == "__main__":
    main()
