"""The pipeline schedule produced by the optimizer or a baseline generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchedulingError
from repro.ir.dag import PipelineDAG
from repro.memory.linebuffer import FrameBufferConfig, LineBufferConfig
from repro.memory.spec import MemorySpec


@dataclass
class PipelineSchedule:
    """A fully-determined line-buffered accelerator design.

    The schedule records, for every stage, its start cycle (the optimization
    variables of Eq. 1a) and, for every producer, the physical line-buffer
    configuration realising the resulting delays.  It is the single artifact
    consumed by the simulators, the estimators and the RTL generator.
    """

    dag: PipelineDAG
    image_width: int
    image_height: int
    memory_spec: MemorySpec
    start_cycles: dict[str, int]
    line_buffers: dict[str, LineBufferConfig]
    generator: str = "imagen"
    coalesce_factors: dict[str, int] = field(default_factory=dict)
    solver_stats: dict[str, Any] = field(default_factory=dict)
    #: Whole-frame history buffers for temporal producers.  Left empty by
    #: callers: frame buffers are a pure function of (dag, geometry, spec), so
    #: ``__post_init__`` derives them uniformly for every generator and for
    #: cache deserialization — no construction site can forget them.
    frame_buffers: dict[str, FrameBufferConfig] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.dag.stage_names():
            if name not in self.start_cycles:
                raise SchedulingError(f"Schedule is missing a start cycle for stage {name!r}")
        if not self.frame_buffers and self.dag.is_temporal():
            from repro.memory.allocator import derive_frame_buffers

            self.frame_buffers = {
                config.producer: config
                for config in derive_frame_buffers(
                    self.dag, self.image_width, self.image_height, self.memory_spec
                )
            }

    # --------------------------------------------------------------- timing
    def start(self, stage: str) -> int:
        try:
            return self.start_cycles[stage]
        except KeyError:
            raise SchedulingError(f"Unknown stage {stage!r} in schedule") from None

    def delay(self, producer: str, consumer: str) -> int:
        """Start-cycle gap between a producer and one of its consumers."""
        return self.start(consumer) - self.start(producer)

    def max_delay(self, producer: str) -> int:
        """The largest consumer delay of ``producer`` (0 when it has none)."""
        consumers = self.dag.consumers_of(producer)
        if not consumers:
            return 0
        return max(self.delay(producer, c) for c in consumers)

    @property
    def pixels_per_frame(self) -> int:
        return self.image_width * self.image_height

    @property
    def steady_state_throughput(self) -> float:
        """Pixels produced per cycle once the pipeline is primed (by construction 1.0)."""
        return 1.0

    @property
    def end_to_end_latency_cycles(self) -> int:
        """Cycles from the first input pixel until the last output pixel."""
        outputs = self.dag.output_stages()
        if not outputs:
            raise SchedulingError("Pipeline has no output stage")
        return max(self.start(o.name) for o in outputs) + self.pixels_per_frame

    @property
    def startup_latency_cycles(self) -> int:
        """Cycles before the first output pixel appears."""
        outputs = self.dag.output_stages()
        return max(self.start(o.name) for o in outputs) + 1

    # --------------------------------------------------------------- memory
    @property
    def total_line_slots(self) -> int:
        return sum(config.lines for config in self.line_buffers.values())

    @property
    def total_blocks(self) -> int:
        """All SRAM blocks claimed: line buffers plus frame buffers."""
        return (
            sum(config.num_blocks for config in self.line_buffers.values())
            + self.frame_buffer_blocks
        )

    @property
    def total_allocated_bits(self) -> int:
        """All SRAM bits claimed: line buffers plus frame buffers.

        Purely spatial pipelines have no frame buffers, so these totals are
        exactly what they were before the temporal refactor.
        """
        return (
            sum(config.allocated_bits for config in self.line_buffers.values())
            + self.frame_buffer_allocated_bits
        )

    @property
    def total_allocated_kbytes(self) -> float:
        return self.total_allocated_bits / 8192.0

    @property
    def total_data_bits(self) -> int:
        return (
            sum(config.data_bits for config in self.line_buffers.values())
            + sum(config.data_bits for config in self.frame_buffers.values())
        )

    @property
    def total_data_kbytes(self) -> float:
        return self.total_data_bits / 8192.0

    @property
    def total_dff_pixels(self) -> int:
        return sum(config.dff_pixels for config in self.line_buffers.values())

    # ------------------------------------------------------- frame buffers
    @property
    def is_temporal(self) -> bool:
        return bool(self.frame_buffers)

    @property
    def frame_buffer_pixels(self) -> int:
        return sum(config.pixel_capacity for config in self.frame_buffers.values())

    @property
    def frame_buffer_blocks(self) -> int:
        return sum(config.num_blocks for config in self.frame_buffers.values())

    @property
    def frame_buffer_allocated_bits(self) -> int:
        return sum(config.allocated_bits for config in self.frame_buffers.values())

    @property
    def frame_buffer_allocated_kbytes(self) -> float:
        return self.frame_buffer_allocated_bits / 8192.0

    # --------------------------------------------------------------- report
    def describe(self) -> str:
        lines = [
            f"schedule[{self.generator}] for {self.dag.name} "
            f"({self.image_width}x{self.image_height}, {self.memory_spec.name})"
        ]
        for name in self.dag.stage_names():
            start = self.start(name)
            buffer = self.line_buffers.get(name)
            extra = f", LB={buffer.lines} lines/{buffer.num_blocks} blocks" if buffer else ""
            frame = self.frame_buffers.get(name)
            if frame:
                extra += f", FB={frame.depth} frame(s)/{frame.num_blocks} blocks"
            lines.append(f"  {name}: start={start}{extra}")
        if self.frame_buffers:
            lines.append(
                f"  frame buffers: {self.frame_buffer_pixels} pixels, "
                f"{self.frame_buffer_allocated_kbytes:.1f} KB allocated"
            )
        lines.append(
            f"  total: {self.total_blocks} blocks, {self.total_allocated_kbytes:.1f} KB allocated, "
            f"{self.total_data_kbytes:.1f} KB data"
        )
        return "\n".join(lines)
