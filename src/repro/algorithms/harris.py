"""Harris corner detection pipelines (Table 3: Harris-s and Harris-m, 7 stages each).

``Harris-s`` is a single-consumer chain; ``Harris-m`` computes the two image
derivatives as sibling stages reading the same smoothed image (one
multi-consumer stage).
"""

from __future__ import annotations

from repro.algorithms.kernels import SOBEL_X, SOBEL_Y, gauss3_2d
from repro.dsl import ast
from repro.dsl.builder import PipelineBuilder, convolve, window_sum
from repro.ir.dag import PipelineDAG

_HARRIS_K = 0.05


def build_harris_s() -> PipelineDAG:
    """Harris corner response as a 7-stage single-consumer chain."""
    builder = PipelineBuilder("harris-s")
    source = builder.input("K0")
    blur = builder.stage("gauss", convolve(source, gauss3_2d()))
    deriv = builder.stage("deriv", convolve(blur, SOBEL_X))
    squared = builder.stage("square", deriv(0, 0) * deriv(0, 0))
    summed = builder.stage("window_sum", window_sum(squared, 3, 3))
    response = builder.stage(
        "response",
        summed(0, 0) * summed(0, 0) - window_sum(summed, 3, 3) * _HARRIS_K,
    )
    builder.output(
        "corners",
        ast.Call(
            "select",
            (
                (response(0, 0) >= ast.Call("max", (response(-1, -1), response(1, 1), response(-1, 1), response(1, -1))))
                * (response(0, 0) > 1000.0),
                ast.Const(255.0),
                ast.Const(0.0),
            ),
        ),
    )
    return builder.build()


def build_harris_m() -> PipelineDAG:
    """Harris corner response with explicit Ix/Iy stages (1 multi-consumer stage)."""
    builder = PipelineBuilder("harris-m")
    source = builder.input("K0")
    blur = builder.stage("gauss", convolve(source, gauss3_2d()))
    grad_x = builder.stage("grad_x", convolve(blur, SOBEL_X))
    grad_y = builder.stage("grad_y", convolve(blur, SOBEL_Y))
    products = builder.stage(
        "products",
        grad_x(0, 0) * grad_x(0, 0) + grad_y(0, 0) * grad_y(0, 0)
        - 2.0 * grad_x(0, 0) * grad_y(0, 0) * _HARRIS_K,
    )
    structure = builder.stage("structure", window_sum(products, 5, 5))
    builder.output(
        "corners",
        ast.Call(
            "select",
            (
                (structure(0, 0) >= ast.Call("max", (structure(-1, 0), structure(1, 0), structure(0, -1), structure(0, 1))))
                * (structure(0, 0) > 1000.0),
                ast.Const(255.0),
                ast.Const(0.0),
            ),
        ),
    )
    return builder.build()
