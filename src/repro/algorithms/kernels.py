"""Shared convolution kernels used by the algorithm suite."""

from __future__ import annotations

#: 5-tap binomial (Gaussian approximation), used separably.
GAUSS5 = [1.0, 4.0, 6.0, 4.0, 1.0]

#: 3-tap binomial.
GAUSS3 = [1.0, 2.0, 1.0]

#: Sobel horizontal-derivative kernel (3x3).
SOBEL_X = [
    [-1.0, 0.0, 1.0],
    [-2.0, 0.0, 2.0],
    [-1.0, 0.0, 1.0],
]

#: Sobel vertical-derivative kernel (3x3).
SOBEL_Y = [
    [-1.0, -2.0, -1.0],
    [0.0, 0.0, 0.0],
    [1.0, 2.0, 1.0],
]


def normalized(kernel: list[float]) -> list[float]:
    total = sum(kernel)
    return [value / total for value in kernel]


def gauss5_2d() -> list[list[float]]:
    """Outer product of the 5-tap binomial with itself, normalised."""
    total = sum(GAUSS5) ** 2
    return [[a * b / total for b in GAUSS5] for a in GAUSS5]


def gauss3_2d() -> list[list[float]]:
    total = sum(GAUSS3) ** 2
    return [[a * b / total for b in GAUSS3] for a in GAUSS3]


def box(width: int, height: int) -> list[list[float]]:
    """Unnormalised box kernel."""
    return [[1.0] * width for _ in range(height)]
