"""Canny edge detection pipelines (Table 3: Canny-s, 9 stages; Canny-m, 10 stages, 1 MC).

``Canny-s`` is written as a pure chain (every producer has exactly one
consumer): separable Gaussian smoothing, a fused gradient-magnitude stencil,
separable non-maximum suppression, double thresholding, and hysteresis.

``Canny-m`` computes the horizontal and vertical Sobel derivatives as two
separate stages that both read the smoothed image — the multi-consumer stage —
and combines them downstream, which is the structure that challenges
single-consumer generators (Sec. 3.1).
"""

from __future__ import annotations

from repro.algorithms.kernels import GAUSS5, SOBEL_X, SOBEL_Y, normalized
from repro.dsl import ast
from repro.dsl.builder import PipelineBuilder, StageHandle, convolve
from repro.ir.dag import PipelineDAG


def _separable(stage: StageHandle, taps: list[float], horizontal: bool) -> ast.Expr:
    weights = normalized(taps)
    half = len(weights) // 2
    terms: list[ast.Expr] = []
    for index, weight in enumerate(weights):
        offset = index - half
        ref = stage(offset, 0) if horizontal else stage(0, offset)
        terms.append(ref * weight)
    expr: ast.Expr = terms[0]
    for term in terms[1:]:
        expr = expr + term
    return expr


def build_canny_s() -> PipelineDAG:
    """Canny edge detection as a 9-stage single-consumer chain."""
    builder = PipelineBuilder("canny-s")
    source = builder.input("K0")
    blur_v = builder.stage("gauss_v", _separable(source, GAUSS5, horizontal=False))
    blur_h = builder.stage("gauss_h", _separable(blur_v, GAUSS5, horizontal=True))
    # Fused |d/dx| + |d/dy| magnitude over one 3x3 window of the blurred image.
    grad = builder.stage(
        "grad_mag",
        ast.Call("abs", (convolve(blur_h, SOBEL_X),))
        + ast.Call("abs", (convolve(blur_h, SOBEL_Y),)),
    )
    nms_v = builder.stage(
        "nms_v",
        ast.Call(
            "select",
            (grad(0, 0) >= ast.Call("max", (grad(0, -1), grad(0, 1))), grad(0, 0), ast.Const(0.0)),
        ),
    )
    nms_h = builder.stage(
        "nms_h",
        ast.Call(
            "select",
            (
                nms_v(0, 0) >= ast.Call("max", (nms_v(-1, 0), nms_v(1, 0))),
                nms_v(0, 0),
                ast.Const(0.0),
            ),
        ),
    )
    low = builder.stage("low_threshold", (nms_h(0, 0) > 40.0) * nms_h(0, 0))
    high = builder.stage("high_threshold", (low(0, 0) > 90.0) * 2.0 + (low(0, 0) > 0.0) * 1.0)
    builder.output(
        "hysteresis",
        ast.Call(
            "select",
            (
                (high(0, 0) >= 2.0)
                + (
                    (high(0, 0) >= 1.0)
                    * (ast.Call("max", (high(-1, -1), high(1, 1), high(-1, 1), high(1, -1), high(0, -1), high(0, 1), high(-1, 0), high(1, 0))) >= 2.0)
                ),
                ast.Const(255.0),
                ast.Const(0.0),
            ),
        ),
    )
    return builder.build()


def build_canny_m() -> PipelineDAG:
    """Canny edge detection with explicit Sobel-x / Sobel-y stages (1 multi-consumer stage)."""
    builder = PipelineBuilder("canny-m")
    source = builder.input("K0")
    blur_v = builder.stage("gauss_v", _separable(source, GAUSS5, horizontal=False))
    blur_h = builder.stage("gauss_h", _separable(blur_v, GAUSS5, horizontal=True))
    grad_x = builder.stage("grad_x", convolve(blur_h, SOBEL_X))
    grad_y = builder.stage("grad_y", convolve(blur_h, SOBEL_Y))
    magnitude = builder.stage(
        "magnitude", ast.Call("abs", (grad_x(0, 0),)) + ast.Call("abs", (grad_y(0, 0),))
    )
    nms = builder.stage(
        "nms",
        ast.Call(
            "select",
            (
                magnitude(0, 0)
                >= ast.Call(
                    "max",
                    (magnitude(-1, 0), magnitude(1, 0), magnitude(0, -1), magnitude(0, 1)),
                ),
                magnitude(0, 0),
                ast.Const(0.0),
            ),
        ),
    )
    low = builder.stage("low_threshold", (nms(0, 0) > 40.0) * nms(0, 0))
    high = builder.stage("high_threshold", (low(0, 0) > 90.0) * 2.0 + (low(0, 0) > 0.0) * 1.0)
    builder.output(
        "hysteresis",
        ast.Call(
            "select",
            (
                (high(0, 0) >= 2.0)
                + (
                    (high(0, 0) >= 1.0)
                    * (ast.Call("max", (high(-1, -1), high(1, 1), high(-1, 1), high(1, -1), high(0, -1), high(0, 1), high(-1, 0), high(1, 0))) >= 2.0)
                ),
                ast.Const(255.0),
                ast.Const(0.0),
            ),
        ),
    )
    return builder.build()
