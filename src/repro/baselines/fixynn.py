"""FixyNN-style baseline: classic line buffers over single-port SRAM.

FixyNN [Whatmough et al. 2019] builds the Sec. 2 line-buffer design but only
with single-port memory blocks, so no two stages may ever touch the same line
in the same cycle.  We realise this by running the ImaGen scheduling ILP with
the port count pinned to 1 and coalescing disabled (coalescing is impossible
with one port); the resulting delays are one full stencil height larger than
the dual-port design, which is where FixyNN's extra memory comes from.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.base import BaselineGenerator
from repro.core.schedule import PipelineSchedule
from repro.core.scheduler import SchedulerOptions, schedule_pipeline
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec, asic_single_port


class FixynnGenerator(BaselineGenerator):
    """Generate a FixyNN-style (single-port) accelerator design."""

    name = "fixynn"

    def generate(
        self,
        dag: PipelineDAG,
        image_width: int,
        image_height: int,
        memory_spec: MemorySpec | None = None,
    ) -> PipelineSchedule:
        if memory_spec is None:
            memory_spec = asic_single_port()
        elif (
            memory_spec.ports != 1
            or memory_spec.allow_coalescing
            or memory_spec.style != "sram"
        ):
            # Adapt, but idempotently: a spec already in FixyNN form (e.g. the
            # asic_single_port preset) is used as-is, without renaming.
            memory_spec = replace(
                memory_spec,
                name=f"{memory_spec.name}-sp",
                ports=1,
                allow_coalescing=False,
                style="sram",
            )
        options = SchedulerOptions(ports=1, coalescing=False)
        schedule = schedule_pipeline(dag, image_width, image_height, memory_spec, options)
        schedule.generator = "fixynn"
        return schedule
