"""Unit tests for the branch-and-bound and HiGHS MILP backends and the facade."""

import pytest

from repro.errors import InfeasibleError, SolverError, UnboundedError
from repro.ilp.branch_and_bound import solve_branch_and_bound
from repro.ilp.highs import is_available, solve_highs
from repro.ilp.model import Model, SolveStatus
from repro.ilp.solver import available_backends, solve


def knapsack_model():
    """max 10a + 6b + 4c s.t. a+b+c<=2, 5a+4b+3c<=8, binary (optimum: a=c=1, value 14)."""
    model = Model("knapsack", sense="max")
    a = model.add_binary_var("a")
    b = model.add_binary_var("b")
    c = model.add_binary_var("c")
    model.add_constraint(a + b + c <= 2)
    model.add_constraint(5 * a + 4 * b + 3 * c <= 8)
    model.set_objective(10 * a + 6 * b + 4 * c)
    return model, (a, b, c)


def scheduling_like_model():
    """A miniature version of the paper's ILP: integer delays with gaps."""
    model = Model("mini-schedule")
    s1 = model.add_integer_var("s1", lb=0, ub=1000)
    s2 = model.add_integer_var("s2", lb=0, ub=1000)
    s3 = model.add_integer_var("s3", lb=0, ub=1000)
    model.add_constraint(s2 - s1 >= 65)
    model.add_constraint(s3 - s2 >= 65)
    model.add_constraint(s3 - s1 >= 192)
    model.set_objective(s2 + s3)
    return model, (s1, s2, s3)


class TestBranchAndBound:
    def test_knapsack(self):
        model, (a, b, c) = knapsack_model()
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)
        assert result.value(a) == 1 and result.value(b) == 0 and result.value(c) == 1

    def test_scheduling_like(self):
        model, (s1, s2, s3) = scheduling_like_model()
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.value(s1) == 0
        assert result.value(s2) == 65
        assert result.value(s3) == 192

    def test_infeasible(self):
        model = Model()
        x = model.add_integer_var("x", lb=0, ub=3)
        model.add_constraint(x >= 5)
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.INFEASIBLE

    def test_fractional_lp_integer_rounding(self):
        # LP optimum is fractional; MILP optimum differs.
        model = Model(sense="max")
        x = model.add_integer_var("x", lb=0)
        y = model.add_integer_var("y", lb=0)
        model.add_constraint(2 * x + 3 * y <= 7)
        model.set_objective(x + 2 * y)
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(4.0)

    def test_unbounded(self):
        model = Model(sense="max")
        x = model.add_integer_var("x", lb=0)
        model.set_objective(x + 0)
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.UNBOUNDED

    def test_mixed_integer_continuous(self):
        model = Model()
        x = model.add_integer_var("x", lb=0, ub=10)
        y = model.add_var("y", lb=0.0, ub=10.0)
        model.add_constraint(x + y >= 3.5)
        model.set_objective(2 * x + y)
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(3.5)
        assert result.value(x) == 0


@pytest.mark.skipif(not is_available(), reason="SciPy HiGHS not available")
class TestHighs:
    def test_knapsack(self):
        model, (a, b, c) = knapsack_model()
        result = solve_highs(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)

    def test_infeasible(self):
        model = Model()
        x = model.add_integer_var("x", lb=0, ub=3)
        model.add_constraint(x >= 5)
        assert solve_highs(model).status is SolveStatus.INFEASIBLE

    def test_scheduling_like(self):
        model, (s1, s2, s3) = scheduling_like_model()
        result = solve_highs(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(257.0)


class TestFacade:
    def test_available_backends_contains_python(self):
        assert "python" in available_backends()

    def test_auto_backend(self):
        model, _ = knapsack_model()
        result = solve(model, backend="auto")
        assert result.status is SolveStatus.OPTIMAL

    def test_unknown_backend(self):
        model, _ = knapsack_model()
        with pytest.raises(SolverError):
            solve(model, backend="gurobi")

    def test_raise_on_infeasible(self):
        model = Model()
        x = model.add_integer_var("x", lb=0, ub=3)
        model.add_constraint(x >= 5)
        with pytest.raises(InfeasibleError):
            solve(model, backend="python", raise_on_failure=True)

    def test_raise_on_unbounded(self):
        model = Model(sense="max")
        x = model.add_integer_var("x", lb=0)
        model.set_objective(x + 0)
        with pytest.raises(UnboundedError):
            solve(model, backend="python", raise_on_failure=True)

    def test_backends_agree(self):
        model, _ = scheduling_like_model()
        python_result = solve(model, backend="python")
        assert python_result.status is SolveStatus.OPTIMAL
        if is_available():
            highs_result = solve(model, backend="highs")
            assert highs_result.objective == pytest.approx(python_result.objective)
