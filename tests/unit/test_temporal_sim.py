"""Temporal simulation: axes disambiguation, replay parity, FB legality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.target import CompileTarget
from repro.core.compiler import compile_target
from repro.dsl.builder import PipelineBuilder, frame_difference
from repro.errors import SimulationError
from repro.memory.linebuffer import FrameBufferConfig
from repro.sim.batch import replay_frames, replay_frames_loop
from repro.sim.cycle import (
    check_schedule_legality,
    frame_buffer_violations,
    simulate_schedule,
)
from repro.sim.functional import run_functional

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain


def build_frame_diff():
    builder = PipelineBuilder("fdiff")
    f0 = builder.input("F0")
    builder.output("OUT", frame_difference(f0, 1))
    return builder.build()


def build_chained_temporal():
    """Two chained temporal reads: history depth (2) exceeds edge depth (1)."""
    builder = PipelineBuilder("tchain")
    f0 = builder.input("F0")
    a = builder.stage("A", f0(0, 0) + f0.prev(1))
    builder.output("OUT", a(0, 0) + a.prev(1))
    return builder.build()


class TestAxesDisambiguation:
    def test_unknown_convention_rejected(self):
        dag = build_chain()
        image = np.zeros((TEST_HEIGHT, TEST_WIDTH))
        with pytest.raises(SimulationError, match="axes"):
            run_functional(dag, {"K0": image}, axes="xyz")

    def test_temporal_dag_demands_explicit_tyx(self):
        dag = build_frame_diff()
        stack = np.zeros((3, TEST_HEIGHT, TEST_WIDTH))
        with pytest.raises(SimulationError, match="tyx"):
            run_functional(dag, {"F0": stack})
        with pytest.raises(SimulationError, match="tyx"):
            run_functional(dag, {"F0": stack}, axes="fyx")
        result = run_functional(dag, {"F0": stack}, axes="tyx")
        assert result.output().shape == stack.shape

    def test_yx_rejects_stacks(self):
        dag = build_chain()
        stack = np.zeros((3, TEST_HEIGHT, TEST_WIDTH))
        with pytest.raises(SimulationError, match="yx"):
            run_functional(dag, {"K0": stack}, axes="yx")

    def test_fyx_runs_independent_frames(self):
        dag = build_chain()
        stack = np.random.default_rng(0).uniform(size=(2, TEST_HEIGHT, TEST_WIDTH))
        batched = run_functional(dag, {"K0": stack}, axes="fyx")
        single = run_functional(dag, {"K0": stack[0]}, axes="yx")
        np.testing.assert_array_equal(batched.output()[0], single.output())


class TestReplayParity:
    @pytest.mark.parametrize("build", [build_frame_diff, build_chained_temporal])
    def test_vectorized_matches_frame_loop(self, build):
        dag = build()
        fast = replay_frames(dag, 32, 24, frames=5, seed=3)
        slow = replay_frames_loop(dag, 32, 24, frames=5, seed=3)
        assert fast.digest == slow.digest

    def test_first_frames_clamp_to_frame_zero(self):
        replay = replay_frames(build_frame_diff(), 16, 12, frames=3, seed=0)
        # |frame0 - frame0| = 0 everywhere on the clamped first frame.
        assert float(np.max(np.abs(replay.output()[0]))) == 0.0


class TestFrameBufferLegality:
    def _schedule(self):
        target = CompileTarget(
            dag=build_frame_diff(), image_width=TEST_WIDTH, image_height=TEST_HEIGHT
        )
        return compile_target(target).schedule

    def test_compiled_temporal_schedule_is_legal(self):
        schedule = self._schedule()
        assert frame_buffer_violations(schedule) == []
        report = check_schedule_legality(schedule)
        assert report.ok

    def test_missing_frame_buffer_flagged_by_both_checkers(self):
        schedule = self._schedule()
        schedule.frame_buffers = {}
        violations = frame_buffer_violations(schedule)
        assert violations and all(v[0] == "FB" for v in violations)
        assert not check_schedule_legality(schedule).ok
        assert not simulate_schedule(schedule).ok

    def test_shallow_frame_buffer_flagged(self):
        schedule = self._schedule()
        config = schedule.frame_buffers["F0"]
        schedule.frame_buffers = {
            "F0": FrameBufferConfig(
                producer=config.producer,
                image_width=config.image_width,
                image_height=config.image_height,
                depth=0,
                spec=config.spec,
            )
        }
        assert any(v[0] == "FB" for v in frame_buffer_violations(schedule))

    def test_geometry_mismatch_flagged(self):
        schedule = self._schedule()
        config = schedule.frame_buffers["F0"]
        schedule.frame_buffers = {
            "F0": FrameBufferConfig(
                producer=config.producer,
                image_width=config.image_width // 2,
                image_height=config.image_height,
                depth=config.depth,
                spec=config.spec,
            )
        }
        assert any(v[0] == "FB" for v in frame_buffer_violations(schedule))

    def test_spatial_schedules_unaffected(self):
        target = CompileTarget(
            dag=build_chain(), image_width=TEST_WIDTH, image_height=TEST_HEIGHT
        )
        schedule = compile_target(target).schedule
        assert frame_buffer_violations(schedule) == []
