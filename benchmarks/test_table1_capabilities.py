"""Table 1: which generator supports which memory assumption / algorithm form.

The paper's Table 1 is qualitative: Darkroom and SODA require dual-port
memories, FixyNN single-port, and only ImaGen handles a generic specification;
Darkroom/FixyNN natively target single-consumer pipelines.  This benchmark
checks those capabilities operationally: it tries to generate a design for a
single-consumer and a multi-consumer pipeline under single- and dual-port
memory specifications and reports the support matrix.
"""

from __future__ import annotations

import pytest

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.core.compiler import compile_pipeline
from repro.core.scheduler import SchedulerOptions
from repro.errors import ReproError
from repro.memory.spec import asic_dual_port, asic_single_port

W, H = 480, 320


def _can_generate(generator: str, algorithm: str, spec) -> bool:
    target = CompileTarget(
        dag=build_algorithm(algorithm),
        image_width=W,
        image_height=H,
        memory_spec=spec,
        options=SchedulerOptions(ports=spec.ports),
    )
    if generator != "ours":
        target = target.with_generator(generator)
    try:
        compile_pipeline(target)
        return True
    except ReproError:
        return False


def capability_matrix() -> dict[tuple[str, str, str], bool]:
    matrix = {}
    specs = {"single-port": asic_single_port(), "dual-port": asic_dual_port()}
    for generator in ("fixynn", "darkroom", "soda", "ours"):
        for algorithm in ("canny-s", "unsharp-m"):
            for spec_name, spec in specs.items():
                matrix[(generator, algorithm, spec_name)] = _can_generate(
                    generator, algorithm, spec
                )
    return matrix


def test_table1_capability_matrix(benchmark):
    matrix = benchmark(capability_matrix)

    print("\nTable 1 (operational form): design generated successfully?")
    for (generator, algorithm, spec_name), ok in sorted(matrix.items()):
        print(f"  {generator:<9} {algorithm:<10} {spec_name:<12} {'yes' if ok else 'no'}")

    # ImaGen handles every combination.
    assert all(ok for (gen, _, _), ok in matrix.items() if gen == "ours")
    # SODA and Darkroom cannot target single-port memories (paper Sec. 3.2).
    assert not matrix[("soda", "canny-s", "single-port")]
    assert not matrix[("darkroom", "canny-s", "single-port")]
    # FixyNN ignores extra ports but always produces single-port designs.
    assert matrix[("fixynn", "canny-s", "single-port")]
    assert matrix[("fixynn", "unsharp-m", "dual-port")]
    # Dual-port memories are handled by every generator.
    assert all(ok for (gen, alg, spec), ok in matrix.items() if spec == "dual-port")
