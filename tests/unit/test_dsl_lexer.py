"""Unit tests for the DSL tokenizer."""

import pytest

from repro.dsl.lexer import Token, tokenize
from repro.errors import DSLSyntaxError


class TestTokenize:
    def test_simple_statement(self):
        tokens = tokenize("input K0;")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "name", "symbol", "eof"]

    def test_keywords_recognised(self):
        tokens = tokenize("input output im end")
        assert all(t.kind == "keyword" for t in tokens[:-1])

    def test_numbers_integer_and_float(self):
        tokens = tokenize("3 2.5 0.125")
        values = [t.value for t in tokens if t.kind == "number"]
        assert values == ["3", "2.5", "0.125"]

    def test_two_char_symbols(self):
        tokens = tokenize("a <= b >= c == d != e")
        symbols = [t.value for t in tokens if t.kind == "symbol"]
        assert symbols == ["<=", ">=", "==", "!="]

    def test_line_comments_skipped(self):
        tokens = tokenize("// a comment\ninput K0;")
        assert tokens[0].value == "input"

    def test_block_comments_skipped(self):
        tokens = tokenize("/* multi\nline */ input K0;")
        assert tokens[0].value == "input"

    def test_unterminated_block_comment(self):
        with pytest.raises(DSLSyntaxError):
            tokenize("/* never closed")

    def test_positions_tracked(self):
        tokens = tokenize("input K0;\nK1 = im(x,y) K0(x,y) end")
        k1 = next(t for t in tokens if t.value == "K1")
        assert k1.line == 2
        assert k1.column == 1

    def test_unexpected_character(self):
        with pytest.raises(DSLSyntaxError):
            tokenize("input K0 @")

    def test_eof_token_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_identifier_with_underscore_and_digits(self):
        tokens = tokenize("stage_2b")
        assert tokens[0] == Token("name", "stage_2b", 1, 1)
