"""Stencil-window geometry.

A stencil window describes which neighbourhood of a producer image a consumer
stage reads to compute one output pixel.  The ImaGen formulation only needs
the window *height* (``SH`` in the paper), but the functional simulator and
the RTL generator need the full 2-D extent and the offsets, so the window is
kept as a first-class object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError


@dataclass(frozen=True)
class StencilWindow:
    """A rectangular stencil window expressed as pixel offsets.

    The window covers rows ``min_dy .. max_dy`` and columns ``min_dx .. max_dx``
    (inclusive) around the output coordinate.  ``height``/``width`` are the
    quantities used throughout the scheduling math.
    """

    min_dx: int
    max_dx: int
    min_dy: int
    max_dy: int

    def __post_init__(self) -> None:
        if self.max_dx < self.min_dx or self.max_dy < self.min_dy:
            raise GraphError(
                f"Degenerate stencil window: dx=[{self.min_dx},{self.max_dx}] "
                f"dy=[{self.min_dy},{self.max_dy}]"
            )

    @property
    def width(self) -> int:
        """Number of columns covered by the window (SW)."""
        return self.max_dx - self.min_dx + 1

    @property
    def height(self) -> int:
        """Number of rows covered by the window (SH in the paper)."""
        return self.max_dy - self.min_dy + 1

    @property
    def size(self) -> int:
        """Number of pixels read per output pixel."""
        return self.width * self.height

    @classmethod
    def from_extent(cls, width: int, height: int) -> "StencilWindow":
        """Build a top-left anchored window of the given extent.

        ``from_extent(3, 3)`` covers offsets ``dx in [0, 2]`` and ``dy in [0, 2]``.
        """
        if width < 1 or height < 1:
            raise GraphError(f"Stencil extent must be positive, got {width}x{height}")
        return cls(min_dx=0, max_dx=width - 1, min_dy=0, max_dy=height - 1)

    @classmethod
    def centered(cls, width: int, height: int) -> "StencilWindow":
        """Build a window centered on the output pixel (odd extents recommended)."""
        if width < 1 or height < 1:
            raise GraphError(f"Stencil extent must be positive, got {width}x{height}")
        half_w = (width - 1) // 2
        half_h = (height - 1) // 2
        return cls(
            min_dx=-half_w,
            max_dx=width - 1 - half_w,
            min_dy=-half_h,
            max_dy=height - 1 - half_h,
        )

    @classmethod
    def point(cls) -> "StencilWindow":
        """A 1x1 window (pointwise consumption)."""
        return cls(0, 0, 0, 0)

    def union(self, other: "StencilWindow") -> "StencilWindow":
        """Smallest window covering both windows.

        Used when a consumer references the same producer at several offsets
        (every DSL reference contributes a point; the union is the stencil).
        """
        return StencilWindow(
            min_dx=min(self.min_dx, other.min_dx),
            max_dx=max(self.max_dx, other.max_dx),
            min_dy=min(self.min_dy, other.min_dy),
            max_dy=max(self.max_dy, other.max_dy),
        )

    def offsets(self) -> list[tuple[int, int]]:
        """All (dx, dy) offsets in raster order."""
        return [
            (dx, dy)
            for dy in range(self.min_dy, self.max_dy + 1)
            for dx in range(self.min_dx, self.max_dx + 1)
        ]

    def normalized(self) -> "StencilWindow":
        """The same extent anchored at offset (0, 0).

        The scheduling formulation is invariant to the anchor; only the extent
        matters.  Normalising makes windows comparable across DSL styles.
        """
        return StencilWindow.from_extent(self.width, self.height)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.width}x{self.height}"
