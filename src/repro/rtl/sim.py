"""Pure-Python cycle-accurate simulation of the generated Verilog.

Stability: stable.

:func:`generate_verilog` emits a fixed, schematic subset of Verilog: a
cycle-counter controller, per-stage activation constants, one line buffer per
producer, window shift arrays, and purely combinational stage datapaths.
This module closes the verification gap between "the schedule is legal" and
"the emitted artifact works": it **elaborates** that source back into a
timing model (reusing :mod:`repro.rtl.lint`'s structural pass, then parsing
the numeric constants the generator printed — start cycles, image width,
line-buffer slot counts, the output mux) and **simulates** it two-state and
cycle-driven, whole rows at a time with NumPy.

The simulation is faithful to the storage and timing of the design, not to
its fixed-point bit patterns: arithmetic evaluates the stage DSL expressions
in float64 (exactly as :func:`repro.sim.functional.run_functional` does), but
every producer reference is served **through the elaborated line buffer** —
read-first SRAM semantics, ``lines``-slot rotation, activation offsets from
the parsed start cycles.  A pixel that the hardware would read before its
producer wrote it (R1 violation), or after its slot was recycled (R2
violation), comes back as the two-state ``X -> 0.0`` — so any illegal or
tampered schedule diverges from the functional replay instead of silently
passing.  When the schedule is legal, the resident row is provably the
requested row and the simulation is bit-exact with
:func:`repro.sim.batch.replay_frames`.

The residency model, per consumer read of producer ``P`` at stencil offset
``(dx, dy)`` over an edge with window top ``min_dy``:

* the consumer computing output row ``y`` occupies hardware raster position
  ``raster = clip(y + min_dy)``, column ``X = clip(x + dx)`` — the cycle is
  ``t = S_C + raster*W + X``;
* the writer put row ``r``, column ``X`` into the buffer at cycle
  ``S_P + r*W + X`` and a read at ``t`` sees it only when strictly earlier
  (read-first port), so the newest available row is
  ``avail = min(H-1, (t - S_P - X - 1) // W)``;
* the slot holding the requested row ``L = clip(y + dy)`` was last written
  by row ``R = L + lines * ((avail - L) // lines)`` — the greatest row
  congruent to ``L`` modulo ``lines`` that has been written; ``R == L``
  exactly when the schedule satisfies R1/R2, ``R < 0`` means the slot is
  still uninitialised (``X`` state).

An external HDL simulator (Icarus/Verilator) is an optional dependency gated
exactly like the solver backends: autodetected on ``PATH`` or named via
``REPRO_HDL_SIM``, and when present the generated source is additionally
syntax-checked through it (recorded in the verdict, never required).
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.dsl import ast
from repro.errors import SimulationError
from repro.ir.dag import PipelineDAG
from repro.ir.traversal import topological_order
from repro.rtl.expressions import sanitize
from repro.rtl.lint import lint_verilog
from repro.sim.batch import golden_frames, output_digest
from repro.trace import span_attr, trace_span

__all__ = [
    "ElaboratedDesign",
    "RTLSimResult",
    "elaborate_design",
    "simulate_design",
    "simulate_design_loop",
    "rtl_replay",
    "measure_performance",
    "external_simulator",
    "check_external_syntax",
]

_ACTIVE_RE = re.compile(
    r"wire active_([A-Za-z0-9_$]+) = running && \(cycle >= 32'd(\d+)\);"
)
_TOTAL_RE = re.compile(r"if \(cycle >= 32'd(\d+)\) begin")
_WIDTH_RE = re.compile(r"= pos_[A-Za-z0-9_$]+ % 32'd(\d+);")
_PIXEL_BITS_RE = re.compile(r"input\s+wire\s+\[(\d+):0\]\s*pixel_in")
_OUTPUT_RE = re.compile(r"assign pixel_out = pixel_([A-Za-z0-9_$]+);")
_WR_LINE_RE = re.compile(r"\.wr_line\(line_([A-Za-z0-9_$]+)\[\d+:0\] % (\d+)\)")


@dataclass(frozen=True)
class ElaboratedDesign:
    """The timing model recovered from one generated Verilog source.

    Every field is parsed back out of the *source text*, not taken from the
    schedule — that is the point: a schedule/source mismatch (codegen drift,
    a tampered constant) shows up as a simulation or performance divergence
    instead of being masked by trusting the schedule.
    """

    top_module: str
    image_width: int
    pixel_bits: int
    total_cycles: int
    #: Stage name (original DAG spelling) -> parsed activation start cycle.
    start_cycles: dict[str, int] = field(default_factory=dict)
    #: Producer stage name -> parsed line-buffer slot count.
    buffer_lines: dict[str, int] = field(default_factory=dict)
    #: Output stage names in DAG order (``pixel_out`` muxes the first).
    output_stages: tuple[str, ...] = ()
    module_names: tuple[str, ...] = ()


def elaborate_design(source: str, dag: PipelineDAG) -> ElaboratedDesign:
    """Parse one generated source back into an :class:`ElaboratedDesign`.

    Runs the structural linter first (lint errors are elaboration errors),
    then recovers the numeric constants the generator printed.  Raises
    :class:`~repro.errors.SimulationError` when the source does not look like
    the generator's dialect or disagrees structurally with ``dag``.
    """
    report = lint_verilog(source)
    if not report.ok:
        raise SimulationError(
            "RTL source fails structural lint: " + "; ".join(report.errors[:3])
        )

    names = {}
    for stage in dag.stage_names():
        key = sanitize(stage)
        if key in names:
            raise SimulationError(
                f"Stage names {names[key]!r} and {stage!r} collide after sanitization"
            )
        names[key] = stage

    starts: dict[str, int] = {}
    for key, cycles in _ACTIVE_RE.findall(source):
        if key in names:
            starts[names[key]] = int(cycles)
    missing = [s for s in dag.stage_names() if s not in starts]
    if missing:
        raise SimulationError(
            f"RTL source has no activation constant for stage(s) {missing}"
        )

    widths = {int(w) for w in _WIDTH_RE.findall(source)}
    if len(widths) != 1:
        raise SimulationError(
            f"RTL source has {'conflicting' if widths else 'no'} raster width "
            f"constants: {sorted(widths)}"
        )
    image_width = widths.pop()

    totals = _TOTAL_RE.findall(source)
    if not totals:
        raise SimulationError("RTL source has no frame-controller stop constant")
    total_cycles = int(totals[0])

    bits = _PIXEL_BITS_RE.search(source)
    pixel_bits = int(bits.group(1)) + 1 if bits else 32

    out = _OUTPUT_RE.search(source)
    if out is None:
        raise SimulationError("RTL source never drives pixel_out")
    output_keys = {sanitize(s.name): s.name for s in dag.output_stages()}
    if out.group(1) not in output_keys:
        raise SimulationError(
            f"pixel_out is driven by {out.group(1)!r}, which is not an output stage"
        )

    buffer_lines: dict[str, int] = {}
    for key, lines in _WR_LINE_RE.findall(source):
        if key in names:
            buffer_lines[names[key]] = int(lines)

    tops = report.top_modules
    top = next((t for t in tops if t.startswith("accelerator_")), tops[0] if tops else "")
    return ElaboratedDesign(
        top_module=top,
        image_width=image_width,
        pixel_bits=pixel_bits,
        total_cycles=total_cycles,
        start_cycles=starts,
        buffer_lines=buffer_lines,
        output_stages=tuple(s.name for s in dag.output_stages()),
        module_names=tuple(report.modules),
    )


@dataclass
class RTLSimResult:
    """Outcome of streaming frames through an elaborated design."""

    outputs: dict[str, np.ndarray]
    digest: str
    frames: int
    cycles_per_frame: int
    initiation_interval: int
    startup_cycles: int


# --------------------------------------------------------------------------
# The cycle-driven core
# --------------------------------------------------------------------------
def _line_buffer_tap(
    design: ElaboratedDesign,
    producer_image: np.ndarray,
    *,
    start_producer: int,
    start_consumer: int,
    lines: int,
    min_dy: int,
    dx: int,
    dy: int,
    fifo: bool = False,
) -> np.ndarray:
    """One whole-frame read of a producer through its elaborated line buffer.

    Vectorized over the full (H, W) output plane; implements the residency
    model from the module docstring.  Values whose slot is still
    uninitialised at read time come back as 0.0 (two-state ``X``).

    ``fifo`` switches to SODA's semantics: each consumer's split chain is a
    pure delay line *sized to its schedule by construction* — there are no
    slots to recycle, so eviction cannot happen (the event-walk legality
    checker skips R2/R3 for FIFO buffers for the same reason) and the only
    timing hazard left is causality: the wanted pixel must have been pushed
    strictly before the read.
    """
    height, width = producer_image.shape
    ys = np.arange(height)
    xs = np.arange(width)
    raster = np.clip(ys + min_dy, 0, height - 1)
    wanted = np.clip(ys + dy, 0, height - 1)
    cols = np.clip(xs + dx, 0, width - 1)
    delta = start_consumer - start_producer

    if fifo:
        # Push of row ``wanted`` passed this column at S_P + wanted*W; the
        # read happens at S_C + raster*W (column terms align — the window
        # shift registers absorb dx).
        lag = delta + (raster - wanted) * width
        fresh = lag >= 1
        out = producer_image[np.where(fresh, wanted, 0)[:, None], cols[None, :]]
        out[~fresh] = 0.0
        return out

    # Read and write touch the same column, so the column term cancels and
    # availability is per *row*: the newest row written before the read of
    # raster row R is R + floor((delta - 1) / W).
    avail = np.minimum(raster + (delta - 1) // width, height - 1)
    resident = wanted + lines * ((avail - wanted) // lines)
    fresh = resident == wanted  # (H,) — whole rows are fresh or stale

    out = producer_image[np.where(fresh, wanted, 0)[:, None], cols[None, :]]
    out[~fresh] = 0.0
    return out


def _resolve_origin(dag: PipelineDAG, name: str, seen: set[str] | None = None) -> str:
    """Follow relay/identity/virtual chains back to the originating stage."""
    seen = seen or set()
    if name in seen:
        return name
    seen.add(name)
    stage = dag.stage(name)
    if stage.virtual_of is not None:
        return _resolve_origin(dag, stage.virtual_of, seen)
    expr = stage.expression
    if expr is None:
        edges = dag.in_edges(name)
        if edges:
            return _resolve_origin(dag, edges[0].producer, seen)
        return name
    if isinstance(expr, ast.StageRef) and expr.dx == 0 and expr.dy == 0:
        return _resolve_origin(dag, expr.stage, seen)
    return name


def _resolve_edge(dag: PipelineDAG, consumer: str, producer: str):
    """The in-edge of ``consumer`` carrying data that originates at ``producer``.

    Direct edges win; otherwise rewrites (Darkroom relays, coalescing virtual
    stages) leave the expression referencing the origin while the data routes
    through an intermediate — follow each in-edge's origin chain.
    """
    edges = dag.in_edges(consumer)
    for edge in edges:
        if edge.producer == producer:
            return edge
    for edge in edges:
        if _resolve_origin(dag, edge.producer, set()) == producer:
            return edge
    return None


class _FrameContext:
    """Per-frame evaluation state: this frame's images plus the history."""

    def __init__(
        self,
        design: ElaboratedDesign,
        schedule,
        frame_index: int,
        history: dict[str, list[np.ndarray]],
    ) -> None:
        self.design = design
        self.schedule = schedule
        self.dag: PipelineDAG = schedule.dag
        self.frame = frame_index
        self.history = history
        self.images: dict[str, np.ndarray] = {}

    # -- spatial reads (through the elaborated line buffer) -----------------
    def edge_tap(self, consumer: str, edge, dx: int, dy: int) -> np.ndarray:
        producer = edge.producer
        lines = self.design.buffer_lines.get(producer)
        image = self.images[producer]
        if lines is None:
            # No elaborated buffer instance: the value arrives over a plain
            # wire, but the read must still be causal — one slot per row.
            lines = image.shape[0]
        config = self.schedule.line_buffers.get(producer)
        return _line_buffer_tap(
            self.design,
            image,
            start_producer=self.design.start_cycles[edge.producer],
            start_consumer=self.design.start_cycles[consumer],
            lines=lines,
            min_dy=edge.window.min_dy,
            dx=dx,
            dy=dy,
            fifo=config is not None and config.style == "fifo",
        )

    # -- temporal reads (through the frame buffer) --------------------------
    def frame_tap(self, consumer: str, ref: ast.StageRef) -> np.ndarray:
        if ref.dt > 0:
            raise SimulationError(
                f"Stage {consumer!r} reads {ref.stage!r} at future frame "
                f"offset dt={ref.dt}; the hardware cannot realize it"
            )
        producer = ref.stage
        effective = max(0, self.frame + ref.dt)
        needed = self.frame - effective
        base: np.ndarray
        if needed == 0:
            base = self.images[producer]
        else:
            buffer = self.schedule.frame_buffers.get(producer)
            if buffer is None:
                edge = _resolve_edge(self.dag, consumer, producer)
                if edge is not None:
                    buffer = self.schedule.frame_buffers.get(edge.producer)
            height, width = self.images[producer].shape
            if (
                buffer is None
                or buffer.depth < needed
                or buffer.image_width != width
                or buffer.image_height != height
            ):
                return np.zeros((height, width), dtype=np.float64)
            base = self.history[producer][effective]
        return ast._shifted(base, ref.dx, ref.dy)

    # -- reference dispatch -------------------------------------------------
    def fetch(self, consumer: str, ref: ast.StageRef) -> np.ndarray:
        if ref.dt != 0:
            return self.frame_tap(consumer, ref)
        edge = _resolve_edge(self.dag, consumer, ref.stage)
        if edge is None:
            # Not routed through storage this model elaborates (e.g. a
            # coalesced group's internal wire): the value arrives
            # combinationally, identical to the functional semantics.
            return ast._shifted(self.images[ref.stage], ref.dx, ref.dy)
        return self.edge_tap(consumer, edge, ref.dx, ref.dy)

    def evaluate(self, consumer: str, expr: ast.Expr, shape) -> np.ndarray:
        """Mirror of :func:`repro.dsl.ast.evaluate` with buffered reads."""
        if isinstance(expr, ast.Const):
            return np.full(shape, expr.value, dtype=np.float64)
        if isinstance(expr, ast.StageRef):
            return self.fetch(consumer, expr)
        if isinstance(expr, ast.UnaryOp):
            value = self.evaluate(consumer, expr.operand, shape)
            return np.abs(value) if expr.op == "abs" else -value
        if isinstance(expr, ast.BinOp):
            left = self.evaluate(consumer, expr.left, shape)
            right = self.evaluate(consumer, expr.right, shape)
            return ast._apply_binop(expr.op, left, right)
        if isinstance(expr, ast.Call):
            args = [self.evaluate(consumer, arg, shape) for arg in expr.args]
            return ast._apply_call(expr.fn, args)
        raise SimulationError(f"Cannot simulate expression node {expr!r}")

    def run_stage(self, name: str) -> np.ndarray:
        """One stage's full output frame, mirroring ``run_functional``'s
        fast paths so a legal design is bit-exact with the replay."""
        dag = self.dag
        stage = dag.stage(name)
        in_edges = dag.in_edges(name)
        expr = stage.expression
        if expr is None:
            if not in_edges:
                raise SimulationError(f"Stage {name!r} has no expression and no inputs")
            return self.edge_tap(name, in_edges[0], 0, 0)
        if isinstance(expr, ast.StageRef) and expr.dx == 0 and expr.dy == 0:
            # The functional replay copies the producer frame here (even for
            # dt != 0); the hardware relays tap (0, 0) of the window.
            edge = _resolve_edge(dag, name, expr.stage)
            if edge is None:
                return self.images[expr.stage].copy()
            return self.edge_tap(name, edge, 0, 0)
        shape = next(iter(self.images.values())).shape
        return self.evaluate(name, expr, shape)


def simulate_design(
    design: ElaboratedDesign, schedule, inputs: dict[str, np.ndarray]
) -> RTLSimResult:
    """Stream ``(frames, H, W)`` input stacks through the elaborated design.

    Frames stream back to back: the controller restarts per frame (line
    buffers reset; their state never carries across frames), while frame
    buffers retain their rotating history — the same contract the generated
    controller implements.  Returns the output stacks, their digest, and the
    measured per-frame cycle counts.
    """
    dag: PipelineDAG = schedule.dag
    stacks = {name: np.asarray(stack, dtype=np.float64) for name, stack in inputs.items()}
    for stage in dag.input_stages():
        if stage.name not in stacks:
            raise SimulationError(f"No input stack supplied for input stage {stage.name!r}")
        if stacks[stage.name].ndim != 3:
            raise SimulationError(
                f"Input stack for {stage.name!r} must be (frames, height, width)"
            )
    shapes = {stacks[s.name].shape for s in dag.input_stages()}
    if len(shapes) != 1:
        raise SimulationError(f"Input stacks must share one shape, got {shapes}")
    frames, height, width = shapes.pop()
    if width != design.image_width:
        raise SimulationError(
            f"Design rasterizes width {design.image_width}, inputs are {width} wide"
        )

    with trace_span("rtl_sim", frames=frames):
        order = [name for name in topological_order(dag)]
        history: dict[str, list[np.ndarray]] = {name: [] for name in dag.stage_names()}
        for f in range(frames):
            context = _FrameContext(design, schedule, f, history)
            for name in order:
                stage = dag.stage(name)
                if stage.is_input:
                    context.images[name] = stacks[name][f]
                else:
                    context.images[name] = context.run_stage(name)
            for name, image in context.images.items():
                history[name].append(image)
        outputs = {
            name: np.stack(history[name]) for name in design.output_stages
        }
        achieved = measure_performance(design, height)["cycles_per_frame"]
        span_attr(cycles_per_frame=achieved)

    return RTLSimResult(
        outputs=outputs,
        digest=output_digest(outputs),
        frames=frames,
        cycles_per_frame=achieved,
        initiation_interval=width * height,
        startup_cycles=achieved - width * height,
    )


def simulate_design_loop(
    design: ElaboratedDesign, schedule, inputs: dict[str, np.ndarray]
) -> RTLSimResult:
    """Per-pixel reference implementation of :func:`simulate_design`.

    Evaluates every output pixel through scalar (0-d NumPy) arithmetic — the
    oracle the row-vectorized path is benchmarked and property-tested
    against.  Semantics are identical by construction; only the iteration
    granularity differs.
    """
    dag: PipelineDAG = schedule.dag
    stacks = {name: np.asarray(stack, dtype=np.float64) for name, stack in inputs.items()}
    frames, height, width = next(iter(stacks.values())).shape

    def tap_scalar(context, consumer, edge, dx, dy, y, x):
        producer = edge.producer
        image = context.images[producer]
        lines = design.buffer_lines.get(producer, height)
        raster = min(max(y + edge.window.min_dy, 0), height - 1)
        wanted = min(max(y + dy, 0), height - 1)
        col = min(max(x + dx, 0), width - 1)
        delta = design.start_cycles[consumer] - design.start_cycles[producer]
        avail = min(raster + (delta - 1) // width, height - 1)
        config = schedule.line_buffers.get(producer)
        if config is not None and config.style == "fifo":
            lag = delta + (raster - wanted) * width
            if lag < 1:
                return np.float64(0.0)
        else:
            resident = wanted + lines * ((avail - wanted) // lines)
            if resident != wanted:
                return np.float64(0.0)
        return image[wanted, col]

    def eval_scalar(context, consumer, expr, y, x):
        if isinstance(expr, ast.Const):
            return np.float64(expr.value)
        if isinstance(expr, ast.StageRef):
            if expr.dt != 0:
                plane = context.frame_tap(consumer, expr)
                return plane[y, x]
            edge = _resolve_edge(dag, consumer, expr.stage)
            if edge is None:
                image = context.images[expr.stage]
                yy = min(max(y + expr.dy, 0), height - 1)
                xx = min(max(x + expr.dx, 0), width - 1)
                return image[yy, xx]
            return tap_scalar(context, consumer, edge, expr.dx, expr.dy, y, x)
        if isinstance(expr, ast.UnaryOp):
            value = eval_scalar(context, consumer, expr.operand, y, x)
            return np.abs(value) if expr.op == "abs" else -value
        if isinstance(expr, ast.BinOp):
            left = eval_scalar(context, consumer, expr.left, y, x)
            right = eval_scalar(context, consumer, expr.right, y, x)
            return ast._apply_binop(expr.op, left, right)
        if isinstance(expr, ast.Call):
            args = [eval_scalar(context, consumer, arg, y, x) for arg in expr.args]
            return ast._apply_call(expr.fn, args)
        raise SimulationError(f"Cannot simulate expression node {expr!r}")

    history: dict[str, list[np.ndarray]] = {name: [] for name in dag.stage_names()}
    order = [name for name in topological_order(dag)]
    for f in range(frames):
        context = _FrameContext(design, schedule, f, history)
        for name in order:
            stage = dag.stage(name)
            if stage.is_input:
                context.images[name] = stacks[name][f]
                continue
            expr = stage.expression
            out = np.empty((height, width), dtype=np.float64)
            in_edges = dag.in_edges(name)
            for y in range(height):
                for x in range(width):
                    if expr is None:
                        out[y, x] = tap_scalar(context, name, in_edges[0], 0, 0, y, x)
                    elif (
                        isinstance(expr, ast.StageRef)
                        and expr.dx == 0
                        and expr.dy == 0
                    ):
                        edge = _resolve_edge(dag, name, expr.stage)
                        if edge is None:
                            out[y, x] = context.images[expr.stage][y, x]
                        else:
                            out[y, x] = tap_scalar(context, name, edge, 0, 0, y, x)
                    else:
                        out[y, x] = eval_scalar(context, name, expr, y, x)
            context.images[name] = out
        for name, image in context.images.items():
            history[name].append(image)

    outputs = {name: np.stack(history[name]) for name in design.output_stages}
    achieved = measure_performance(design, height)["cycles_per_frame"]
    return RTLSimResult(
        outputs=outputs,
        digest=output_digest(outputs),
        frames=frames,
        cycles_per_frame=achieved,
        initiation_interval=width * height,
        startup_cycles=achieved - width * height,
    )


def rtl_replay(
    schedule, *, frames: int = 2, seed: int = 0, source: str | None = None
) -> RTLSimResult:
    """Golden-frame RTL replay of one schedule (elaborate + simulate)."""
    from repro.rtl.generator import generate_verilog

    if source is None:
        source = generate_verilog(schedule)
    design = elaborate_design(source, schedule.dag)
    inputs = golden_frames(
        schedule.dag,
        schedule.image_width,
        schedule.image_height,
        frames=frames,
        seed=seed,
    )
    return simulate_design(design, schedule, inputs)


# --------------------------------------------------------------------------
# Performance measurement
# --------------------------------------------------------------------------
def measure_performance(
    design: ElaboratedDesign, image_height: int, *, bound_cycles: int | None = None
) -> dict:
    """Achieved cycles/frame and initiation interval of the elaborated design.

    All numbers come from the *parsed* source: the last output pixel leaves
    ``W*H`` cycles (the initiation interval — one pixel per cycle) after the
    latest output stage activates, and the controller holds the frame until
    its own stop constant.  A drifted or tampered generator therefore shows
    up as ``achieved > bound`` even though source and bound were derived
    from the same schedule object.  When ``bound_cycles`` (typically
    ``schedule.end_to_end_latency_cycles``) is given, the payload carries
    the pass verdict.
    """
    starts = [design.start_cycles[name] for name in design.output_stages]
    latest = max(starts) if starts else 0
    interval = design.image_width * image_height
    achieved = max(latest + interval, design.total_cycles)
    payload = {
        "cycles_per_frame": achieved,
        "initiation_interval": interval,
        "startup_cycles": latest,
        "controller_cycles": design.total_cycles,
    }
    if bound_cycles is not None:
        payload["bound_cycles_per_frame"] = int(bound_cycles)
        payload["passed"] = achieved <= bound_cycles
    return payload


# --------------------------------------------------------------------------
# Optional external HDL simulator
# --------------------------------------------------------------------------
_HDL_TOOLS = ("iverilog", "verilator")
_HDL_DISABLED = {"", "0", "off", "none"}


def external_simulator() -> str | None:
    """Name/path of an external HDL tool, or ``None`` when unavailable.

    ``REPRO_HDL_SIM`` overrides autodetection: a command to use, or one of
    ``0``/``off``/``none`` to force the pure-Python path even when a tool is
    on ``PATH`` — the same opt-out convention as the solver backends.
    """
    override = os.environ.get("REPRO_HDL_SIM")
    if override is not None:
        return None if override.strip().lower() in _HDL_DISABLED else override
    for tool in _HDL_TOOLS:
        if shutil.which(tool):
            return tool
    return None


def check_external_syntax(source: str, tool: str) -> dict:
    """Syntax-check ``source`` through an external HDL tool, best effort.

    Returns ``{"tool", "ok", "detail"}``; a missing or crashing tool is
    reported, never raised — the external path is strictly additive.
    """
    with tempfile.NamedTemporaryFile("w", suffix=".v", delete=False) as handle:
        handle.write(source)
        path = handle.name
    base = os.path.basename(tool).lower()
    if "verilator" in base:
        command = [tool, "--lint-only", "-Wno-fatal", path]
    else:
        command = [tool, "-t", "null", path]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=60, check=False
        )
        detail = (proc.stderr or proc.stdout or "").strip()
        return {"tool": tool, "ok": proc.returncode == 0, "detail": detail[:2000]}
    except (OSError, subprocess.SubprocessError) as exc:
        return {"tool": tool, "ok": None, "detail": str(exc)[:2000]}
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass
