"""Shared helpers for the benchmark harness (one module per paper table/figure).

Every benchmark regenerates the corresponding table or figure of the paper:
it evaluates all five design styles (FixyNN, Darkroom, SODA, Ours, Ours+LC)
on the Table-3 algorithm suite at the paper's two resolutions and prints the
rows/series.  Absolute values differ from the paper (our SRAM/power models are
analytic, not silicon-calibrated); the comparisons of interest are the ratios
between generators, which EXPERIMENTS.md tracks against the paper's claims.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms import ALGORITHM_NAMES, build_algorithm
from repro.api import CompileTarget
from repro.core.compiler import compile_target
from repro.core.schedule import PipelineSchedule
from repro.estimate.report import AcceleratorReport, accelerator_report
from repro.service import CompileEngine

#: Resolutions used in the paper's evaluation.
RES_320P = (480, 320)
RES_1080P = (1920, 1080)

GENERATORS = ("fixynn", "darkroom", "soda", "ours", "ours+lc")


def design_target(generator: str, algorithm: str, width: int, height: int) -> CompileTarget:
    """The :class:`CompileTarget` of one design point (generator x algorithm x resolution)."""
    target = CompileTarget(
        dag=build_algorithm(algorithm),
        image_width=width,
        image_height=height,
        label=f"{algorithm}@{width}x{height}:{generator}",
    )
    if generator == "ours":
        return target
    if generator == "ours+lc":
        return target.with_options(coalescing=True)
    return target.with_generator(generator)


def build_design(
    generator: str,
    algorithm: str,
    width: int,
    height: int,
    engine: CompileEngine | None = None,
) -> PipelineSchedule:
    """Build one design point (generator x algorithm x resolution)."""
    target = design_target(generator, algorithm, width, height)
    if engine is not None:
        return engine.submit(target).unwrap().schedule
    return compile_target(target).schedule


def evaluate_all(
    width: int, height: int, engine: CompileEngine | None = None
) -> dict[str, dict[str, AcceleratorReport]]:
    """Evaluate every generator on every algorithm at one resolution.

    All five generators share one :class:`CompileEngine`: the plain solve of
    the ``ours+lc`` auto-coalescing fallback is a cache hit on the schedule
    already compiled for ``ours`` (one ILP solve saved per algorithm), and
    baseline designs are content-addressed too, so any evaluation that
    repeats a (generator, algorithm, resolution) point reuses it outright.
    """
    engine = engine or CompileEngine()
    results: dict[str, dict[str, AcceleratorReport]] = {}
    for algorithm in ALGORITHM_NAMES:
        results[algorithm] = {}
        for generator in GENERATORS:
            schedule = build_design(generator, algorithm, width, height, engine=engine)
            results[algorithm][generator] = accelerator_report(schedule)
    return results


def print_metric_table(
    title: str,
    results: dict[str, dict[str, AcceleratorReport]],
    metric: Callable[[AcceleratorReport], float],
    unit: str,
) -> dict[str, dict[str, float]]:
    """Print one figure's bar groups as a table and return the raw values."""
    table: dict[str, dict[str, float]] = {}
    print(f"\n{title}")
    header = f"{'algorithm':<12}" + "".join(f"{g:>12}" for g in GENERATORS)
    print(header)
    print("-" * len(header))
    for algorithm, by_generator in results.items():
        table[algorithm] = {g: metric(r) for g, r in by_generator.items()}
        row = f"{algorithm:<12}" + "".join(f"{table[algorithm][g]:>12.1f}" for g in GENERATORS)
        print(row)
    averages = {
        g: sum(table[a][g] for a in table) / len(table) for g in GENERATORS
    }
    print(f"{'average':<12}" + "".join(f"{averages[g]:>12.1f}" for g in GENERATORS) + f"   [{unit}]")
    table["average"] = averages
    return table


def savings(table: dict[str, dict[str, float]], ours: str, baseline: str) -> float:
    """Average percentage reduction of `ours` relative to `baseline` (paper-style)."""
    avg = table["average"]
    return 100.0 * (1.0 - avg[ours] / avg[baseline])
