"""Lightweight per-stage tracing spans with thread-local span stacks.

Stability: public.  (The service-facing surface — metric registry, stage
histograms, Prometheus exposition — lives in
:mod:`repro.service.observability`, which re-exports everything here.  This
module is deliberately stdlib-only and import-cycle-free so the hot path —
:mod:`repro.core.scheduler`, :mod:`repro.ilp.solver`,
:mod:`repro.service.cache`, :mod:`repro.rtl.generator` — can instrument
itself without pulling in the serving layer.)

The model is a conventional span tree:

* :func:`trace_span` opens one named span as a context manager; spans nest
  lexically, and each records ``{name, start, seconds, attrs}`` plus its
  children.  ``start`` is seconds since the enclosing trace began.
* :func:`span_attr` annotates the innermost open span (e.g. the ILP backend
  reports its iteration count into the ``ilp`` span without the scheduler
  having to thread a handle through).
* :class:`collect_spans` activates tracing on the *current thread* and
  collects the top-level spans.  Without an active collector — the default —
  :func:`trace_span` returns a shared no-op context manager: one thread-local
  attribute read and no allocation, so instrumented code costs effectively
  nothing when nobody is tracing.

Tracing state is thread-local: each executor worker (thread or process)
collects its own tree, and the engine ships it back on the
:class:`repro.service.jobs.CompileResult`.  Collectors nest — an inner
:class:`collect_spans` shadows the outer one and restores it on exit.

The global default (honoured by the engine and by process-pool workers) is
controlled by the ``REPRO_TRACE`` environment variable:
``REPRO_TRACE=0|false|off|no`` disables tracing everywhere.

Example::

    with collect_spans() as trace:
        with trace_span("solve", strategy="bigm"):
            with trace_span("ilp"):
                span_attr(iterations=42)
    trace.spans  # (Span(name="solve", children=(Span(name="ilp"), ...)),)
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

#: Environment variable controlling the global tracing default.
TRACE_ENV_VAR = "REPRO_TRACE"

_FALSY = ("0", "false", "off", "no")


def default_tracing() -> bool:
    """Whether tracing is enabled by default (``REPRO_TRACE``, default on)."""
    return os.environ.get(TRACE_ENV_VAR, "").strip().lower() not in _FALSY


@dataclass(frozen=True)
class Span:
    """One completed span: a named, timed slice of a compile.

    ``start`` is seconds since the enclosing :class:`collect_spans` began;
    ``seconds`` is the span's own (inclusive) duration.  ``attrs`` carry
    JSON-serializable scalars only, so spans cross the process-pool wire
    boundary losslessly.
    """

    name: str
    start: float
    seconds: float
    attrs: dict = field(default_factory=dict)
    children: tuple["Span", ...] = ()

    def to_payload(self) -> dict:
        """Flatten to the nested-dict wire form (see docs/observability.md)."""
        payload: dict = {
            "name": self.name,
            "start": round(self.start, 9),
            "seconds": round(self.seconds, 9),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_payload() for child in self.children]
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_payload` output."""
        if not isinstance(payload, dict) or "name" not in payload:
            raise ValueError(f"Span payload must be an object with a name, got {payload!r}")
        return cls(
            name=str(payload["name"]),
            start=float(payload.get("start", 0.0)),
            seconds=float(payload.get("seconds", 0.0)),
            attrs=dict(payload.get("attrs") or {}),
            children=tuple(
                cls.from_payload(child) for child in payload.get("children") or ()
            ),
        )

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def flatten_spans(spans) -> list[Span]:
    """Every span in a forest, depth-first (histogram aggregation order)."""
    flat: list[Span] = []
    for span in spans:
        flat.extend(span.walk())
    return flat


def spans_to_payload(spans) -> list[dict]:
    """Serialize a span forest for the wire / HTTP ``"spans"`` field."""
    return [span.to_payload() for span in spans]


def spans_from_payload(payload) -> tuple[Span, ...]:
    """Decode a span forest; malformed entries raise :class:`ValueError`."""
    if payload is None:
        return ()
    if not isinstance(payload, (list, tuple)):
        raise ValueError(f"Spans payload must be a list, got {type(payload).__name__}")
    return tuple(Span.from_payload(item) for item in payload)


# ---------------------------------------------------------------------------
# Thread-local tracing state
# ---------------------------------------------------------------------------
class _TraceState(threading.local):
    """Per-thread collector state; ``frames is None`` means "not tracing"."""

    def __init__(self) -> None:
        self.frames: list[list[Span]] | None = None  # stack of children lists
        self.open: list["_ActiveSpan"] = []          # stack of open spans
        self.epoch: float = 0.0                      # trace start (perf_counter)


_STATE = _TraceState()


class _NoopSpan:
    """Shared do-nothing context manager for the tracing-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopSpan()


class _ActiveSpan:
    """An open span being timed; frozen into a :class:`Span` on exit."""

    __slots__ = ("name", "attrs", "_children", "_start", "_t0")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        self._children: list[Span] = []
        _STATE.frames.append(self._children)
        _STATE.open.append(self)
        self._t0 = time.perf_counter()
        self._start = self._t0 - _STATE.epoch
        return self

    def __exit__(self, *exc_info) -> bool:
        seconds = time.perf_counter() - self._t0
        frames = _STATE.frames
        frames.pop()
        _STATE.open.pop()
        frames[-1].append(
            Span(
                name=self.name,
                start=self._start,
                seconds=seconds,
                attrs=self.attrs,
                children=tuple(self._children),
            )
        )
        return False


def trace_span(name: str, **attrs):
    """Open one named span on the current thread's trace.

    Returns a context manager.  When no :class:`collect_spans` is active on
    this thread (the overwhelmingly common case for library users), a shared
    no-op is returned — the disabled cost is one attribute read.
    """
    if _STATE.frames is None:
        return _NOOP
    return _ActiveSpan(name, attrs)


def span_attr(**attrs) -> None:
    """Merge attributes into the innermost open span (no-op when not tracing).

    This is how deep layers report facts upward without plumbing: the
    branch-and-bound solver calls ``span_attr(bnb_nodes=...)`` and the
    annotation lands on whatever span the caller opened around it.
    """
    open_spans = _STATE.open
    if open_spans:
        open_spans[-1].attrs.update(attrs)


def tracing_active() -> bool:
    """Whether a collector is active on the current thread."""
    return _STATE.frames is not None


class collect_spans:
    """Activate tracing on this thread and collect the top-level spans.

    ::

        trace = collect_spans(enabled=engine.tracing)
        with trace:
            compile_pipeline(target, cache=cache)
        result.spans = trace.spans

    ``enabled=False`` makes the whole block a no-op (``spans`` stays empty),
    so callers can thread a config flag without branching.  Collectors nest:
    the previous collector (if any) is shadowed and restored on exit, each
    with its own epoch.
    """

    __slots__ = ("enabled", "spans", "_root", "_saved")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: tuple[Span, ...] = ()

    def __enter__(self) -> "collect_spans":
        if not self.enabled:
            self._saved = None
            return self
        self._saved = (_STATE.frames, _STATE.open, _STATE.epoch)
        self._root = []
        _STATE.frames = [self._root]
        _STATE.open = []
        _STATE.epoch = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._saved is None:
            return False
        self.spans = tuple(self._root)
        _STATE.frames, _STATE.open, _STATE.epoch = self._saved
        return False
