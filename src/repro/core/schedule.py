"""The pipeline schedule produced by the optimizer or a baseline generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchedulingError
from repro.ir.dag import PipelineDAG
from repro.memory.linebuffer import LineBufferConfig
from repro.memory.spec import MemorySpec


@dataclass
class PipelineSchedule:
    """A fully-determined line-buffered accelerator design.

    The schedule records, for every stage, its start cycle (the optimization
    variables of Eq. 1a) and, for every producer, the physical line-buffer
    configuration realising the resulting delays.  It is the single artifact
    consumed by the simulators, the estimators and the RTL generator.
    """

    dag: PipelineDAG
    image_width: int
    image_height: int
    memory_spec: MemorySpec
    start_cycles: dict[str, int]
    line_buffers: dict[str, LineBufferConfig]
    generator: str = "imagen"
    coalesce_factors: dict[str, int] = field(default_factory=dict)
    solver_stats: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.dag.stage_names():
            if name not in self.start_cycles:
                raise SchedulingError(f"Schedule is missing a start cycle for stage {name!r}")

    # --------------------------------------------------------------- timing
    def start(self, stage: str) -> int:
        try:
            return self.start_cycles[stage]
        except KeyError:
            raise SchedulingError(f"Unknown stage {stage!r} in schedule") from None

    def delay(self, producer: str, consumer: str) -> int:
        """Start-cycle gap between a producer and one of its consumers."""
        return self.start(consumer) - self.start(producer)

    def max_delay(self, producer: str) -> int:
        """The largest consumer delay of ``producer`` (0 when it has none)."""
        consumers = self.dag.consumers_of(producer)
        if not consumers:
            return 0
        return max(self.delay(producer, c) for c in consumers)

    @property
    def pixels_per_frame(self) -> int:
        return self.image_width * self.image_height

    @property
    def steady_state_throughput(self) -> float:
        """Pixels produced per cycle once the pipeline is primed (by construction 1.0)."""
        return 1.0

    @property
    def end_to_end_latency_cycles(self) -> int:
        """Cycles from the first input pixel until the last output pixel."""
        outputs = self.dag.output_stages()
        if not outputs:
            raise SchedulingError("Pipeline has no output stage")
        return max(self.start(o.name) for o in outputs) + self.pixels_per_frame

    @property
    def startup_latency_cycles(self) -> int:
        """Cycles before the first output pixel appears."""
        outputs = self.dag.output_stages()
        return max(self.start(o.name) for o in outputs) + 1

    # --------------------------------------------------------------- memory
    @property
    def total_line_slots(self) -> int:
        return sum(config.lines for config in self.line_buffers.values())

    @property
    def total_blocks(self) -> int:
        return sum(config.num_blocks for config in self.line_buffers.values())

    @property
    def total_allocated_bits(self) -> int:
        return sum(config.allocated_bits for config in self.line_buffers.values())

    @property
    def total_allocated_kbytes(self) -> float:
        return self.total_allocated_bits / 8192.0

    @property
    def total_data_bits(self) -> int:
        return sum(config.data_bits for config in self.line_buffers.values())

    @property
    def total_data_kbytes(self) -> float:
        return self.total_data_bits / 8192.0

    @property
    def total_dff_pixels(self) -> int:
        return sum(config.dff_pixels for config in self.line_buffers.values())

    # --------------------------------------------------------------- report
    def describe(self) -> str:
        lines = [
            f"schedule[{self.generator}] for {self.dag.name} "
            f"({self.image_width}x{self.image_height}, {self.memory_spec.name})"
        ]
        for name in self.dag.stage_names():
            start = self.start(name)
            buffer = self.line_buffers.get(name)
            extra = f", LB={buffer.lines} lines/{buffer.num_blocks} blocks" if buffer else ""
            lines.append(f"  {name}: start={start}{extra}")
        lines.append(
            f"  total: {self.total_blocks} blocks, {self.total_allocated_kbytes:.1f} KB allocated, "
            f"{self.total_data_kbytes:.1f} KB data"
        )
        return "\n".join(lines)
