#!/usr/bin/env python3
"""Verify compiled designs over HTTP: correctness as a cached service query.

Boots the HTTP front on an ephemeral port and drives `POST /v1/verify` the
way a design-space sweep would: verify a catalog pipeline (golden replay +
reserved-table cycle legality), verify it again (answered from the verdict
cache), check that a baseline generator's rewrites compute bit-identical
pixels, pin an expected digest, and watch a strict-mode failure come back as
a typed 422 instead of a 500.

The same checks double as the CI smoke for the verification subsystem, so
every assertion here is a service-level guarantee.

Run:  python examples/verify_service.py
"""

from __future__ import annotations

import tempfile

from repro import CompileEngine, CompileTarget
from repro.algorithms import build_algorithm
from repro.service import ServiceClient, ServiceError, start_server


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="imagen-verify-") as cache_dir:
        engine = CompileEngine(workers=2, cache_dir=cache_dir)
        server = start_server(engine)  # port=0: ephemeral
        client = ServiceClient(port=server.port)
        try:
            print(f"service on http://127.0.0.1:{server.port}  {client.health()}")

            target = CompileTarget(
                build_algorithm("unsharp-m"), image_width=480, image_height=320
            )

            # Cold verify: compiles (or reuses the compile cache), replays
            # deterministic frames through reference and compiled DAGs, and
            # checks R1-R3 legality with the reserved-table analysis.
            cold = client.verify(target)
            warm = client.verify(target)
            for tag, verdict in (("cold", cold), ("warm", warm)):
                print(
                    f"  {tag}: passed={verdict['passed']} "
                    f"source={verdict['source']:<8} "
                    f"{verdict['seconds'] * 1000:7.1f} ms  "
                    f"golden={verdict['golden']['max_abs_error']}  "
                    f"cycle={verdict['cycle']['method']}"
                )
            assert cold["ok"] and cold["passed"]
            assert cold["source"] == "verified"
            assert warm["source"] in ("memory", "disk"), warm["source"]
            assert cold["cycle"]["method"] == "reserved-table"

            # A baseline generator rewrites the pipeline (relays, FIFO
            # splitting) — the golden digest proves the pixels don't change.
            soda = client.verify(target.with_generator("soda"), check="golden")
            assert soda["passed"]
            assert soda["golden"]["digest"] == cold["golden"]["digest"]
            print(f"  soda rewrite: digest match ({soda['golden']['digest'][:12]}…)")

            # Pinning the digest turns the verify into a regression check.
            pinned = client.verify(
                target, check="golden", expected_digest=cold["golden"]["digest"]
            )
            assert pinned["passed"]

            # Strict mode + a wrong pin: a typed 422, never a 500.
            try:
                client.verify(
                    target, check="golden", expected_digest="0" * 64, strict=True
                )
                raise AssertionError("strict verify with a bad pin must fail")
            except ServiceError as exc:
                assert exc.status == 422 and exc.body["reason"] == "verify-failed"
                print(f"  strict pin mismatch: HTTP 422 {exc.body['reason']!r}")

            # The observability surface: verify spans and verify_* counters.
            traced = client.verify(target, check="cycle", trace=True)
            assert traced["spans"][0]["name"] == "verify"
            metrics = client.metrics()
            assert metrics["verify_requests"] >= 5
            assert metrics["verify_served_from_memory"] >= 1
            exposition = client.metrics_prometheus()
            assert "repro_verify_requests_total" in exposition
            assert 'repro_stage_seconds_count{stage="verify"}' in exposition
            verify_counters = {
                key: value for key, value in metrics.items() if key.startswith("verify_")
            }
            print(f"  metrics: {verify_counters}")
            print("OK: verification service round trip")
        finally:
            server.stop()
            engine.shutdown()


if __name__ == "__main__":
    main()
