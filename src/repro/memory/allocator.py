"""Packing line-buffer lines into physical memory blocks.

Two allocation styles are supported:

* :func:`allocate_line_buffer` — the classic addressable line buffer used by
  Darkroom, FixyNN and ImaGen.  Each block holds ``coalesce_factor``
  consecutive line slots (1 when coalescing is off); a line wider than a
  block spills across several blocks.
* :func:`allocate_fifo_buffer` — the SODA arrangement: the buffer is a chain
  of FIFOs, one per full line of reuse, the final partial line lives in DFFs,
  and the whole chain is replicated per extra consumer ("FIFO splitting" keeps
  total capacity but doubles the number of (smaller) FIFOs; we model the
  replication of access chains and keep capacity per chain).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import AllocationError
from repro.memory.linebuffer import BlockAssignment, FrameBufferConfig, LineBufferConfig
from repro.memory.spec import MemorySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.dag import PipelineDAG


def dff_realization_threshold(image_width: int) -> int:
    """Largest producer->consumer delay (in pixels) realised as DFFs rather than SRAM.

    Very small buffers (a pointwise consumer needs to hold only a pixel or
    two) are cheaper as flip-flop shift registers than as an SRAM line — the
    same observation the paper makes for SODA's short FIFOs (Fig. 4).  The
    threshold grows mildly with the line width but is capped so a full image
    line is never put in DFFs.
    """
    return min(64, max(8, image_width // 8))


def allocate_register_buffer(
    producer: str,
    image_width: int,
    delay_pixels: int,
    spec: MemorySpec,
    *,
    reader_heights: dict[str, int] | None = None,
) -> LineBufferConfig:
    """Realise a sub-line buffer as a DFF shift register (no SRAM blocks)."""
    if delay_pixels < 0:
        raise AllocationError(f"Negative delay for {producer!r}")
    return LineBufferConfig(
        producer=producer,
        image_width=image_width,
        lines=0,
        spec=spec,
        coalesce_factor=1,
        style="registers",
        dff_pixels=delay_pixels + 1,
        reader_heights=dict(reader_heights or {}),
    )


def allocate_line_buffer(
    producer: str,
    image_width: int,
    lines: int,
    spec: MemorySpec,
    *,
    coalesce_factor: int = 1,
    reader_heights: dict[str, int] | None = None,
) -> LineBufferConfig:
    """Pack ``lines`` line slots of ``image_width`` pixels into blocks.

    ``coalesce_factor`` is the number of line slots per block (Sec. 6); it is
    clamped to the block's physical capacity and the spec's port count by the
    caller (the scheduler), but re-validated here.
    """
    if lines < 0:
        raise AllocationError(f"Negative line count for {producer!r}")
    if coalesce_factor < 1:
        raise AllocationError(f"Coalescing factor must be >= 1, got {coalesce_factor}")

    config = LineBufferConfig(
        producer=producer,
        image_width=image_width,
        lines=lines,
        spec=spec,
        coalesce_factor=coalesce_factor,
        style="sram",
        reader_heights=dict(reader_heights or {}),
    )
    if lines == 0:
        return config

    line_bits = spec.line_bits(image_width)
    blocks: list[BlockAssignment] = []

    if line_bits > spec.block_bits:
        if coalesce_factor != 1:
            raise AllocationError(
                f"Cannot coalesce lines of {line_bits} bits into {spec.block_bits}-bit blocks"
            )
        segments = spec.blocks_per_line(image_width)
        bits_left_per_line = [line_bits] * lines
        index = 0
        for line_slot in range(lines):
            remaining = bits_left_per_line[line_slot]
            for segment in range(segments):
                used = min(spec.block_bits, remaining)
                blocks.append(
                    BlockAssignment(index=index, line_slots=(line_slot,), segment=segment, used_bits=used)
                )
                remaining -= used
                index += 1
    else:
        capacity_lines = spec.lines_per_block(image_width)
        factor = min(coalesce_factor, capacity_lines)
        if factor < coalesce_factor:
            raise AllocationError(
                f"Block of {spec.block_bits} bits holds only {capacity_lines} lines; "
                f"cannot coalesce {coalesce_factor}"
            )
        index = 0
        slot = 0
        while slot < lines:
            group = tuple(range(slot, min(slot + factor, lines)))
            blocks.append(
                BlockAssignment(index=index, line_slots=group, used_bits=len(group) * line_bits)
            )
            slot += factor
            index += 1

    config.blocks = blocks
    return config


def allocate_frame_buffer(
    producer: str,
    image_width: int,
    image_height: int,
    depth: int,
    spec: MemorySpec,
) -> FrameBufferConfig:
    """Size the whole-frame history buffer of one temporal producer.

    ``depth`` past frames of ``image_height x image_width`` pixels are
    retained, banked one frame per bank (see
    :class:`repro.memory.linebuffer.FrameBufferConfig`).  All generators share
    this allocation: frame buffers sit behind the raster-scan line-buffer
    fabric, so ImaGen, Darkroom, SODA and FixyNN pay the same frame SRAM for
    the same DAG.
    """
    if depth < 1:
        raise AllocationError(f"Frame buffer for {producer!r} needs depth >= 1, got {depth}")
    if image_width < 1 or image_height < 1:
        raise AllocationError(
            f"Frame buffer for {producer!r} needs a positive image extent, "
            f"got {image_width}x{image_height}"
        )
    return FrameBufferConfig(
        producer=producer,
        image_width=image_width,
        image_height=image_height,
        depth=depth,
        spec=spec,
    )


def derive_frame_buffers(
    dag: "PipelineDAG",
    image_width: int,
    image_height: int,
    spec: MemorySpec,
) -> list[FrameBufferConfig]:
    """Frame buffers a pipeline needs: one per producer with temporal consumers.

    A pure function of the DAG and image geometry — no start cycles involved —
    so every schedule construction site (the ImaGen scheduler, each baseline
    generator, and cache deserialization) derives the identical list.  Returns
    ``[]`` for purely spatial pipelines.  Order follows the DAG's stage
    insertion order for determinism.
    """
    depths = dag.frame_depths()
    if not depths:
        return []
    return [
        allocate_frame_buffer(name, image_width, image_height, depths[name], spec)
        for name in dag.stage_names()
        if name in depths
    ]


def allocate_fifo_buffer(
    producer: str,
    image_width: int,
    reuse_lines: int,
    spec: MemorySpec,
    *,
    num_consumers: int = 1,
    tail_pixels: int | None = None,
    reader_heights: dict[str, int] | None = None,
) -> LineBufferConfig:
    """SODA-style FIFO allocation.

    ``reuse_lines`` is the number of *full* lines of reuse distance
    (``max stencil height - 1``); the final partial line (``tail_pixels``,
    default a few pixels, i.e. the stencil width) is implemented as a DFF
    shift register and therefore consumes no SRAM.  With several consumers,
    every FIFO is split into ``num_consumers`` smaller FIFOs, each in its own
    memory block (Fig. 4b): total capacity per reuse line is unchanged but the
    number of (smaller) blocks multiplies, and each block still serves one
    read plus one write every cycle.
    """
    if reuse_lines < 0:
        raise AllocationError(f"Negative reuse distance for {producer!r}")
    if num_consumers < 1:
        raise AllocationError("A FIFO buffer needs at least one consumer")

    splits = max(1, num_consumers)
    config = LineBufferConfig(
        producer=producer,
        image_width=image_width,
        lines=reuse_lines,
        spec=spec,
        coalesce_factor=1,
        style="fifo",
        dff_pixels=tail_pixels if tail_pixels is not None else 3,
        fifo_chains=splits,
        reader_heights=dict(reader_heights or {}),
    )
    if reuse_lines == 0:
        return config

    line_bits = spec.line_bits(image_width)
    piece_bits = -(-line_bits // splits)  # ceil division: bits per split FIFO
    segments_per_piece = max(1, -(-piece_bits // spec.block_bits))
    blocks: list[BlockAssignment] = []
    index = 0
    for line_slot in range(reuse_lines):
        for _split in range(splits):
            remaining = piece_bits
            for segment in range(segments_per_piece):
                used = min(spec.block_bits, remaining)
                blocks.append(
                    BlockAssignment(index=index, line_slots=(line_slot,), segment=segment, used_bits=used)
                )
                remaining -= used
                index += 1
    config.blocks = blocks
    return config
