"""Temporal surface of the DSL: parser syntax, builder helpers, evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsl import ast, parse_pipeline
from repro.dsl.ast import evaluate, stencil_windows
from repro.dsl.builder import (
    PipelineBuilder,
    frame_difference,
    temporal_average,
)
from repro.errors import DSLSemanticError, DSLSyntaxError


class TestParserTemporalSyntax:
    def test_three_axis_header_and_offsets(self):
        dag = parse_pipeline(
            "input F0; output D = im(x,y,t) abs(F0(x,y,t) - F0(x,y,t-1)) end"
        )
        assert dag.is_temporal()
        assert dag.temporal_depth() == 1

    def test_prev_sugar(self):
        dag = parse_pipeline(
            "input F0; output D = im(x,y,t) abs(F0(x,y,t) - prev(F0, 2)) end"
        )
        assert dag.temporal_depth() == 2

    def test_prev_requires_positive_frames(self):
        with pytest.raises(DSLSyntaxError):
            parse_pipeline("input F0; output D = im(x,y,t) prev(F0, 0) end")

    def test_frame_offset_without_temporal_header_rejected(self):
        with pytest.raises(DSLSyntaxError, match="im\\(x, y, t\\)"):
            parse_pipeline("input F0; output D = im(x,y) F0(x,y,t-1) end")

    def test_two_axis_pipelines_unchanged(self):
        dag = parse_pipeline(
            "input F0; output D = im(x,y) F0(x-1,y) + F0(x+1,y) end"
        )
        assert not dag.is_temporal()


class TestBuilderTemporalHelpers:
    def test_handle_call_accepts_dt(self):
        builder = PipelineBuilder("b")
        f0 = builder.input("F0")
        ref = f0(0, 0, -2)
        assert isinstance(ref, ast.StageRef)
        assert ref.dt == -2

    def test_prev_helper(self):
        builder = PipelineBuilder("b")
        f0 = builder.input("F0")
        assert f0.prev(3).dt == -3
        with pytest.raises(DSLSemanticError):
            f0.prev(0)

    def test_temporal_average_window(self):
        builder = PipelineBuilder("b")
        f0 = builder.input("F0")
        expr = temporal_average(f0, 3)
        window = stencil_windows(expr)["F0"]
        assert (window.min_dt, window.max_dt) == (-2, 0)

    def test_temporal_average_needs_depth(self):
        builder = PipelineBuilder("b")
        f0 = builder.input("F0")
        with pytest.raises(DSLSemanticError):
            temporal_average(f0, 0)

    def test_frame_difference_window(self):
        builder = PipelineBuilder("b")
        f0 = builder.input("F0")
        window = stencil_windows(frame_difference(f0, 2))["F0"]
        assert (window.min_dt, window.max_dt) == (-2, 0)

    def test_stage_ref_str_stable_for_dt_zero(self):
        assert str(ast.StageRef("K0", 1, -1)) == str(ast.StageRef("K0", 1, -1, 0))
        assert "t-2" in str(ast.StageRef("K0", 0, 0, -2))


class TestTemporalEvaluation:
    def test_dt_shifts_along_frame_axis_with_clamp(self):
        frames = np.arange(3 * 2 * 2, dtype=np.float64).reshape(3, 2, 2)
        expr = ast.StageRef("F0", 0, 0, -1)
        shifted = evaluate(expr, {"F0": frames})
        # Frame 0 clamps to itself; frames 1..2 see their predecessor.
        np.testing.assert_array_equal(shifted[0], frames[0])
        np.testing.assert_array_equal(shifted[1], frames[0])
        np.testing.assert_array_equal(shifted[2], frames[1])

    def test_temporal_ref_on_single_frame_rejected(self):
        image = np.zeros((4, 4))
        with pytest.raises(DSLSemanticError, match="2-D frame"):
            evaluate(ast.StageRef("F0", 0, 0, -1), {"F0": image})

    def test_weighted_temporal_average_matches_numpy(self):
        rng = np.random.default_rng(7)
        frames = rng.uniform(size=(4, 3, 3))
        builder = PipelineBuilder("b")
        f0 = builder.input("F0")
        expr = temporal_average(f0, 2, weights=(3.0, 1.0))
        got = evaluate(expr, {"F0": frames})
        prev = np.concatenate([frames[:1], frames[:-1]])
        expected = (3.0 * frames + 1.0 * prev) / 4.0
        np.testing.assert_allclose(got, expected)
