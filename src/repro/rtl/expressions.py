"""DSL expression -> Verilog expression translation.

Pixels travel through the datapath as signed fixed-point values with
``FRACTION_BITS`` fractional bits; constants are rounded to the same format,
multiplication re-normalises with an arithmetic shift, and division
pre-scales the numerator.  The translation is purely combinational — the
paper's point that stage code generation is a mechanical translation
(Sec. 4) — and every producer reference maps to a named window-register wire.
"""

from __future__ import annotations

from repro.dsl import ast
from repro.errors import RTLError

#: Fixed-point fractional bits used throughout the generated datapath.
FRACTION_BITS = 8

#: Total datapath width in bits.
DATA_WIDTH = 32


def window_wire(stage: str, dx: int, dy: int) -> str:
    """Name of the window-register wire holding producer ``stage`` at (dx, dy)."""

    def tag(value: int) -> str:
        return f"p{value}" if value >= 0 else f"m{-value}"

    return f"win_{sanitize(stage)}_{tag(dx)}_{tag(dy)}"


def sanitize(name: str) -> str:
    """Make a stage name usable as a Verilog identifier."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"s_{cleaned}"
    return cleaned


def constant_literal(value: float) -> str:
    fixed = int(round(value * (1 << FRACTION_BITS)))
    if fixed < 0:
        return f"-{DATA_WIDTH}'sd{abs(fixed)}"
    return f"{DATA_WIDTH}'sd{fixed}"


def translate(expr: ast.Expr) -> str:
    """Translate an expression AST into a Verilog combinational expression."""
    if isinstance(expr, ast.Const):
        return constant_literal(expr.value)
    if isinstance(expr, ast.StageRef):
        return window_wire(expr.stage, expr.dx, expr.dy)
    if isinstance(expr, ast.UnaryOp):
        inner = translate(expr.operand)
        if expr.op == "-":
            return f"(-{inner})"
        if expr.op == "abs":
            return f"(({inner} < 0) ? (-{inner}) : ({inner}))"
        raise RTLError(f"Unsupported unary operator {expr.op!r}")
    if isinstance(expr, ast.BinOp):
        left = translate(expr.left)
        right = translate(expr.right)
        return _binop(expr.op, left, right)
    if isinstance(expr, ast.Call):
        args = [translate(a) for a in expr.args]
        return _call(expr.fn, args)
    raise RTLError(f"Cannot translate expression node {expr!r}")


def _binop(op: str, left: str, right: str) -> str:
    one = constant_literal(1.0)
    if op == "+":
        return f"({left} + {right})"
    if op == "-":
        return f"({left} - {right})"
    if op == "*":
        return f"((({left}) * ({right})) >>> {FRACTION_BITS})"
    if op in ("/", "//"):
        return f"((({left}) <<< {FRACTION_BITS}) / (({right} == 0) ? {one} : ({right})))"
    if op == "min":
        return f"(({left} < {right}) ? ({left}) : ({right}))"
    if op == "max":
        return f"(({left} > {right}) ? ({left}) : ({right}))"
    if op in ("<", ">", "<=", ">=", "==", "!="):
        return f"(({left} {op} {right}) ? {one} : {constant_literal(0.0)})"
    raise RTLError(f"Unsupported binary operator {op!r}")


def _call(fn: str, args: list[str]) -> str:
    if fn == "abs":
        return f"(({args[0]} < 0) ? (-{args[0]}) : ({args[0]}))"
    if fn == "sqrt":
        # Synthesizable integer square root units are out of scope; expose the
        # operand through a helper function the backend can map to an IP block.
        return f"isqrt({args[0]})"
    if fn == "min":
        expr = args[0]
        for arg in args[1:]:
            expr = f"(({expr} < {arg}) ? ({expr}) : ({arg}))"
        return expr
    if fn == "max":
        expr = args[0]
        for arg in args[1:]:
            expr = f"(({expr} > {arg}) ? ({expr}) : ({arg}))"
        return expr
    if fn == "clamp":
        value, low, high = args
        return (
            f"(({value} < {low}) ? ({low}) : (({value} > {high}) ? ({high}) : ({value})))"
        )
    if fn == "select":
        condition, if_true, if_false = args
        return f"(({condition} != 0) ? ({if_true}) : ({if_false}))"
    raise RTLError(f"Unsupported intrinsic {fn!r}")


def uses_isqrt(expr: ast.Expr) -> bool:
    """Whether the translated expression references the isqrt helper."""
    return any(isinstance(node, ast.Call) and node.fn == "sqrt" for node in ast.walk(expr))
