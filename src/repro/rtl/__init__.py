"""Synthesizable Verilog generation, structural linting and RTL simulation."""

from repro.rtl.generator import generate_verilog, VerilogDesign
from repro.rtl.lint import lint_verilog, LintReport
from repro.rtl.sim import (
    ElaboratedDesign,
    RTLSimResult,
    elaborate_design,
    measure_performance,
    rtl_replay,
    simulate_design,
    simulate_design_loop,
)

__all__ = [
    "generate_verilog",
    "VerilogDesign",
    "lint_verilog",
    "LintReport",
    "ElaboratedDesign",
    "RTLSimResult",
    "elaborate_design",
    "measure_performance",
    "rtl_replay",
    "simulate_design",
    "simulate_design_loop",
]
