"""ImaGen reproduction: generating memory- and power-efficient image processing accelerators.

Public API
----------
* :class:`repro.api.CompileTarget` — the unified, immutable compile request
  (DAG + resolution + memory spec + options + generator) consumed by every
  layer.
* :func:`repro.dsl.parse_pipeline` / :class:`repro.dsl.PipelineBuilder` — describe pipelines.
* :func:`repro.core.compile_pipeline` — compile a target into an optimized accelerator.
* :func:`repro.baselines.generate_baseline` — Darkroom / SODA / FixyNN comparison designs.
* :mod:`repro.sim` — cycle-level legality checks and functional simulation.
* :mod:`repro.estimate` — ASIC area/power and FPGA BRAM models.
* :mod:`repro.rtl` — Verilog generation.
* :mod:`repro.algorithms` — the Table-3 algorithm suite.
* :mod:`repro.dse` — design-space exploration (Fig. 10), via ``target.with_options(...)``.
* :mod:`repro.service` — compile cache + batch/parallel engine with sync,
  asyncio and HTTP/JSON serving fronts (``python -m repro.service.http``)
  and pluggable execution backends (``CompileEngine(executor=...)`` /
  ``REPRO_EXECUTOR``: ``inline``, ``thread``, or ``process``).
"""

from repro.api.fingerprint import compile_fingerprint, dag_fingerprint
from repro.api.target import CompileTarget
from repro.core.compiler import CompiledAccelerator, compile_pipeline, compile_target
from repro.core.scheduler import SchedulerOptions, schedule_pipeline
from repro.core.schedule import PipelineSchedule
from repro.dsl.builder import PipelineBuilder
from repro.dsl.parser import parse_pipeline
from repro.ir.dag import PipelineDAG, Stage, Edge
from repro.ir.stencil import StencilWindow
from repro.memory.spec import (
    MemorySpec,
    FpgaSpec,
    asic_dual_port,
    asic_single_port,
    asic_fifo,
    spartan7_fpga,
)
from repro.service import (
    EXECUTOR_NAMES,
    CompileCache,
    CompileEngine,
    CompileRequest,
    CompileResult,
    DiskCacheStore,
    ExecutorBackend,
)

__version__ = "1.2.0"

__all__ = [
    "CompileTarget",
    "CompiledAccelerator",
    "compile_pipeline",
    "compile_target",
    "compile_fingerprint",
    "dag_fingerprint",
    "SchedulerOptions",
    "schedule_pipeline",
    "PipelineSchedule",
    "PipelineBuilder",
    "parse_pipeline",
    "PipelineDAG",
    "Stage",
    "Edge",
    "StencilWindow",
    "MemorySpec",
    "FpgaSpec",
    "asic_dual_port",
    "asic_single_port",
    "asic_fifo",
    "spartan7_fpga",
    "CompileCache",
    "CompileEngine",
    "CompileRequest",
    "CompileResult",
    "DiskCacheStore",
    "EXECUTOR_NAMES",
    "ExecutorBackend",
    "__version__",
]
