"""Pareto-front extraction for (area, power) design points."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    points: Iterable[T],
    objectives: Callable[[T], Sequence[float]],
) -> list[T]:
    """Return the Pareto-optimal subset of ``points`` (all objectives minimised).

    A point is kept when no other point is at least as good in every objective
    and strictly better in at least one.
    """
    materialised = list(points)
    values = [tuple(objectives(p)) for p in materialised]
    front: list[T] = []
    for index, point in enumerate(materialised):
        dominated = False
        for other_index, other_values in enumerate(values):
            if other_index == index:
                continue
            mine = values[index]
            if all(o <= m for o, m in zip(other_values, mine)) and any(
                o < m for o, m in zip(other_values, mine)
            ):
                dominated = True
                break
        if not dominated:
            front.append(point)
    return front
