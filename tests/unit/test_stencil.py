"""Unit tests for stencil-window geometry."""

import pytest

from repro.errors import GraphError
from repro.ir.stencil import StencilWindow


class TestConstruction:
    def test_from_extent_anchors_top_left(self):
        window = StencilWindow.from_extent(3, 2)
        assert (window.min_dx, window.max_dx) == (0, 2)
        assert (window.min_dy, window.max_dy) == (0, 1)

    def test_centered_odd(self):
        window = StencilWindow.centered(3, 5)
        assert (window.min_dx, window.max_dx) == (-1, 1)
        assert (window.min_dy, window.max_dy) == (-2, 2)

    def test_centered_even_is_asymmetric(self):
        window = StencilWindow.centered(2, 2)
        assert window.width == 2
        assert window.height == 2

    def test_point(self):
        window = StencilWindow.point()
        assert window.width == 1
        assert window.height == 1
        assert window.size == 1

    def test_degenerate_rejected(self):
        with pytest.raises(GraphError):
            StencilWindow(min_dx=1, max_dx=0, min_dy=0, max_dy=0)

    def test_zero_extent_rejected(self):
        with pytest.raises(GraphError):
            StencilWindow.from_extent(0, 3)
        with pytest.raises(GraphError):
            StencilWindow.centered(3, 0)


class TestGeometry:
    def test_width_height_size(self):
        window = StencilWindow(-1, 1, -2, 2)
        assert window.width == 3
        assert window.height == 5
        assert window.size == 15

    def test_offsets_raster_order(self):
        window = StencilWindow.from_extent(2, 2)
        assert window.offsets() == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_offsets_count_matches_size(self):
        window = StencilWindow.centered(5, 3)
        assert len(window.offsets()) == window.size

    def test_union_covers_both(self):
        a = StencilWindow(-1, 0, 0, 0)
        b = StencilWindow(0, 2, -1, 1)
        union = a.union(b)
        assert union.min_dx == -1 and union.max_dx == 2
        assert union.min_dy == -1 and union.max_dy == 1

    def test_union_is_commutative(self):
        a = StencilWindow(-1, 2, 0, 3)
        b = StencilWindow(0, 1, -2, 0)
        assert a.union(b) == b.union(a)

    def test_normalized_keeps_extent(self):
        window = StencilWindow.centered(3, 3)
        normalized = window.normalized()
        assert normalized.width == 3 and normalized.height == 3
        assert normalized.min_dx == 0 and normalized.min_dy == 0

    def test_str_format(self):
        assert str(StencilWindow.from_extent(3, 5)) == "3x5"
