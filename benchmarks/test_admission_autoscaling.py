"""Autoscaler acceptance guard: ``process:auto`` must reach fixed-fleet speed.

The autoscaling executor exists so fleet deployments can size for peak load
without paying for idle workers off-peak.  That only works if a grown-to-size
auto fleet is as fast as a fixed fleet of the same width — scale-up decisions
happen on the submission path, so this is worth pinning, not assuming.

The guard compiles a catalog sweep (pure-Python solver backend, all cold
fingerprints) through a fixed ``process`` engine and through a
``process:auto`` engine with the same ceiling, both with pre-warmed pools
(startup is an engine-lifetime cost a serving deployment pays once), and
asserts the auto fleet's per-job throughput is within 10% of the fixed
fleet's.  Single-core runners skip (there is no fleet to scale).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.algorithms import algorithm_names, build_algorithm
from repro.api import CompileTarget
from repro.core.scheduler import SchedulerOptions
from repro.service import CompileEngine

#: Distinct widths (disjoint from the executor-scaling guard's) keep every
#: fingerprint cold in both engines.
RESOLUTIONS = ((500, 320), (502, 320), (504, 320))


def _targets() -> list[CompileTarget]:
    options = SchedulerOptions(backend="python", coalescing=True)
    return [
        CompileTarget(
            build_algorithm(name),
            image_width=width,
            image_height=height,
            options=options,
            label=f"{name}@{width}",
        )
        for width, height in RESOLUTIONS
        for name in algorithm_names()
    ]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="autoscaling needs at least two cores to have a fleet to grow",
)
def test_process_auto_reaches_fixed_fleet_throughput(benchmark):
    def race():
        targets = _targets()
        workers = min(4, os.cpu_count() or 1)

        with CompileEngine(workers=workers, executor="process") as fixed:
            fixed.submit_batch(targets[:workers])  # spawn + import, once
            start = time.perf_counter()
            fixed_batch = fixed.submit_batch(targets[workers:])
            fixed_seconds = time.perf_counter() - start

        with CompileEngine(workers=workers, executor="process:auto") as auto:
            # The warm batch is also what grows the fleet: `workers`
            # concurrent cold jobs scale it to the ceiling.
            auto.submit_batch(targets[:workers])
            grown = auto.executor_stats()["workers"]
            start = time.perf_counter()
            auto_batch = auto.submit_batch(targets[workers:])
            auto_seconds = time.perf_counter() - start
            stats = auto.executor_stats()

        jobs = len(targets) - workers
        return (
            fixed_batch,
            auto_batch,
            fixed_seconds / jobs,
            auto_seconds / jobs,
            grown,
            stats,
            workers,
        )

    fixed_batch, auto_batch, fixed_rate, auto_rate, grown, stats, workers = (
        benchmark.pedantic(race, rounds=1, iterations=1)
    )
    assert all(result.ok for result in fixed_batch.results)
    assert all(result.ok for result in auto_batch.results)
    # The warm-up fan-out must have grown the fleet to (at least near) the
    # ceiling, and scaling may never overshoot it.
    assert grown >= 2
    assert stats["workers"] <= stats["max_workers"] == workers
    assert stats["scale_ups"] >= grown
    print(
        f"\nCatalog sweep (python solver backend): fixed process fleet "
        f"{fixed_rate * 1000:.2f} ms/job, process:auto ({grown} grown workers) "
        f"{auto_rate * 1000:.2f} ms/job ({fixed_rate / auto_rate:.2f}x)"
    )
    # Acceptance: within 10% of fixed-fleet throughput on the batch sweep.
    assert auto_rate <= fixed_rate * 1.10, (
        f"process:auto {auto_rate * 1000:.2f} ms/job vs fixed fleet "
        f"{fixed_rate * 1000:.2f} ms/job"
    )
