"""Content-addressed fingerprints for compile requests.

The compile cache (:mod:`repro.service.cache`) is keyed by a stable hash of
everything the scheduler's output depends on: the pipeline graph, the image
resolution, the memory specification, and the scheduler options.  Two requests
with the same fingerprint are guaranteed to produce the same schedule, so the
second one can be served from cache without touching the ILP solver.

Normalization rules
-------------------
* The DAG is hashed through :meth:`repro.ir.dag.PipelineDAG.canonical_form`,
  which is invariant to stage/edge insertion order and to the pipeline's
  display name.
* ``SchedulerOptions.coalescing_policy`` and ``per_stage_coalescing`` only
  influence the schedule when ``coalescing`` is enabled, so they are dropped
  from the fingerprint when it is off.  This is what lets the all-DP design
  point of a DSE sweep (``coalescing=False, policy="all"``) hit the cache
  entry written by a plain baseline compile (``policy="auto"``).
* Everything is serialized to JSON with sorted keys before hashing, so dict
  ordering never leaks into the digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.core.scheduler import SchedulerOptions
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec

#: Bump when the canonical serialization or the scheduler semantics change in
#: a way that invalidates previously persisted cache entries.
FINGERPRINT_VERSION = 1


def normalize_options(options: SchedulerOptions) -> dict:
    """Reduce scheduler options to the fields that can change the schedule."""
    data = {
        "ports": options.ports,
        "coalescing": options.coalescing,
        "pruning": options.pruning,
        "disjunction_strategy": options.disjunction_strategy,
        "backend": options.backend,
        "max_subproblems": options.max_subproblems,
    }
    if options.coalescing:
        data["coalescing_policy"] = options.coalescing_policy
        data["per_stage_coalescing"] = sorted(options.per_stage_coalescing.items())
    return data


def normalize_memory_spec(spec: MemorySpec) -> dict:
    """Flatten a memory spec into plain JSON-serializable fields."""
    return asdict(spec)


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dag_fingerprint(dag: PipelineDAG) -> str:
    """Stable hash of the pipeline structure alone."""
    return _digest({"version": FINGERPRINT_VERSION, "dag": dag.canonical_form()})


def compile_fingerprint(
    dag: PipelineDAG,
    image_width: int,
    image_height: int,
    memory_spec: MemorySpec,
    options: SchedulerOptions,
) -> str:
    """Stable hash of one complete schedule request."""
    payload = {
        "version": FINGERPRINT_VERSION,
        "dag": dag.canonical_form(),
        "resolution": [image_width, image_height],
        "memory_spec": normalize_memory_spec(memory_spec),
        "options": normalize_options(options),
    }
    return _digest(payload)
