"""Unit tests for memory specifications."""

import pytest

from repro.errors import MemoryConfigError
from repro.memory.spec import (
    MemorySpec,
    asic_dual_port,
    asic_fifo,
    asic_single_port,
    spartan7_bram,
    spartan7_fpga,
)


class TestMemorySpec:
    def test_validation(self):
        with pytest.raises(MemoryConfigError):
            MemorySpec("bad", block_bits=0, ports=2)
        with pytest.raises(MemoryConfigError):
            MemorySpec("bad", block_bits=1024, ports=0)
        with pytest.raises(MemoryConfigError):
            MemorySpec("bad", block_bits=1024, ports=1, pixel_bits=0)
        with pytest.raises(MemoryConfigError):
            MemorySpec("bad", block_bits=1024, ports=1, style="cache")

    def test_geometry_helpers(self):
        spec = MemorySpec("s", block_bits=32 * 1024, ports=2, pixel_bits=16)
        assert spec.block_bytes == 4096
        assert spec.line_bits(480) == 7680
        assert spec.lines_per_block(480) == 4
        assert spec.blocks_per_line(480) == 1
        assert spec.blocks_per_line(4096) == 2

    def test_coalescing_factor_limited_by_ports(self):
        spec = MemorySpec("s", block_bits=64 * 1024, ports=2, pixel_bits=16)
        assert spec.coalescing_factor(480) == 2

    def test_coalescing_factor_limited_by_capacity(self):
        spec = MemorySpec("s", block_bits=32 * 1024, ports=2, pixel_bits=16)
        # 1080p lines (1920 px * 16 b) do not fit twice in 32 Kbit.
        assert spec.coalescing_factor(1920) == 1

    def test_coalescing_disabled_for_single_port_and_fifo(self):
        assert asic_single_port().coalescing_factor(480) == 1
        assert asic_fifo().coalescing_factor(480) == 1

    def test_with_ports(self):
        spec = asic_dual_port().with_ports(1)
        assert spec.ports == 1
        assert "1p" in spec.name


class TestPresets:
    def test_asic_dual_port_defaults(self):
        spec = asic_dual_port()
        assert spec.ports == 2
        assert spec.style == "sram"
        # Reproduces the paper's setup: coalescing possible at 320p, not 1080p.
        assert spec.coalescing_factor(480) >= 2
        assert spec.coalescing_factor(1920) == 1

    def test_asic_single_port(self):
        spec = asic_single_port()
        assert spec.ports == 1
        assert not spec.allow_coalescing

    def test_asic_fifo(self):
        spec = asic_fifo()
        assert spec.style == "fifo"
        assert spec.ports == 2

    def test_spartan7_bram(self):
        bram = spartan7_bram()
        assert bram.block_bits == 36 * 1024
        assert bram.ports == 2

    def test_spartan7_fpga_budget(self):
        fpga = spartan7_fpga()
        assert fpga.total_blocks == 120
        with pytest.raises(MemoryConfigError):
            type(fpga)(bram=spartan7_bram(), total_blocks=0)
