"""SciPy/HiGHS backend for the ILP modeling layer.

``scipy.optimize.milp`` wraps the HiGHS solver, which plays the role OR-Tools
plays in the paper's artifact.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.ilp.model import Model, SolveResult, SolveStatus


def is_available() -> bool:
    try:  # pragma: no cover - trivial import probe
        from scipy.optimize import milp  # noqa: F401

        return True
    except Exception:  # pragma: no cover
        return False


def solve_highs(model: Model) -> SolveResult:
    """Solve ``model`` with ``scipy.optimize.milp`` (HiGHS)."""
    try:
        from scipy.optimize import Bounds, LinearConstraint, milp
    except Exception as exc:  # pragma: no cover - exercised only without scipy
        raise SolverError(f"SciPy HiGHS backend unavailable: {exc}") from exc

    n = model.num_variables
    c = np.zeros(n)
    for var, coeff in model.objective.coeffs.items():
        c[var.index] += coeff
    if model.sense == "max":
        c = -c

    constraints = []
    if model.constraints:
        rows = np.zeros((len(model.constraints), n))
        lower = np.full(len(model.constraints), -np.inf)
        upper = np.full(len(model.constraints), np.inf)
        for row_index, constraint in enumerate(model.constraints):
            for var, coeff in constraint.expr.coeffs.items():
                rows[row_index, var.index] += coeff
            if constraint.sense == "<=":
                upper[row_index] = constraint.rhs
            elif constraint.sense == ">=":
                lower[row_index] = constraint.rhs
            else:
                lower[row_index] = constraint.rhs
                upper[row_index] = constraint.rhs
        constraints.append(LinearConstraint(rows, lower, upper))

    lb = np.array([v.lb if v.lb is not None else -np.inf for v in model.variables])
    ub = np.array([v.ub if v.ub is not None else np.inf for v in model.variables])
    integrality = np.array([1 if v.integer else 0 for v in model.variables])

    result = milp(
        c=c,
        constraints=constraints,
        bounds=Bounds(lb, ub),
        integrality=integrality,
    )

    # scipy status codes: 0 optimal, 1 iteration/time limit, 2 infeasible, 3 unbounded.
    if result.status == 2:
        return SolveResult(status=SolveStatus.INFEASIBLE, backend="highs", message=result.message)
    if result.status == 3:
        return SolveResult(status=SolveStatus.UNBOUNDED, backend="highs", message=result.message)
    if not result.success or result.x is None:
        return SolveResult(status=SolveStatus.ERROR, backend="highs", message=result.message)

    values = {}
    for var in model.variables:
        value = float(result.x[var.index])
        if var.integer:
            value = float(round(value))
        values[var] = value
    objective = model.objective.evaluate(values)
    return SolveResult(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        backend="highs",
        message=result.message,
    )
