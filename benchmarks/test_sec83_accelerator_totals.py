"""Sec. 8.3/8.4 "Accelerator results": whole-accelerator area and power roll-up.

The paper notes that memory dominates the accelerator (79.8% / 92.7% of area
at 320p / 1080p on average), so memory savings translate into accelerator
savings.  This benchmark reports total area and power (memory + PEs) and the
memory fraction at both resolutions.
"""

from __future__ import annotations

from bench_helpers import RES_1080P, RES_320P, GENERATORS, evaluate_all


def collect_totals():
    totals = {}
    for label, (width, height) in (("320p", RES_320P), ("1080p", RES_1080P)):
        results = evaluate_all(width, height)
        totals[label] = results
    return totals


def test_sec83_accelerator_level_totals(benchmark):
    totals = benchmark.pedantic(collect_totals, rounds=1, iterations=1)

    for resolution, results in totals.items():
        print(f"\nSec 8.3/8.4: accelerator-level totals at {resolution}")
        print(f"{'algorithm':<12}{'generator':>10}{'area mm2':>12}{'power mW':>12}{'mem frac':>10}")
        memory_fractions = []
        for algorithm, by_generator in results.items():
            for generator in GENERATORS:
                report = by_generator[generator]
                fraction = report.area.memory_fraction
                if generator == "ours":
                    memory_fractions.append(fraction)
                print(
                    f"{algorithm:<12}{generator:>10}{report.total_area_mm2:>12.3f}"
                    f"{report.total_power_mw:>12.2f}{fraction:>10.2f}"
                )
        average_fraction = sum(memory_fractions) / len(memory_fractions)
        print(f"  average memory area fraction (Ours): {average_fraction:.2f}")
        # Memory dominates the accelerator area (paper: 0.80-0.93).
        assert average_fraction > 0.6

    # Area/power savings at the accelerator level follow the memory savings.
    for resolution, results in totals.items():
        total_area = {g: sum(results[a][g].total_area_mm2 for a in results) for g in GENERATORS}
        total_power = {g: sum(results[a][g].total_power_mw for a in results) for g in GENERATORS}
        assert total_area["ours"] < total_area["fixynn"]
        assert total_area["ours"] < total_area["darkroom"]
        assert total_power["ours"] < total_power["darkroom"]
        assert total_power["ours"] < total_power["soda"]
