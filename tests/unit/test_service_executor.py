"""Unit tests for the pluggable execution backends and engine wiring."""

import os

import pytest

from repro.api import CompileTarget
from repro.service import (
    CompileEngine,
    EXECUTOR_NAMES,
    InlineExecutor,
    ProcessExecutor,
    ThreadExecutor,
    default_executor_name,
    validate_worker_count,
)
from repro.service.jobs import execute_wire_job

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


def _target(dag=None, **kwargs) -> CompileTarget:
    return CompileTarget(dag or build_chain(3), image_width=W, image_height=H, **kwargs)


class TestBackendSelection:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert default_executor_name() == "thread"
        engine = CompileEngine(workers=1)
        assert engine.executor_name == "thread"

    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_env_selects_backend(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_EXECUTOR", name)
        engine = CompileEngine(workers=1)
        assert engine.executor_name == name
        engine.shutdown()

    def test_explicit_executor_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        engine = CompileEngine(workers=1, executor="inline")
        assert engine.executor_name == "inline"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")  # typo must fail loudly
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            default_executor_name()
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            CompileEngine(workers=1)

    def test_invalid_executor_argument_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            CompileEngine(workers=1, executor="fork-bomb")

    def test_backend_instance_is_used_verbatim(self):
        backend = InlineExecutor()
        engine = CompileEngine(workers=4, executor=backend)
        assert engine._executor is backend
        assert engine.executor_name == "inline"

    def test_describe_names_the_backend(self):
        engine = CompileEngine(workers=1, executor="inline")
        assert "executor=inline" in engine.describe()


class TestWorkerValidation:
    @pytest.mark.parametrize("bad", [0, -1, "0", "garbage", None, 2.5, ""])
    def test_garbage_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_worker_count(bad)

    def test_error_names_the_source(self):
        with pytest.raises(ValueError, match="--workers"):
            validate_worker_count("many", source="--workers")

    @pytest.mark.parametrize("good,expected", [(1, 1), ("8", 8), (3, 3)])
    def test_valid_counts_pass(self, good, expected):
        assert validate_worker_count(good) == expected

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_pool_backends_reject_bad_counts(self, name):
        backend_cls = {"thread": ThreadExecutor, "process": ProcessExecutor}[name]
        with pytest.raises(ValueError):
            backend_cls(0)

    def test_http_cli_rejects_bad_workers(self, capsys):
        from repro.service.http import main

        with pytest.raises(SystemExit):
            main(["--workers", "0", "--port", "0"])
        assert "--workers" in capsys.readouterr().err


class TestInlineBackend:
    def test_batch_is_deterministic_and_ordered(self):
        engine = CompileEngine(executor="inline")
        targets = [_target(build_chain(n), label=str(n)) for n in (2, 3, 4)]
        batch = engine.submit_batch(targets)
        assert [r.target.label for r in batch.results] == ["2", "3", "4"]
        assert all(r.ok for r in batch.results)
        assert [r.source for r in batch.results] == ["solver"] * 3

    def test_no_threads_involved(self):
        import threading

        seen = []
        engine = CompileEngine(executor="inline")
        original = engine._execute

        def tracking(target, fingerprint):
            seen.append(threading.current_thread())
            return original(target, fingerprint)

        engine._execute = tracking
        engine.submit_batch([_target()])
        assert seen == [threading.main_thread()]

    def test_errors_still_captured_per_item(self):
        engine = CompileEngine(executor="inline")
        batch = engine.submit_batch([_target().with_resolution(1, H), _target()])
        assert not batch.results[0].ok and batch.results[1].ok


class TestProcessBackend:
    @pytest.fixture
    def engine(self):
        engine = CompileEngine(workers=2, executor="process")
        yield engine
        engine.shutdown()

    def test_batch_matches_thread_backend(self, engine):
        targets = [
            _target(build_paper_example(), label="imagen"),
            _target(build_paper_example(), generator="darkroom", label="dk"),
            _target(build_paper_example(), generator="soda", label="soda"),
        ]
        with CompileEngine(workers=2, executor="thread") as reference:
            expected = reference.submit_batch(targets)
        actual = engine.submit_batch(targets)
        assert [r.fingerprint for r in actual] == [r.fingerprint for r in expected]
        for ours, theirs in zip(actual.results, expected.results):
            assert ours.ok and theirs.ok
            assert (
                ours.accelerator.schedule.start_cycles
                == theirs.accelerator.schedule.start_cycles
            )
            assert (
                ours.accelerator.schedule.total_allocated_bits
                == theirs.accelerator.schedule.total_allocated_bits
            )

    def test_in_batch_dedup_shares_one_future(self, engine):
        batch = engine.submit_batch([_target(), _target()])
        sources = sorted(r.source for r in batch.results)
        assert sources == ["deduplicated", "solver"]
        assert (
            batch.results[0].accelerator.schedule
            is batch.results[1].accelerator.schedule
        )

    def test_error_capture_crosses_the_process_boundary(self, engine):
        batch = engine.submit_batch([_target().with_resolution(1, H)])
        assert not batch.results[0].ok
        assert "SchedulingError" in batch.results[0].error

    def test_parent_memory_cache_absorbs_worker_solves(self, engine):
        target = _target()
        engine.submit_batch([target])
        # The follow-up inline submit is answered from the parent's memory
        # tier — no worker round-trip, no new solve.
        repeat = engine.submit(target)
        assert repeat.source == "memory"

    def test_result_target_is_the_submitters_object(self, engine):
        target = _target(label="mine")
        batch = engine.submit_batch([target])
        assert batch.results[0].target is target

    def test_workers_share_the_disk_volume(self, tmp_path):
        with CompileEngine(workers=1, executor="process", cache_dir=tmp_path) as engine:
            engine.submit_batch([_target(build_chain(4))])
        assert len(engine.cache.store) >= 1

    def test_workers_enforce_the_volumes_gc_bounds(self, tmp_path):
        """Regression: batch traffic used to bypass max_bytes entirely —
        workers built unbounded stores, so only rare parent-side saves GCed."""
        from repro.service import CompileCache, DiskCacheStore

        store = DiskCacheStore(tmp_path, max_bytes=2_000)  # ~1-2 entries
        cache = CompileCache(store=store)
        targets = [_target(build_chain(n)) for n in (2, 3, 4, 5)]
        with CompileEngine(workers=2, executor="process", cache=cache) as engine:
            engine.submit_batch(targets).raise_on_error()
        assert store.total_bytes() <= 2_000

    def test_cold_submit_runs_in_a_worker_not_the_serving_thread(
        self, engine, monkeypatch
    ):
        """Regression: single submits used to always solve on the calling
        thread, leaving the process pool idle for the GIL-bound case it
        exists for.  Poisoning the parent's solver proves where the job ran:
        workers are fresh interpreters and never see the monkeypatch."""
        import repro.service.engine as engine_mod

        def parent_must_not_solve(target, cache=None):
            raise AssertionError("cold submit ran in the serving process")

        monkeypatch.setattr(engine_mod, "compile_pipeline", parent_must_not_solve)
        result = engine.submit(_target(build_chain(4)))
        assert result.ok and result.source == "solver"

    def test_warm_submit_stays_in_process(self, engine, monkeypatch):
        """...and the flip side: once the parent's memory tier holds the
        design, repeats are answered inline without a worker round-trip."""
        target = _target()
        engine.submit_batch([target])  # worker solves; parent absorbs

        def no_worker_round_trip(run_local, t, fingerprint):
            raise AssertionError("warm submit went to the pool")

        monkeypatch.setattr(engine._executor, "submit", no_worker_round_trip)
        assert engine.submit(target).source == "memory"

    def test_wire_job_round_trip(self):
        """The process-pool task is a pure wire-payload transformation."""
        target = _target(build_paper_example())
        payload = execute_wire_job(target.to_wire(), None)
        from repro.service import full_result_from_wire

        result = full_result_from_wire(payload, target)
        assert result.ok
        assert result.fingerprint == target.fingerprint
        assert result.accelerator.schedule.total_blocks > 0

    def test_shutdown_then_resubmit_recreates_pool(self, engine):
        assert engine.submit_batch([_target()]).results[0].ok
        engine.shutdown()
        assert engine.submit_batch([_target(build_chain(4))]).results[0].ok


class TestSubmitFailureRecovery:
    """Regression: a backend whose ``submit`` raises used to leave the
    published placeholder future in ``_inflight`` forever, so every later
    submission of that fingerprint deduped against a dead future and hung."""

    class _BrokenBackend(InlineExecutor):
        def __init__(self):
            super().__init__()
            self.broken = True

        def submit(self, run_local, target, fingerprint):
            if self.broken:
                raise RuntimeError("pool is broken")
            return super().submit(run_local, target, fingerprint)

    def test_failed_submit_clears_inflight_and_unblocks_retries(self):
        backend = self._BrokenBackend()
        engine = CompileEngine(executor=backend)
        target = _target()
        with pytest.raises(RuntimeError, match="pool is broken"):
            engine.submit_batch([target])
        assert not engine._inflight  # the fingerprint is not poisoned
        backend.broken = False
        batch = engine.submit_batch([target])  # must not hang
        assert batch.results[0].ok

    def test_speculation_failure_never_surfaces_on_the_request(self):
        backend = self._BrokenBackend()
        engine = CompileEngine(executor=backend, prewarm=True)
        result = engine.submit(_target(build_paper_example()))  # inline path
        assert result.ok  # broken speculation backend, fine client result
        assert not engine._inflight


class TestSpeculativePrewarm:
    RESOLUTIONS = ((W, H), (W * 2, H * 2))

    @pytest.fixture
    def engine(self):
        engine = CompileEngine(
            workers=2,
            executor="thread",
            prewarm=True,
            prewarm_resolutions=self.RESOLUTIONS,
        )
        yield engine
        engine.shutdown()

    def test_submit_warms_sibling_design_points(self, engine):
        target = _target(build_paper_example())
        engine.submit(target)
        assert engine.wait_prewarm(timeout=60)
        # The other resolution and the coalescing toggle are already cached.
        other = target.with_resolution(W * 2, H * 2)
        toggled = target.with_options(coalescing=True)
        assert other.fingerprint in engine.cache
        assert toggled.fingerprint in engine.cache
        assert engine.submit(other).source == "memory"
        assert engine.submit(toggled).source == "memory"

    def test_speculation_does_not_pollute_request_metrics(self, engine):
        engine.submit(_target(build_paper_example()))
        assert engine.wait_prewarm(timeout=60)
        assert engine.metrics.requests == 1  # client requests only

    def test_prewarm_off_by_default(self):
        engine = CompileEngine(workers=1, executor="inline")
        engine.submit(_target(build_paper_example()))
        assert len(engine.cache) == 1  # nothing speculative

    def test_baseline_targets_are_not_speculated(self, engine):
        engine.submit(_target(build_paper_example(), generator="darkroom"))
        assert engine.wait_prewarm(timeout=60)
        assert len(engine.cache) == 1

    def test_async_submit_also_speculates(self, engine):
        import asyncio

        target = _target(build_paper_example())

        async def run():
            return await engine.submit_async(target)

        asyncio.run(run())
        assert engine.wait_prewarm(timeout=60)
        assert target.with_resolution(W * 2, H * 2).fingerprint in engine.cache


class TestSweepExecutorWiring:
    def test_sweep_executor_flag_matches_serial(self):
        from repro.dse.sweep import sweep_memory_configurations

        serial = sweep_memory_configurations(
            build_paper_example(), image_width=W, image_height=H
        )
        inline = sweep_memory_configurations(
            build_paper_example(), image_width=W, image_height=H, executor="inline"
        )
        assert [p.label for p in inline] == [p.label for p in serial]
        assert [p.area_mm2 for p in inline] == [p.area_mm2 for p in serial]
        assert [p.power_mw for p in inline] == [p.power_mw for p in serial]

    def test_sweep_uses_the_engines_backend(self):
        engine = CompileEngine(workers=2, executor="inline")
        from repro.dse.sweep import sweep_memory_configurations

        points = sweep_memory_configurations(
            build_paper_example(), image_width=W, image_height=H, engine=engine
        )
        assert points and all(p.area_mm2 > 0 for p in points)
