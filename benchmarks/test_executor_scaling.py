"""Executor-backend scaling guard: the process pool must pay for itself.

The process backend exists to parallelize the pure-Python branch-and-bound /
simplex fallback, which serializes on the GIL under the thread backend.  This
guard compiles the full algorithm catalog (at several resolutions, all cold
fingerprints, solver backend forced to ``python``) through a single-thread
engine and through a warm process pool, and asserts the process pool is no
slower — i.e. amortized multi-process fan-out at least breaks even against
single-thread compilation, so fleet deployments can default to
``REPRO_EXECUTOR=process`` without a throughput regression.

Pool startup (fork + import) is paid once per engine, not per batch, so the
pool is warmed before the timed run — a serving deployment keeps its pool
alive across requests.  On single-core runners there is no parallelism to
measure, only IPC overhead; the guard skips there (the parity suite still
runs everywhere).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.algorithms import algorithm_names, build_algorithm
from repro.api import CompileTarget
from repro.core.scheduler import SchedulerOptions
from repro.service import CompileEngine

#: Per-catalog-copy resolutions: distinct widths keep every fingerprint cold.
RESOLUTIONS = ((480, 320), (482, 320), (484, 320), (486, 320), (488, 320), (490, 320))


def _targets() -> list[CompileTarget]:
    # The GIL-bound fallback, with the auto-coalescing double solve: enough
    # solver work per job that fan-out, not per-job IPC, decides the race.
    options = SchedulerOptions(backend="python", coalescing=True)
    return [
        CompileTarget(
            build_algorithm(name),
            image_width=width,
            image_height=height,
            options=options,
            label=f"{name}@{width}",
        )
        for width, height in RESOLUTIONS
        for name in algorithm_names()
    ]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="process-pool scaling needs at least two cores to beat one thread",
)
def test_process_pool_catalog_batch_not_slower_than_single_thread(benchmark):
    def race():
        targets = _targets()
        with CompileEngine(workers=1, executor="thread") as single:
            start = time.perf_counter()
            serial_batch = single.submit_batch(targets)
            serial_seconds = time.perf_counter() - start
        workers = min(4, os.cpu_count() or 1)
        with CompileEngine(workers=workers, executor="process") as pooled:
            # Warm the pool: fork + child imports are engine-lifetime costs.
            pooled.submit_batch(targets[:workers])
            start = time.perf_counter()
            process_batch = pooled.submit_batch(targets[workers:])
            process_seconds = time.perf_counter() - start
        # Normalize to per-job throughput: the pools saw different job counts.
        serial_rate = serial_seconds / len(targets)
        process_rate = process_seconds / (len(targets) - workers)
        return serial_batch, process_batch, serial_rate, process_rate, workers

    serial_batch, process_batch, serial_rate, process_rate, workers = benchmark.pedantic(
        race, rounds=1, iterations=1
    )
    assert all(result.ok for result in serial_batch.results)
    assert all(result.ok for result in process_batch.results)
    print(
        f"\nCatalog batch (python solver backend): single-thread "
        f"{serial_rate * 1000:.2f} ms/job, process pool ({workers} workers) "
        f"{process_rate * 1000:.2f} ms/job ({serial_rate / process_rate:.2f}x)"
    )
    # "No slower", with a 10% allowance for scheduler/measurement noise.
    assert process_rate <= serial_rate * 1.10, (
        f"process pool {process_rate * 1000:.2f} ms/job vs single-thread "
        f"{serial_rate * 1000:.2f} ms/job"
    )
