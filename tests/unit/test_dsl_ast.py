"""Unit tests for the DSL expression AST and its NumPy evaluation."""

import numpy as np
import pytest

from repro.dsl import ast
from repro.errors import DSLSemanticError


def ramp(height=6, width=8):
    return np.arange(height * width, dtype=np.float64).reshape(height, width)


class TestConstruction:
    def test_operator_overloading_builds_binops(self):
        expr = ast.StageRef("K0") + 1.0
        assert isinstance(expr, ast.BinOp)
        assert expr.op == "+"

    def test_right_operators(self):
        expr = 2.0 * ast.StageRef("K0")
        assert isinstance(expr, ast.BinOp)
        assert isinstance(expr.left, ast.Const)

    def test_unsupported_binop_rejected(self):
        with pytest.raises(DSLSemanticError):
            ast.BinOp("%", ast.Const(1.0), ast.Const(2.0))

    def test_unsupported_unary_rejected(self):
        with pytest.raises(DSLSemanticError):
            ast.UnaryOp("!", ast.Const(1.0))

    def test_call_arity_checked(self):
        with pytest.raises(DSLSemanticError):
            ast.Call("clamp", (ast.Const(1.0),))
        with pytest.raises(DSLSemanticError):
            ast.Call("select", (ast.Const(1.0), ast.Const(2.0)))
        with pytest.raises(DSLSemanticError):
            ast.Call("min", (ast.Const(1.0),))

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(DSLSemanticError):
            ast.Call("foo", (ast.Const(1.0),))

    def test_str_round_trip_mentions_offsets(self):
        text = str(ast.StageRef("K0", -1, 2))
        assert "K0" in text and "x-1" in text and "y+2" in text


class TestAnalyses:
    def test_references_by_stage(self):
        expr = ast.StageRef("A", 0, 0) + ast.StageRef("B", 1, 1) * ast.StageRef("A", -1, 0)
        refs = ast.references_by_stage(expr)
        assert set(refs) == {"A", "B"}
        assert len(refs["A"]) == 2

    def test_stencil_windows_union_offsets(self):
        expr = ast.StageRef("A", -1, -2) + ast.StageRef("A", 2, 1)
        window = ast.stencil_windows(expr)["A"]
        assert window.width == 4
        assert window.height == 4

    def test_operation_count(self):
        expr = ast.StageRef("A") + ast.StageRef("A", 1, 0) * 2.0
        assert ast.estimate_operation_count(expr) == 2

    def test_walk_visits_all_nodes(self):
        expr = ast.Call("max", (ast.StageRef("A"), ast.Const(1.0)))
        kinds = [type(node).__name__ for node in ast.walk(expr)]
        assert kinds.count("StageRef") == 1
        assert kinds.count("Const") == 1


class TestEvaluation:
    def test_reference_shift_with_clamping(self):
        image = ramp()
        shifted = ast.evaluate(ast.StageRef("K0", 1, 0), {"K0": image})
        assert shifted[0, 0] == image[0, 1]
        assert shifted[0, -1] == image[0, -1]  # clamped border

    def test_arithmetic_matches_numpy(self):
        image = ramp()
        expr = ast.StageRef("K0") * 2.0 - 3.0
        np.testing.assert_allclose(ast.evaluate(expr, {"K0": image}), image * 2.0 - 3.0)

    def test_division_by_zero_guarded(self):
        image = ramp()
        expr = ast.StageRef("K0") / 0.0
        result = ast.evaluate(expr, {"K0": image})
        np.testing.assert_allclose(result, image)

    def test_comparisons_are_binary_valued(self):
        image = ramp()
        result = ast.evaluate(ast.StageRef("K0") > 10.0, {"K0": image})
        assert set(np.unique(result)) <= {0.0, 1.0}

    def test_min_max_abs(self):
        image = ramp() - 20.0
        expr = ast.Call("max", (ast.Call("abs", (ast.StageRef("K0"),)), ast.Const(5.0)))
        result = ast.evaluate(expr, {"K0": image})
        np.testing.assert_allclose(result, np.maximum(np.abs(image), 5.0))

    def test_clamp_and_select(self):
        image = ramp()
        clamped = ast.evaluate(
            ast.Call("clamp", (ast.StageRef("K0"), ast.Const(5.0), ast.Const(10.0))),
            {"K0": image},
        )
        assert clamped.min() == 5.0 and clamped.max() == 10.0
        selected = ast.evaluate(
            ast.Call("select", (ast.StageRef("K0") > 10.0, ast.Const(1.0), ast.Const(0.0))),
            {"K0": image},
        )
        np.testing.assert_allclose(selected, (image > 10.0).astype(float))

    def test_sqrt_clamps_negative(self):
        image = ramp() - 100.0
        result = ast.evaluate(ast.Call("sqrt", (ast.StageRef("K0"),)), {"K0": image})
        assert np.all(result >= 0.0)

    def test_missing_image_raises(self):
        with pytest.raises(DSLSemanticError):
            ast.evaluate(ast.StageRef("missing"), {"K0": ramp()})

    def test_floordiv(self):
        image = ramp()
        result = ast.evaluate(ast.StageRef("K0") // 2.0, {"K0": image})
        np.testing.assert_allclose(result, np.floor_divide(image, 2.0))
